"""End-to-end measurement pipeline — Fig 2 of the paper.

Wiring: frames → :class:`~repro.dpdk.nic.NicPort` (symmetric RSS into
``num_queues`` rx rings) → one :class:`~repro.core.worker.QueueWorker`
per queue on an :class:`~repro.dpdk.eal.Eal` lcore → latency records
out through a sink (in the full deployment, the ZeroMQ publisher that
:mod:`repro.analytics` subscribes to).

Feeding is batched: a burst of frames is offered to the NIC, then
every worker lcore is polled until the rings drain, then the next
burst — the software analogue of workers keeping up with line rate
while bounded rings absorb bursts. Ring overflow and mbuf exhaustion
surface as NIC drops in the stats, exactly as ``imissed`` would on
hardware.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.core.config import PipelineConfig
from repro.core.handshake import MeasurementSink
from repro.core.latency import LatencyRecord
from repro.core.stats import PipelineStats
from repro.core.worker import QueueWorker
from repro.dpdk.clock import VirtualClock
from repro.dpdk.eal import Eal
from repro.dpdk.mbuf import MbufPool
from repro.dpdk.nic import NicPort
from repro.net.packet import Packet
from repro.net.pcap import PcapReader


class RuruPipeline:
    """The assembled Ruru fast path.

    Args:
        config: pipeline tunables; validated on construction.
        sink: receives every :class:`LatencyRecord`. When None,
            records are collected in :attr:`measurements`.
        feed_batch: frames offered to the NIC between worker polls.
        telemetry: a :class:`repro.obs.Telemetry` handle. When given,
            the pipeline binds its clock to the tracer, registers every
            counter with the metrics registry, traces the hot path, and
            drives the self-monitoring exporter from the drain loop.
        supervisor: a :class:`repro.resilience.Supervisor`. When given,
            every worker poll body is wrapped so a crash is caught,
            counted as a restart and retried next round — with the
            worker's ring and flow table intact, so accepted packets
            are never lost to a crash.
        poll_wrapper: ``(poll, role) -> poll`` applied to each worker
            poll body *inside* the supervision boundary; the chaos
            harness uses it to inject worker crashes.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        sink: Optional[MeasurementSink] = None,
        feed_batch: int = 256,
        observers=None,
        telemetry=None,
        supervisor=None,
        poll_wrapper=None,
    ):
        self.config = config or PipelineConfig()
        self.config.validate()
        if feed_batch <= 0:
            raise ValueError("feed_batch must be positive")
        self.feed_batch = feed_batch
        self.clock = VirtualClock()
        self.measurements: List[LatencyRecord] = []
        self._sink: MeasurementSink = sink or self.measurements.append
        self.stats = PipelineStats()
        self.quiesced = False
        self.telemetry = telemetry
        tracer = None
        if telemetry is not None:
            telemetry.bind_clock(self.clock)
            tracer = telemetry.tracer

        pool = MbufPool(size=self.config.mbuf_pool_size, name="rx_pool")
        self.nic = NicPort(
            num_queues=self.config.num_queues,
            rss_key=self.config.rss_key,
            mbuf_pool=pool,
            queue_capacity=self.config.queue_capacity,
        )
        self.eal = Eal()
        self.supervisor = supervisor
        self.workers: List[QueueWorker] = []
        for queue_id in range(self.config.num_queues):
            worker = QueueWorker(
                nic=self.nic,
                queue_id=queue_id,
                config=self.config,
                sink=self._sink,
                pipeline_stats=self.stats,
                observers=list(observers or []),
                tracer=tracer,
            )
            self.workers.append(worker)
            role = f"rx-worker-q{queue_id}"
            poll = worker.poll
            if poll_wrapper is not None:
                poll = poll_wrapper(poll, role)
            if supervisor is not None:
                poll = supervisor.supervise(poll, role)
            self.eal.launch(poll, role=role)
        if telemetry is not None:
            self._bind_registry(telemetry.registry)

    # -- feeding -----------------------------------------------------------

    def offer(self, packet: Packet) -> bool:
        """Offer one frame to the NIC; False if the NIC dropped it."""
        if self.quiesced:
            self.stats.packets_rejected_quiesced += 1
            return False
        self.stats.packets_offered += 1
        self.clock.advance_to(packet.timestamp_ns)
        if self.nic.receive(packet):
            self.stats.packets_queued += 1
            return True
        self.stats.nic_drops += 1
        return False

    def quiesce(self) -> None:
        """Stop accepting frames at the NIC (step one of graceful drain).

        Frames already in the rx rings stay there for :meth:`drain`;
        new offers are rejected and counted, never silently dropped.
        """
        self.quiesced = True

    def drain(self) -> None:
        """Poll all workers until every rx ring is empty."""
        supervisor = self.supervisor
        restarts_seen = supervisor.total_restarts if supervisor else 0
        while self.nic.pending():
            self.stats.scheduling_rounds += 1
            if self.eal.step_all() == 0:
                if supervisor is not None and (
                    supervisor.total_restarts > restarts_seen
                ):
                    # The round did no work because a worker crashed
                    # and was restarted; its ring is intact — poll on.
                    restarts_seen = supervisor.total_restarts
                    continue
                # Rings non-empty but no worker made progress: a bug,
                # not a condition to spin on.
                raise RuntimeError("pipeline stalled with packets pending")

    def run_packets(
        self, packets: Iterable[Packet], shutdown_flag=None
    ) -> PipelineStats:
        """Run a packet stream through the full pipeline to completion.

        Args:
            packets: the frame stream to feed.
            shutdown_flag: optional zero-arg callable polled between
                feed batches; when it turns truthy, the stream is
                abandoned and the rings drain to empty — the
                SIGINT/SIGTERM path of the long-running CLI commands.
        """
        batch: List[Packet] = []
        for packet in packets:
            batch.append(packet)
            if len(batch) >= self.feed_batch:
                self._feed_and_drain(batch)
                batch.clear()
                if shutdown_flag is not None and shutdown_flag():
                    break
        self._feed_and_drain(batch)
        self._merge_worker_stats()
        return self.stats

    def _feed_and_drain(self, batch: List[Packet]) -> None:
        """Offer one feed batch, drain the rings, drive the exporter."""
        telemetry = self.telemetry
        if telemetry is None:
            for packet in batch:
                self.offer(packet)
            self.drain()
            return
        tracer = telemetry.tracer
        with tracer.span("nic.receive", batch=len(batch)):
            for packet in batch:
                self.offer(packet)
        with tracer.span("pipeline.drain"):
            self.drain()
        telemetry.tick(self.clock.now_ns)

    def run_pcap(self, path: Union[str, Path]) -> PipelineStats:
        """Replay a pcap trace through the pipeline."""
        with PcapReader(path) as reader:
            return self.run_packets(reader)

    # -- reporting -----------------------------------------------------------

    def _merge_worker_stats(self) -> None:
        merged = type(self.stats.tracker)()
        for worker in self.workers:
            merged.merge(worker.stats)
        self.stats.tracker = merged
        # Worker-local counters are recomputed (not accumulated) so
        # repeated run_packets calls on one pipeline never double-count.
        self.stats.packets_processed = sum(
            worker.packets_processed for worker in self.workers
        )
        self.stats.packets_sampled_out = sum(
            worker.packets_sampled_out for worker in self.workers
        )
        self.stats.queue_share = self.nic.stats.queue_balance()

    def _bind_registry(self, registry) -> None:
        """Publish every pipeline/NIC/worker counter through *registry*.

        Hot-path structs keep their plain-int counters; a scrape-time
        collector assigns the live totals into the registry, making it
        the single read-out for ``ruru metrics``, JSON snapshots and
        the self-monitoring exporter at zero per-packet cost.
        """
        simple = {
            "ruru_packets_offered_total": (
                "Frames offered to the NIC.",
                lambda: self.stats.packets_offered,
            ),
            "ruru_packets_queued_total": (
                "Frames accepted into rx rings.",
                lambda: self.stats.packets_queued,
            ),
            "ruru_nic_drops_total": (
                "Frames dropped at the NIC (imissed analogue).",
                lambda: self.stats.nic_drops,
            ),
            "ruru_parse_errors_total": (
                "Frames rejected by the fast parser.",
                lambda: self.stats.parse_errors,
            ),
            "ruru_scheduling_rounds_total": (
                "Worker scheduling rounds run by the drain loop.",
                lambda: self.stats.scheduling_rounds,
            ),
            "ruru_measurements_total": (
                "Latency records emitted by all trackers.",
                lambda: sum(w.stats.measurements for w in self.workers),
            ),
            "ruru_nic_rx_packets_total": (
                "Frames received into mbufs (ipackets).",
                lambda: self.nic.stats.ipackets,
            ),
            "ruru_nic_rx_bytes_total": (
                "Bytes received into mbufs (ibytes).",
                lambda: self.nic.stats.ibytes,
            ),
            "ruru_nic_imissed_total": (
                "Frames the NIC could not queue (imissed).",
                lambda: self.nic.stats.imissed,
            ),
            "ruru_nic_ierrors_total": (
                "Malformed frames rejected at classification (ierrors).",
                lambda: self.nic.stats.ierrors,
            ),
        }
        simple_counters = {
            name: (registry.counter(name, help), read)
            for name, (help, read) in simple.items()
        }
        tracker_events = registry.counter(
            "ruru_tracker_events_total",
            help="Handshake tracker events, merged across queues.",
            labels=("event",),
        )
        parse_reasons = registry.counter(
            "ruru_parse_errors_by_reason_total",
            help="Parse-stage drops bucketed by reason.",
            labels=("reason",),
        )
        worker_processed = registry.counter(
            "ruru_worker_packets_processed_total",
            help="Frames drained off each rx ring.",
            labels=("queue",),
        )
        worker_sampled = registry.counter(
            "ruru_worker_packets_sampled_out_total",
            help="Frames skipped by flow sampling, per queue.",
            labels=("queue",),
        )
        nic_queue_rx = registry.counter(
            "ruru_nic_queue_rx_packets_total",
            help="Frames RSS steered into each rx queue.",
            labels=("queue",),
        )
        flow_entries = registry.gauge(
            "ruru_flow_table_entries",
            help="In-flight handshakes resident per queue.",
            labels=("queue",),
        )
        ring_pending = registry.gauge(
            "ruru_rx_ring_pending",
            help="Mbufs waiting in each rx ring.",
            labels=("queue",),
        )
        tracker_fields = tuple(type(self.stats.tracker)().__dataclass_fields__)
        # Workers and rx queues are fixed for the pipeline's lifetime,
        # so their labelled children resolve once here; collect() then
        # assigns straight into child.value without labels() lookups.
        tracker_children = [
            (field_name, tracker_events.labels(field_name))
            for field_name in tracker_fields
        ]
        per_worker = [
            (
                worker,
                worker_processed.labels(worker.queue_id),
                worker_sampled.labels(worker.queue_id),
                flow_entries.labels(worker.queue_id),
            )
            for worker in self.workers
        ]
        per_queue = [
            (
                rx_queue,
                nic_queue_rx.labels(rx_queue.queue_id),
                ring_pending.labels(rx_queue.queue_id),
            )
            for rx_queue in self.nic.queues
        ]

        def collect() -> None:
            workers = self.workers
            for counter, read in simple_counters.values():
                counter.value = read()
            for field_name, child in tracker_children:
                total = 0
                for worker in workers:
                    total += getattr(worker.stats, field_name)
                child.value = total
            for reason, count in self.stats.parse_error_reasons.items():
                parse_reasons.labels(reason).value = count
            for worker, processed, sampled, entries in per_worker:
                processed.value = worker.packets_processed
                sampled.value = worker.packets_sampled_out
                entries.set(len(worker.tracker.table))
            q_ipackets = self.nic.stats.q_ipackets
            for rx_queue, rx_packets, pending in per_queue:
                rx_packets.value = q_ipackets.get(rx_queue.queue_id, 0)
                pending.set(len(rx_queue))

        registry.register_collector(collect)

    def flow_table_occupancy(self) -> List[int]:
        """In-flight handshake count per queue (flood diagnostics)."""
        return [len(worker.tracker.table) for worker in self.workers]

    # -- durability ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the fast path: virtual clock, whole-pipeline stats,
        NIC port counters, and every worker's flow table.

        Taken between feed batches the rx rings are empty, so this is a
        consistent cut of the measurement state; frames in flight at a
        ``kill -9`` are the bounded loss recovery reports explicitly.
        """
        self._merge_worker_stats()
        nic = self.nic.stats
        return {
            "clock_ns": self.clock.now_ns,
            "quiesced": self.quiesced,
            "stats": self.stats.state_dict(),
            "nic_stats": {
                "ipackets": nic.ipackets,
                "ibytes": nic.ibytes,
                "imissed": nic.imissed,
                "ierrors": nic.ierrors,
                "q_ipackets": {str(q): n for q, n in nic.q_ipackets.items()},
            },
            "workers": [worker.state_dict() for worker in self.workers],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this pipeline.

        The pipeline must be built with the same queue count; handshakes
        that were in flight at checkpoint time resume exactly where they
        were, so a SYN seen before the crash still yields a measurement
        when its ACK arrives after recovery.
        """
        workers_state = state["workers"]
        if len(workers_state) != len(self.workers):
            raise ValueError(
                f"checkpoint has {len(workers_state)} workers, "
                f"pipeline has {len(self.workers)}"
            )
        self.clock.advance_to(int(state["clock_ns"]))
        self.quiesced = bool(state["quiesced"])
        self.stats.load_state(state["stats"])
        nic_state = state["nic_stats"]
        nic = self.nic.stats
        nic.ipackets = int(nic_state["ipackets"])
        nic.ibytes = int(nic_state["ibytes"])
        nic.imissed = int(nic_state["imissed"])
        nic.ierrors = int(nic_state["ierrors"])
        nic.q_ipackets = {
            int(q): int(n) for q, n in nic_state["q_ipackets"].items()
        }
        for worker, worker_state in zip(self.workers, workers_state):
            worker.load_state(worker_state)

    def queue_balance(self) -> List[float]:
        """Fraction of frames RSS sent to each queue."""
        return self.nic.stats.queue_balance()
