"""End-to-end measurement pipeline — Fig 2 of the paper.

Wiring: frames → :class:`~repro.dpdk.nic.NicPort` (symmetric RSS into
``num_queues`` rx rings) → one :class:`~repro.core.worker.QueueWorker`
per queue on an :class:`~repro.dpdk.eal.Eal` lcore → latency records
out through a sink (in the full deployment, the ZeroMQ publisher that
:mod:`repro.analytics` subscribes to).

Feeding is batched: a burst of frames is offered to the NIC, then
every worker lcore is polled until the rings drain, then the next
burst — the software analogue of workers keeping up with line rate
while bounded rings absorb bursts. Ring overflow and mbuf exhaustion
surface as NIC drops in the stats, exactly as ``imissed`` would on
hardware.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.core.config import PipelineConfig
from repro.core.handshake import MeasurementSink
from repro.core.latency import LatencyRecord
from repro.core.stats import PipelineStats
from repro.core.worker import QueueWorker
from repro.dpdk.clock import VirtualClock
from repro.dpdk.eal import Eal
from repro.dpdk.mbuf import MbufPool
from repro.dpdk.nic import NicPort
from repro.net.packet import Packet
from repro.net.pcap import PcapReader


class RuruPipeline:
    """The assembled Ruru fast path.

    Args:
        config: pipeline tunables; validated on construction.
        sink: receives every :class:`LatencyRecord`. When None,
            records are collected in :attr:`measurements`.
        feed_batch: frames offered to the NIC between worker polls.
        telemetry: a :class:`repro.obs.Telemetry` handle. When given,
            the pipeline binds its clock to the tracer, registers every
            counter with the metrics registry, traces the hot path, and
            drives the self-monitoring exporter from the drain loop.
        supervisor: a :class:`repro.resilience.Supervisor`. When given,
            every worker poll body is wrapped so a crash is caught,
            counted as a restart and retried next round — with the
            worker's ring and flow table intact, so accepted packets
            are never lost to a crash.
        poll_wrapper: ``(poll, role) -> poll`` applied to each worker
            poll body *inside* the supervision boundary; the chaos
            harness uses it to inject worker crashes.
        admission: an :class:`repro.overload.OverloadController`. When
            given, the NIC runs its priority triage on every frame and
            frames shed by policy are counted as ``packets_shed``
            instead of ``nic_drops``.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        sink: Optional[MeasurementSink] = None,
        feed_batch: int = 256,
        observers=None,
        telemetry=None,
        supervisor=None,
        poll_wrapper=None,
        admission=None,
    ):
        self.config = config or PipelineConfig()
        self.config.validate()
        if feed_batch <= 0:
            raise ValueError("feed_batch must be positive")
        self.feed_batch = feed_batch
        self.clock = VirtualClock()
        self.measurements: List[LatencyRecord] = []
        self._sink: MeasurementSink = sink or self.measurements.append
        self.stats = PipelineStats()
        self.quiesced = False
        self.telemetry = telemetry
        tracer = None
        if telemetry is not None:
            telemetry.bind_clock(self.clock)
            tracer = telemetry.tracer

        self.admission = admission
        pool = MbufPool(size=self.config.mbuf_pool_size, name="rx_pool")
        self.nic = NicPort(
            num_queues=self.config.num_queues,
            rss_key=self.config.rss_key,
            mbuf_pool=pool,
            queue_capacity=self.config.queue_capacity,
            admission=admission,
        )
        self.eal = Eal()
        self.supervisor = supervisor
        self.workers: List[QueueWorker] = []
        for queue_id in range(self.config.num_queues):
            worker = QueueWorker(
                nic=self.nic,
                queue_id=queue_id,
                config=self.config,
                sink=self._sink,
                pipeline_stats=self.stats,
                observers=list(observers or []),
                tracer=tracer,
            )
            self.workers.append(worker)
            role = f"rx-worker-q{queue_id}"
            poll = worker.poll
            if poll_wrapper is not None:
                poll = poll_wrapper(poll, role)
            if supervisor is not None:
                poll = supervisor.supervise(poll, role)
            self.eal.launch(poll, role=role)
        if telemetry is not None:
            self._bind_registry(telemetry.registry)

    # -- feeding -----------------------------------------------------------

    def offer(self, packet: Packet) -> bool:
        """Offer one frame to the NIC; False if the NIC dropped it."""
        if self.quiesced:
            self.stats.packets_rejected_quiesced += 1
            return False
        self.stats.packets_offered += 1
        self.clock.advance_to(packet.timestamp_ns)
        if self.nic.receive(packet):
            self.stats.packets_queued += 1
            return True
        if self.admission is not None and self.admission.take_nic_shed():
            self.stats.packets_shed += 1
        else:
            self.stats.nic_drops += 1
        return False

    def quiesce(self) -> None:
        """Stop accepting frames at the NIC (step one of graceful drain).

        Frames already in the rx rings stay there for :meth:`drain`;
        new offers are rejected and counted, never silently dropped.
        """
        self.quiesced = True

    def drain(self) -> None:
        """Poll all workers until every rx ring is empty."""
        supervisor = self.supervisor
        restarts_seen = supervisor.total_restarts if supervisor else 0
        while self.nic.pending():
            self.stats.scheduling_rounds += 1
            if self.eal.step_all() == 0:
                if supervisor is not None and (
                    supervisor.total_restarts > restarts_seen
                ):
                    # The round did no work because a worker crashed
                    # and was restarted; its ring is intact — poll on.
                    restarts_seen = supervisor.total_restarts
                    continue
                # Rings non-empty but no worker made progress: a bug,
                # not a condition to spin on.
                raise RuntimeError("pipeline stalled with packets pending")

    def run_packets(
        self, packets: Iterable[Packet], shutdown_flag=None
    ) -> PipelineStats:
        """Run a packet stream through the full pipeline to completion.

        Args:
            packets: the frame stream to feed.
            shutdown_flag: optional zero-arg callable polled between
                feed batches; when it turns truthy, the stream is
                abandoned and the rings drain to empty — the
                SIGINT/SIGTERM path of the long-running CLI commands.
        """
        batch: List[Packet] = []
        for packet in packets:
            batch.append(packet)
            if len(batch) >= self.feed_batch:
                self._feed_and_drain(batch)
                batch.clear()
                if shutdown_flag is not None and shutdown_flag():
                    break
        # The trailing partial batch honours the flag too: a shutdown
        # raised mid-stream must not feed one more burst. An empty
        # batch still drains (rings may hold frames from `offer`).
        if not batch or shutdown_flag is None or not shutdown_flag():
            self._feed_and_drain(batch)
        self._merge_worker_stats()
        return self.stats

    def _feed_and_drain(self, batch: List[Packet]) -> None:
        """Offer one feed batch, drain the rings, drive the exporter."""
        # The run_packets path has no stage graph driving the overload
        # controller, so the control loop ticks here instead; under the
        # graph, OverloadStage.process ticks it and this is never hit.
        if self.admission is not None:
            self.admission.update(self.clock.now_ns)
        telemetry = self.telemetry
        if telemetry is None:
            for packet in batch:
                self.offer(packet)
            self.drain()
            return
        tracer = telemetry.tracer
        with tracer.span("nic.receive", batch=len(batch)):
            for packet in batch:
                self.offer(packet)
        with tracer.span("pipeline.drain"):
            self.drain()
        telemetry.tick(self.clock.now_ns)

    def run_pcap(self, path: Union[str, Path]) -> PipelineStats:
        """Replay a pcap trace through the pipeline."""
        with PcapReader(path) as reader:
            return self.run_packets(reader)

    # -- reporting -----------------------------------------------------------

    def _fold_worker_counters(self, stats: PipelineStats) -> None:
        merged = type(stats.tracker)()
        for worker in self.workers:
            merged.merge(worker.stats)
        stats.tracker = merged
        # Worker-local counters are recomputed (not accumulated) so
        # repeated run_packets calls on one pipeline never double-count.
        stats.packets_processed = sum(
            worker.packets_processed for worker in self.workers
        )
        stats.packets_sampled_out = sum(
            worker.packets_sampled_out for worker in self.workers
        )
        stats.queue_share = self.nic.stats.queue_balance()

    def _merge_worker_stats(self) -> None:
        self._fold_worker_counters(self.stats)

    def stats_snapshot(self) -> "PipelineStats":
        """Folded whole-pipeline stats without mutating :attr:`stats`.

        Callers that drive the stage graph directly (``ruru prof``,
        the scenario runner) never pass through :meth:`run_packets`'s
        trailing merge, so this is their read path for worker counters.
        """
        return self._stats_snapshot()

    def _stats_snapshot(self) -> PipelineStats:
        """Folded stats copy; the observable :attr:`stats` untouched."""
        snapshot = PipelineStats()
        snapshot.load_state(self.stats.state_dict())
        self._fold_worker_counters(snapshot)
        return snapshot

    def _bind_registry(self, registry) -> None:
        """Publish every pipeline/NIC/worker counter through *registry*.

        The binder body lives in :mod:`repro.stack.metrics` with the
        other tiers' binders; imported lazily because the stack package
        imports this module.
        """
        from repro.stack.metrics import bind_pipeline_metrics

        bind_pipeline_metrics(self, registry)

    def flow_table_occupancy(self) -> List[int]:
        """In-flight handshake count per queue (flood diagnostics)."""
        return [len(worker.tracker.table) for worker in self.workers]

    # -- durability ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the fast path: virtual clock, whole-pipeline stats,
        NIC port counters, and every worker's flow table.

        Taken between feed batches the rx rings are empty, so this is a
        consistent cut of the measurement state; frames in flight at a
        ``kill -9`` are the bounded loss recovery reports explicitly.

        Snapshotting is side-effect free: worker counters are folded
        into a stats *copy*, so taking a checkpoint never mutates the
        observable :attr:`stats`.
        """
        nic = self.nic.stats
        return {
            "clock_ns": self.clock.now_ns,
            "quiesced": self.quiesced,
            "stats": self._stats_snapshot().state_dict(),
            "nic_stats": {
                "ipackets": nic.ipackets,
                "ibytes": nic.ibytes,
                "imissed": nic.imissed,
                "ierrors": nic.ierrors,
                "q_ipackets": {str(q): n for q, n in nic.q_ipackets.items()},
            },
            "workers": [worker.state_dict() for worker in self.workers],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this pipeline.

        The pipeline must be built with the same queue count; handshakes
        that were in flight at checkpoint time resume exactly where they
        were, so a SYN seen before the crash still yields a measurement
        when its ACK arrives after recovery.
        """
        workers_state = state["workers"]
        if len(workers_state) != len(self.workers):
            raise ValueError(
                f"checkpoint has {len(workers_state)} workers, "
                f"pipeline has {len(self.workers)}"
            )
        self.clock.advance_to(int(state["clock_ns"]))
        self.quiesced = bool(state["quiesced"])
        self.stats.load_state(state["stats"])
        nic_state = state["nic_stats"]
        nic = self.nic.stats
        nic.ipackets = int(nic_state["ipackets"])
        nic.ibytes = int(nic_state["ibytes"])
        nic.imissed = int(nic_state["imissed"])
        nic.ierrors = int(nic_state["ierrors"])
        nic.q_ipackets = {
            int(q): int(n) for q, n in nic_state["q_ipackets"].items()
        }
        for worker, worker_state in zip(self.workers, workers_state):
            worker.load_state(worker_state)

    def queue_balance(self) -> List[float]:
        """Fraction of frames RSS sent to each queue."""
        return self.nic.stats.queue_balance()
