"""End-to-end measurement pipeline — Fig 2 of the paper.

Wiring: frames → :class:`~repro.dpdk.nic.NicPort` (symmetric RSS into
``num_queues`` rx rings) → one :class:`~repro.core.worker.QueueWorker`
per queue on an :class:`~repro.dpdk.eal.Eal` lcore → latency records
out through a sink (in the full deployment, the ZeroMQ publisher that
:mod:`repro.analytics` subscribes to).

Feeding is batched: a burst of frames is offered to the NIC, then
every worker lcore is polled until the rings drain, then the next
burst — the software analogue of workers keeping up with line rate
while bounded rings absorb bursts. Ring overflow and mbuf exhaustion
surface as NIC drops in the stats, exactly as ``imissed`` would on
hardware.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.core.config import PipelineConfig
from repro.core.handshake import MeasurementSink
from repro.core.latency import LatencyRecord
from repro.core.stats import PipelineStats
from repro.core.worker import QueueWorker
from repro.dpdk.clock import VirtualClock
from repro.dpdk.eal import Eal
from repro.dpdk.mbuf import MbufPool
from repro.dpdk.nic import NicPort
from repro.net.packet import Packet
from repro.net.pcap import PcapReader


class RuruPipeline:
    """The assembled Ruru fast path.

    Args:
        config: pipeline tunables; validated on construction.
        sink: receives every :class:`LatencyRecord`. When None,
            records are collected in :attr:`measurements`.
        feed_batch: frames offered to the NIC between worker polls.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        sink: Optional[MeasurementSink] = None,
        feed_batch: int = 256,
        observers=None,
    ):
        self.config = config or PipelineConfig()
        self.config.validate()
        if feed_batch <= 0:
            raise ValueError("feed_batch must be positive")
        self.feed_batch = feed_batch
        self.clock = VirtualClock()
        self.measurements: List[LatencyRecord] = []
        self._sink: MeasurementSink = sink or self.measurements.append
        self.stats = PipelineStats()

        pool = MbufPool(size=self.config.mbuf_pool_size, name="rx_pool")
        self.nic = NicPort(
            num_queues=self.config.num_queues,
            rss_key=self.config.rss_key,
            mbuf_pool=pool,
            queue_capacity=self.config.queue_capacity,
        )
        self.eal = Eal()
        self.workers: List[QueueWorker] = []
        for queue_id in range(self.config.num_queues):
            worker = QueueWorker(
                nic=self.nic,
                queue_id=queue_id,
                config=self.config,
                sink=self._sink,
                pipeline_stats=self.stats,
                observers=list(observers or []),
            )
            self.workers.append(worker)
            self.eal.launch(worker.poll, role=f"rx-worker-q{queue_id}")

    # -- feeding -----------------------------------------------------------

    def offer(self, packet: Packet) -> bool:
        """Offer one frame to the NIC; False if the NIC dropped it."""
        self.stats.packets_offered += 1
        self.clock.advance_to(packet.timestamp_ns)
        if self.nic.receive(packet):
            self.stats.packets_queued += 1
            return True
        self.stats.nic_drops += 1
        return False

    def drain(self) -> None:
        """Poll all workers until every rx ring is empty."""
        while self.nic.pending():
            self.stats.scheduling_rounds += 1
            if self.eal.step_all() == 0:
                # Rings non-empty but no worker made progress: a bug,
                # not a condition to spin on.
                raise RuntimeError("pipeline stalled with packets pending")

    def run_packets(self, packets: Iterable[Packet]) -> PipelineStats:
        """Run a packet stream through the full pipeline to completion."""
        batch = 0
        for packet in packets:
            self.offer(packet)
            batch += 1
            if batch >= self.feed_batch:
                self.drain()
                batch = 0
        self.drain()
        self._merge_worker_stats()
        return self.stats

    def run_pcap(self, path: Union[str, Path]) -> PipelineStats:
        """Replay a pcap trace through the pipeline."""
        with PcapReader(path) as reader:
            return self.run_packets(reader)

    # -- reporting -----------------------------------------------------------

    def _merge_worker_stats(self) -> None:
        merged = type(self.stats.tracker)()
        for worker in self.workers:
            merged.merge(worker.stats)
        self.stats.tracker = merged

    def flow_table_occupancy(self) -> List[int]:
        """In-flight handshake count per queue (flood diagnostics)."""
        return [len(worker.tracker.table) for worker in self.workers]

    def queue_balance(self) -> List[float]:
        """Fraction of frames RSS sent to each queue."""
        return self.nic.stats.queue_balance()
