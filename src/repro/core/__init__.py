"""Ruru's core: flow-level TCP handshake latency measurement.

This package is the paper's primary contribution. From the three
packets of every TCP three-way handshake crossing the tap — the first
SYN, the following SYN-ACK, and the first ACK — it derives:

* ``internal`` latency: RTT between the tap and the connection
  *source* (the SYN sender), ``t(ACK) − t(SYN-ACK)``;
* ``external`` latency: RTT between the tap and the *destination*,
  ``t(SYN-ACK) − t(SYN)``;
* ``total`` latency: their sum, the full source↔destination RTT.

The measurement state lives in per-queue hash tables indexed by the
symmetric RSS hash (:mod:`repro.core.flow_table`), driven by a state
machine (:mod:`repro.core.handshake`), with one worker per receive
queue (:mod:`repro.core.worker`) and an end-to-end pipeline
orchestrator (:mod:`repro.core.pipeline`) matching the paper's Fig 2.
"""

from repro.core.config import PipelineConfig
from repro.core.latency import Direction, LatencyRecord
from repro.core.flow_table import FlowEntry, FlowState, HandshakeTable
from repro.core.handshake import HandshakeTracker
from repro.core.stats import PipelineStats, TrackerStats
from repro.core.worker import QueueWorker
from repro.core.pipeline import RuruPipeline

__all__ = [
    "PipelineConfig",
    "Direction",
    "LatencyRecord",
    "FlowEntry",
    "FlowState",
    "HandshakeTable",
    "HandshakeTracker",
    "PipelineStats",
    "TrackerStats",
    "QueueWorker",
    "RuruPipeline",
]
