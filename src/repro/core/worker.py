"""Per-queue processing worker.

Ruru allocates "different DPDK processing threads … on separate CPU
cores", one per receive queue. A :class:`QueueWorker` is that thread's
body: poll the queue for a burst of mbufs, fast-parse each frame, feed
the handshake tracker, free the mbuf, and periodically sweep the flow
table. Emitted measurements go to the worker's sink — in the full
pipeline, a ZeroMQ-style PUSH socket.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import PipelineConfig
from repro.core.handshake import HandshakeTracker, MeasurementSink
from repro.core.stats import PipelineStats
from repro.net.parser import PacketParser, ParseError
from repro.dpdk.nic import NicPort


class QueueWorker:
    """Drains one rx queue into one handshake tracker."""

    def __init__(
        self,
        nic: NicPort,
        queue_id: int,
        config: Optional[PipelineConfig] = None,
        sink: Optional[MeasurementSink] = None,
        pipeline_stats: Optional[PipelineStats] = None,
        observers: Optional[List[Callable]] = None,
        tracer=None,
    ):
        self.nic = nic
        self.queue_id = queue_id
        self.config = config or PipelineConfig()
        self.parser = PacketParser()
        self.tracker = HandshakeTracker(
            config=self.config, queue_id=queue_id, sink=sink
        )
        self.pipeline_stats = pipeline_stats
        # In-pipeline taps (e.g. the SYN-flood detector) see every
        # successfully parsed packet, after the tracker.
        self.observers: List[Callable] = list(observers or [])
        # Stage tracing (repro.obs.trace.Tracer); None keeps the poll
        # loop on the untraced fast path with a single attribute check.
        self.tracer = tracer
        self.packets_processed = 0
        self.packets_sampled_out = 0
        self._latest_ns = 0
        self._polls = 0
        self._trace_packets = False

    def poll(self) -> int:
        """One poll iteration: process up to one burst; returns count.

        This is the callable handed to :meth:`repro.dpdk.eal.Eal.launch`.
        """
        mbufs = self.nic.rx_burst(self.queue_id, self.config.burst_size)
        if not mbufs:
            return 0
        tracer = self.tracer
        if tracer is None:
            for mbuf in mbufs:
                self._process_mbuf(mbuf)
                mbuf.free()
            self.tracker.maybe_sweep(self._latest_ns)
            return len(mbufs)
        # Per-packet parse/track spans are sampled: every Nth non-empty
        # poll (N = tracer.detail_sample) traces at packet granularity,
        # the rest stay at burst granularity. Sampling by poll count is
        # deterministic, so replayed traces are still reproducible.
        self._polls += 1
        detail = tracer.detail_sample
        self._trace_packets = bool(detail) and self._polls % detail == 1 % detail
        with tracer.span("worker.poll", queue=self.queue_id, burst=len(mbufs)):
            for mbuf in mbufs:
                self._process_mbuf(mbuf)
                mbuf.free()
            # Only an actual sweep earns a span; the interval check
            # itself is too cheap to be worth recording every poll.
            if self.tracker.sweep_due(self._latest_ns):
                with tracer.span("flow_table.sweep", queue=self.queue_id):
                    self.tracker.maybe_sweep(self._latest_ns)
            else:
                self.tracker.maybe_sweep(self._latest_ns)
        return len(mbufs)

    def _process_mbuf(self, mbuf) -> None:
        self.packets_processed += 1
        if mbuf.timestamp_ns > self._latest_ns:
            self._latest_ns = mbuf.timestamp_ns
        # Flow sampling: the symmetric RSS hash selects whole flows
        # (both directions share the hash), so a sampled-out flow
        # never costs a parse, let alone tracker state.
        modulus = self.config.flow_sample_modulus
        if modulus > 1 and mbuf.rss_hash % modulus:
            self.packets_sampled_out += 1
            return
        tracer = self.tracer if self._trace_packets else None
        if tracer is None:
            try:
                parsed = self.parser.parse(mbuf.data, mbuf.timestamp_ns)
            except ParseError as exc:
                if self.pipeline_stats is not None:
                    self.pipeline_stats.record_parse_error(exc.reason)
                return
            self.tracker.process(parsed, rss_hash=mbuf.rss_hash)
        else:
            with tracer.span("worker.parse", queue=self.queue_id):
                try:
                    parsed = self.parser.parse(mbuf.data, mbuf.timestamp_ns)
                except ParseError as exc:
                    if self.pipeline_stats is not None:
                        self.pipeline_stats.record_parse_error(exc.reason)
                    return
            with tracer.span("worker.track", queue=self.queue_id):
                self.tracker.process(parsed, rss_hash=mbuf.rss_hash)
        for observer in self.observers:
            observer(parsed)

    @property
    def stats(self):
        """This worker's tracker counters."""
        return self.tracker.stats

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot this worker's counters and its handshake tracker."""
        return {
            "queue_id": self.queue_id,
            "packets_processed": self.packets_processed,
            "packets_sampled_out": self.packets_sampled_out,
            "latest_ns": self._latest_ns,
            "polls": self._polls,
            "tracker": self.tracker.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if int(state["queue_id"]) != self.queue_id:
            raise ValueError(
                f"worker state for queue {state['queue_id']} loaded "
                f"into queue {self.queue_id}"
            )
        self.packets_processed = int(state["packets_processed"])
        self.packets_sampled_out = int(state["packets_sampled_out"])
        self._latest_ns = int(state["latest_ns"])
        self._polls = int(state["polls"])
        self.tracker.load_state(state["tracker"])
