"""Per-queue handshake state tables.

The paper: "we record three sub-microsecond timestamps in hash tables
(indexed by the RSS hash) for three packets per flow". Each receive
queue owns one :class:`HandshakeTable`; because the RSS key is
symmetric, the SYN, SYN-ACK and ACK of one flow all land on the same
queue, so no cross-table synchronization is ever needed — the property
that lets Ruru scale linearly across cores.

The table is a bounded insertion-ordered dict keyed by the canonical
4-tuple (hash collisions between distinct flows are therefore
resolved exactly). Capacity pressure evicts the oldest incomplete
handshake; a periodic sweep expires entries whose handshake never
completed — both paths are counted, and both matter under SYN floods.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Iterator, Optional, Tuple

FlowKey = Tuple[int, int, int, int, bool]


def canonical_flow_key(
    src_ip: int, src_port: int, dst_ip: int, dst_port: int, is_ipv6: bool = False
) -> FlowKey:
    """Direction-independent flow key: the (ip, port) endpoint pairs
    sorted, so a packet and its reply produce the same key.
    """
    a = (src_ip, src_port)
    b = (dst_ip, dst_port)
    if a <= b:
        return (a[0], a[1], b[0], b[1], is_ipv6)
    return (b[0], b[1], a[0], a[1], is_ipv6)


class FlowState(enum.Enum):
    """Handshake progress of a tracked flow."""

    SYN_SEEN = 1
    SYNACK_SEEN = 2


@dataclass
class FlowEntry:
    """State for one in-flight handshake.

    Orientation fields record the SYN sender so the eventual
    measurement is reported source→destination regardless of which
    canonical order the key used.
    """

    state: FlowState
    orig_ip: int
    orig_port: int
    resp_ip: int
    resp_port: int
    is_ipv6: bool
    syn_ns: int
    syn_seq: int
    rss_hash: int
    synack_ns: int = 0
    synack_seq: int = 0
    syn_retransmits: int = 0
    synack_retransmits: int = 0

    def age_ns(self, now_ns: int) -> int:
        """Nanoseconds since the first SYN."""
        return now_ns - self.syn_ns


class HandshakeTable:
    """Bounded, insertion-ordered table of in-flight handshakes."""

    def __init__(self, max_entries: int = 1 << 16, queue_id: int = 0):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.queue_id = queue_id
        self._entries: "OrderedDict[FlowKey, FlowEntry]" = OrderedDict()
        self.inserted = 0
        self.completed = 0
        self.evicted = 0
        self.expired = 0
        self.aborted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._entries

    def get(self, key: FlowKey) -> Optional[FlowEntry]:
        """Look up an in-flight handshake; None if untracked."""
        return self._entries.get(key)

    def insert(self, key: FlowKey, entry: FlowEntry) -> Optional[FlowEntry]:
        """Track a new handshake.

        If the table is full, the oldest entry is evicted to make room
        (returned so the caller can count it); under a SYN flood this
        is what bounds memory.
        """
        evicted: Optional[FlowEntry] = None
        if key not in self._entries and len(self._entries) >= self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self.evicted += 1
        self._entries[key] = entry
        self.inserted += 1
        return evicted

    def remove(self, key: FlowKey, reason: str = "completed") -> Optional[FlowEntry]:
        """Stop tracking *key*; *reason* drives the counters.

        Reasons: ``"completed"`` (measurement emitted), ``"aborted"``
        (RST during handshake), ``"expired"`` (timeout sweep).
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        if reason == "completed":
            self.completed += 1
        elif reason == "aborted":
            self.aborted += 1
        elif reason == "expired":
            self.expired += 1
        return entry

    def sweep_expired(self, now_ns: int, timeout_ns: int) -> int:
        """Expire entries older than *timeout_ns*; returns the count.

        Entries are insertion-ordered, so the scan stops at the first
        young entry — the sweep is O(expired), not O(table).
        """
        removed = 0
        while self._entries:
            key, entry = next(iter(self._entries.items()))
            if entry.age_ns(now_ns) < timeout_ns:
                break
            del self._entries[key]
            self.expired += 1
            removed += 1
        return removed

    def entries(self) -> Iterator[Tuple[FlowKey, FlowEntry]]:
        """Iterate (key, entry), oldest first."""
        return iter(self._entries.items())

    @property
    def occupancy(self) -> float:
        """Fill fraction of the table."""
        return len(self._entries) / self.max_entries

    # -- durability ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot every in-flight handshake plus the counters.

        Keys serialize positionally (a JSON list per entry) and entries
        keep insertion order, so a restored table evicts and sweeps in
        exactly the order the original would have.
        """
        return {
            "max_entries": self.max_entries,
            "queue_id": self.queue_id,
            "counters": {
                "inserted": self.inserted,
                "completed": self.completed,
                "evicted": self.evicted,
                "expired": self.expired,
                "aborted": self.aborted,
            },
            "entries": [
                {
                    "key": list(key),
                    "state": entry.state.value,
                    **{
                        name: value
                        for name, value in asdict(entry).items()
                        if name != "state"
                    },
                }
                for key, entry in self._entries.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, replacing all entries."""
        self.max_entries = int(state["max_entries"])
        self.queue_id = int(state["queue_id"])
        counters = state["counters"]
        self.inserted = int(counters["inserted"])
        self.completed = int(counters["completed"])
        self.evicted = int(counters["evicted"])
        self.expired = int(counters["expired"])
        self.aborted = int(counters["aborted"])
        self._entries = OrderedDict()
        for row in state["entries"]:
            key_parts = row["key"]
            key: FlowKey = (
                int(key_parts[0]),
                int(key_parts[1]),
                int(key_parts[2]),
                int(key_parts[3]),
                bool(key_parts[4]),
            )
            fields = {
                name: row[name]
                for name in row
                if name not in ("key", "state")
            }
            self._entries[key] = FlowEntry(
                state=FlowState(row["state"]), **fields
            )
