"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dpdk.rss import SYMMETRIC_RSS_KEY


@dataclass
class PipelineConfig:
    """Tunables for the measurement pipeline.

    Attributes:
        num_queues: RSS receive queues, one worker each (paper: "multiple
            DPDK receiver queues … different DPDK processing threads …
            on separate CPU cores").
        rss_key: Toeplitz key; must be symmetric for both directions of
            a flow to share a queue. The asymmetric-key ablation bench
            overrides this deliberately.
        burst_size: packets per ``rx_burst`` poll.
        queue_capacity: rx ring slots per queue.
        mbuf_pool_size: packet buffers shared by all queues.
        flow_table_size: max in-flight handshakes tracked per queue.
        handshake_timeout_ns: entries older than this are expired (the
            SYN never got its SYN-ACK/ACK — e.g. scans, floods).
        sweep_interval_ns: how often each worker sweeps its table for
            expired entries.
        strict_sequence_check: verify SYN-ACK/ACK sequence-number
            arithmetic against the recorded SYN, rejecting stray
            segments that merely match the 4-tuple.
        flow_sample_modulus: measure only flows whose symmetric RSS
            hash ≡ 0 (mod this). 1 = measure everything (the paper's
            mode); N > 1 sheds (N−1)/N of tracking load under overload
            while keeping an unbiased latency sample, because the
            Toeplitz hash is independent of path latency.
        max_latency_ns: sanity cap; a computed latency above this is
            counted as invalid rather than published (guards against
            timestamp glitches and 2^32 sequence wrap pathologies).
    """

    num_queues: int = 4
    rss_key: bytes = SYMMETRIC_RSS_KEY
    burst_size: int = 32
    queue_capacity: int = 4096
    mbuf_pool_size: int = 65536
    flow_table_size: int = 1 << 16
    handshake_timeout_ns: int = 60 * 1_000_000_000
    sweep_interval_ns: int = 1_000_000_000
    strict_sequence_check: bool = True
    flow_sample_modulus: int = 1
    max_latency_ns: int = 300 * 1_000_000_000

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if self.burst_size <= 0:
            raise ValueError("burst_size must be positive")
        if self.flow_table_size <= 0:
            raise ValueError("flow_table_size must be positive")
        if self.handshake_timeout_ns <= 0:
            raise ValueError("handshake_timeout_ns must be positive")
        if self.flow_sample_modulus < 1:
            raise ValueError("flow_sample_modulus must be at least 1")
        if self.max_latency_ns <= 0:
            raise ValueError("max_latency_ns must be positive")
