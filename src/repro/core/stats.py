"""Counters for the tracker and the whole pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TrackerStats:
    """Per-worker handshake tracking counters.

    Attributes:
        packets: TCP packets examined.
        syn / synack / ack_completed: handshake packets consumed.
        measurements: latency records emitted.
        syn_retransmits: SYNs for an already-tracked flow (first
            timestamp kept, per the paper's "first SYN").
        synack_retransmits: duplicate SYN-ACKs.
        orphan_synack: SYN-ACK with no tracked SYN (flow began before
            the tap started, or the SYN was dropped upstream).
        stray_ack: ACK matching no tracked handshake (the overwhelmingly
            common case — every data segment of an established flow).
        seq_mismatch: segments rejected by strict sequence validation.
        resets: handshakes aborted by RST.
        invalid_latency: measurements over the sanity cap, discarded.
    """

    packets: int = 0
    syn: int = 0
    synack: int = 0
    ack_completed: int = 0
    measurements: int = 0
    syn_retransmits: int = 0
    synack_retransmits: int = 0
    orphan_synack: int = 0
    stray_ack: int = 0
    seq_mismatch: int = 0
    resets: int = 0
    invalid_latency: int = 0

    def merge(self, other: "TrackerStats") -> None:
        """Accumulate *other* into self (for whole-pipeline totals)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class PipelineStats:
    """Whole-pipeline counters aggregated by :class:`RuruPipeline`."""

    packets_offered: int = 0
    packets_queued: int = 0
    nic_drops: int = 0
    parse_errors: int = 0
    parse_error_reasons: Dict[str, int] = field(default_factory=dict)
    tracker: TrackerStats = field(default_factory=TrackerStats)
    scheduling_rounds: int = 0

    def record_parse_error(self, reason: str) -> None:
        """Count one drop at the parse stage, bucketed by reason."""
        self.parse_errors += 1
        self.parse_error_reasons[reason] = self.parse_error_reasons.get(reason, 0) + 1

    @property
    def measurements(self) -> int:
        """Latency records emitted across all workers."""
        return self.tracker.measurements

    def summary(self) -> Dict[str, int]:
        """Flat dict for printing in benches and the CLI."""
        return {
            "packets_offered": self.packets_offered,
            "packets_queued": self.packets_queued,
            "nic_drops": self.nic_drops,
            "parse_errors": self.parse_errors,
            "measurements": self.tracker.measurements,
            "syn": self.tracker.syn,
            "synack": self.tracker.synack,
            "stray_ack": self.tracker.stray_ack,
            "resets": self.tracker.resets,
            "scheduling_rounds": self.scheduling_rounds,
        }
