"""Counters for the tracker and the whole pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TrackerStats:
    """Per-worker handshake tracking counters.

    Attributes:
        packets: TCP packets examined.
        syn / synack / ack_completed: handshake packets consumed.
        measurements: latency records emitted.
        syn_retransmits: SYNs for an already-tracked flow (first
            timestamp kept, per the paper's "first SYN").
        synack_retransmits: duplicate SYN-ACKs.
        orphan_synack: SYN-ACK with no tracked SYN (flow began before
            the tap started, or the SYN was dropped upstream).
        stray_ack: ACK matching no tracked handshake (the overwhelmingly
            common case — every data segment of an established flow).
        seq_mismatch: segments rejected by strict sequence validation.
        resets: handshakes aborted by RST.
        invalid_latency: measurements over the sanity cap, discarded.
    """

    packets: int = 0
    syn: int = 0
    synack: int = 0
    ack_completed: int = 0
    measurements: int = 0
    syn_retransmits: int = 0
    synack_retransmits: int = 0
    orphan_synack: int = 0
    stray_ack: int = 0
    seq_mismatch: int = 0
    resets: int = 0
    invalid_latency: int = 0

    def merge(self, other: "TrackerStats") -> None:
        """Accumulate *other* into self (for whole-pipeline totals)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def state_dict(self) -> Dict[str, int]:
        """Snapshot every counter (all fields are plain ints)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def load_state(self, state: Dict[str, int]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        for name in self.__dataclass_fields__:
            setattr(self, name, int(state[name]))


@dataclass
class PipelineStats:
    """Whole-pipeline counters aggregated by :class:`RuruPipeline`.

    ``packets_processed`` / ``packets_sampled_out`` are the per-worker
    totals (frames drained off rings, and frames skipped by flow
    sampling before the parse) merged up by the pipeline;
    ``queue_share`` is the NIC's per-queue receive fraction — both so
    the summary explains *where* offered packets went, not just how
    many arrived.
    """

    packets_offered: int = 0
    packets_queued: int = 0
    packets_processed: int = 0
    packets_sampled_out: int = 0
    packets_rejected_quiesced: int = 0
    packets_shed: int = 0
    nic_drops: int = 0
    parse_errors: int = 0
    parse_error_reasons: Dict[str, int] = field(default_factory=dict)
    tracker: TrackerStats = field(default_factory=TrackerStats)
    scheduling_rounds: int = 0
    queue_share: List[float] = field(default_factory=list)

    def record_parse_error(self, reason: str) -> None:
        """Count one drop at the parse stage, bucketed by reason."""
        self.parse_errors += 1
        self.parse_error_reasons[reason] = self.parse_error_reasons.get(reason, 0) + 1

    @property
    def measurements(self) -> int:
        """Latency records emitted across all workers."""
        return self.tracker.measurements

    def summary(self, slo_results=None) -> Dict[str, float]:
        """Flat dict for printing in benches and the CLI.

        Parse-error reasons appear as ``parse_error.<reason>`` keys and
        RSS balance as ``queue_share.q<n>`` keys, so a drop at any
        stage is attributable straight from the printout. When a list
        of evaluated :class:`~repro.obs.slo.SloResult` is passed, each
        objective lands as a ``slo.<name>`` verdict row.
        """
        summary: Dict[str, float] = {
            "packets_offered": self.packets_offered,
            "packets_queued": self.packets_queued,
            "packets_processed": self.packets_processed,
            "packets_sampled_out": self.packets_sampled_out,
            "packets_rejected_quiesced": self.packets_rejected_quiesced,
            "packets_shed": self.packets_shed,
            "nic_drops": self.nic_drops,
            "parse_errors": self.parse_errors,
            "measurements": self.tracker.measurements,
            "syn": self.tracker.syn,
            "synack": self.tracker.synack,
            "stray_ack": self.tracker.stray_ack,
            "resets": self.tracker.resets,
            "scheduling_rounds": self.scheduling_rounds,
        }
        for reason in sorted(self.parse_error_reasons):
            summary[f"parse_error.{reason}"] = self.parse_error_reasons[reason]
        for queue_id, share in enumerate(self.queue_share):
            summary[f"queue_share.q{queue_id}"] = round(share, 4)
        if slo_results:
            # Imported lazily: repro.obs.slo is optional surface, the
            # core stats module stays dependency-light.
            from repro.obs.slo import summarize_slos

            summary.update(summarize_slos(slo_results))
        return summary

    def state_dict(self) -> Dict:
        """Snapshot the whole-pipeline counters for a checkpoint."""
        return {
            "packets_offered": self.packets_offered,
            "packets_queued": self.packets_queued,
            "packets_processed": self.packets_processed,
            "packets_sampled_out": self.packets_sampled_out,
            "packets_rejected_quiesced": self.packets_rejected_quiesced,
            "packets_shed": self.packets_shed,
            "nic_drops": self.nic_drops,
            "parse_errors": self.parse_errors,
            "parse_error_reasons": dict(self.parse_error_reasons),
            "tracker": self.tracker.state_dict(),
            "scheduling_rounds": self.scheduling_rounds,
            "queue_share": list(self.queue_share),
        }

    def load_state(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.packets_offered = int(state["packets_offered"])
        self.packets_queued = int(state["packets_queued"])
        self.packets_processed = int(state["packets_processed"])
        self.packets_sampled_out = int(state["packets_sampled_out"])
        self.packets_rejected_quiesced = int(state["packets_rejected_quiesced"])
        # .get: checkpoints from before overload control lack the key.
        self.packets_shed = int(state.get("packets_shed", 0))
        self.nic_drops = int(state["nic_drops"])
        self.parse_errors = int(state["parse_errors"])
        self.parse_error_reasons = dict(state["parse_error_reasons"])
        self.tracker.load_state(state["tracker"])
        self.scheduling_rounds = int(state["scheduling_rounds"])
        self.queue_share = list(state["queue_share"])
