"""Latency measurement records — the pipeline's unit of output.

One :class:`LatencyRecord` is produced per completed TCP handshake,
exactly the tuple the paper's DPDK stage publishes on ZeroMQ: source
and destination addresses plus internal and external latency. IP
addresses are still present at this stage; the analytics tier strips
them after geo enrichment (see :mod:`repro.analytics.anonymize`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.addresses import int_to_ip, int_to_ipv6


class Direction(enum.Enum):
    """Which side of the tap initiated the connection.

    In the REANNZ deployment the tap sits on the international link:
    ``OUTBOUND`` means the SYN came from the internal (NZ) side.
    ``INTERNAL``/``TRANSIT`` cover flows whose both/neither endpoint
    is in the home network (hairpins and carried third-party traffic).
    """

    OUTBOUND = "outbound"
    INBOUND = "inbound"
    INTERNAL = "internal"
    TRANSIT = "transit"

    @classmethod
    def classify(
        cls, src_country: str, dst_country: str, home_country: str
    ) -> "Direction":
        """Classify a flow by its endpoints' countries."""
        src_home = src_country == home_country
        dst_home = dst_country == home_country
        if src_home and dst_home:
            return cls.INTERNAL
        if src_home:
            return cls.OUTBOUND
        if dst_home:
            return cls.INBOUND
        return cls.TRANSIT


@dataclass(frozen=True)
class LatencyRecord:
    """A completed handshake measurement.

    Attributes:
        src_ip / dst_ip: integer addresses, in connection orientation
            (src is the SYN sender).
        src_port / dst_port: TCP ports, same orientation.
        is_ipv6: address family.
        internal_ns: RTT tap↔source, ``t(ACK) − t(SYN-ACK)``.
        external_ns: RTT tap↔destination, ``t(SYN-ACK) − t(SYN)``.
        syn_ns / synack_ns / ack_ns: the three capture timestamps.
        queue_id: receive queue (== worker) that measured this flow.
        rss_hash: the symmetric RSS hash of the flow's 4-tuple.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    internal_ns: int
    external_ns: int
    syn_ns: int
    synack_ns: int
    ack_ns: int
    is_ipv6: bool = False
    queue_id: int = 0
    rss_hash: int = 0

    @property
    def total_ns(self) -> int:
        """End-to-end source↔destination RTT: internal + external."""
        return self.internal_ns + self.external_ns

    @property
    def internal_ms(self) -> float:
        return self.internal_ns / 1e6

    @property
    def external_ms(self) -> float:
        return self.external_ns / 1e6

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def src_ip_text(self) -> str:
        """Source address in text form."""
        return int_to_ipv6(self.src_ip) if self.is_ipv6 else int_to_ip(self.src_ip)

    @property
    def dst_ip_text(self) -> str:
        """Destination address in text form."""
        return int_to_ipv6(self.dst_ip) if self.is_ipv6 else int_to_ip(self.dst_ip)

    @property
    def timestamp_ns(self) -> int:
        """When the measurement completed (the ACK's capture time)."""
        return self.ack_ns

    def __str__(self) -> str:
        return (
            f"{self.src_ip_text}:{self.src_port} -> "
            f"{self.dst_ip_text}:{self.dst_port} "
            f"internal={self.internal_ms:.3f}ms external={self.external_ms:.3f}ms "
            f"total={self.total_ms:.3f}ms"
        )
