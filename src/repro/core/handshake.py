"""The handshake state machine — Fig 1 of the paper.

For each flow the tracker records three timestamps:

* ``t1`` — the first SYN crossing the tap,
* ``t2`` — the following SYN-ACK,
* ``t3`` — the first ACK completing the handshake,

and emits ``external = t2 − t1`` (tap↔destination RTT) and
``internal = t3 − t2`` (tap↔source RTT); their sum is the full
source↔destination latency.

Real traffic makes this harder than the figure: SYN and SYN-ACK
retransmissions (the first timestamp is kept, per the paper), RSTs
aborting half-open handshakes, flows whose SYN predates the capture
(orphan SYN-ACKs), the torrent of data ACKs on established flows that
must not be confused with handshake ACKs, and sequence-number
validation so a stray segment that merely shares a recycled 4-tuple
cannot produce a bogus measurement. All of these paths are counted in
:class:`~repro.core.stats.TrackerStats` and tested.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import PipelineConfig
from repro.core.flow_table import (
    FlowEntry,
    FlowState,
    HandshakeTable,
    canonical_flow_key,
)
from repro.core.latency import LatencyRecord
from repro.core.stats import TrackerStats
from repro.net.parser import ParsedPacket

_SEQ_MOD = 1 << 32

MeasurementSink = Callable[[LatencyRecord], None]


class HandshakeTracker:
    """One tracker per receive queue; single-threaded by construction.

    Args:
        config: pipeline tunables (table size, timeouts, strictness).
        queue_id: which RSS queue this tracker serves (labels output).
        sink: called with each :class:`LatencyRecord` as it completes.
            When None, records accumulate in :attr:`pending` for the
            caller to drain — handy in tests and offline analysis.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        queue_id: int = 0,
        sink: Optional[MeasurementSink] = None,
    ):
        self.config = config or PipelineConfig()
        self.queue_id = queue_id
        self.sink = sink
        self.table = HandshakeTable(
            max_entries=self.config.flow_table_size, queue_id=queue_id
        )
        self.stats = TrackerStats()
        self.pending: List[LatencyRecord] = []
        self._last_sweep_ns = 0

    # -- public API --------------------------------------------------------

    def process(self, packet: ParsedPacket, rss_hash: int = 0) -> Optional[LatencyRecord]:
        """Feed one parsed TCP packet; returns a record if one completed."""
        self.stats.packets += 1
        if packet.is_rst:
            self._on_rst(packet)
            return None
        if packet.is_syn:
            self._on_syn(packet, rss_hash)
            return None
        if packet.is_synack:
            self._on_synack(packet)
            return None
        if packet.is_ack:
            return self._on_ack(packet)
        return None

    def sweep_due(self, now_ns: int) -> bool:
        """Whether :meth:`maybe_sweep` would actually sweep at *now_ns*."""
        return now_ns - self._last_sweep_ns >= self.config.sweep_interval_ns

    def maybe_sweep(self, now_ns: int) -> int:
        """Run the expiry sweep if the sweep interval has elapsed."""
        if now_ns - self._last_sweep_ns < self.config.sweep_interval_ns:
            return 0
        self._last_sweep_ns = now_ns
        return self.table.sweep_expired(now_ns, self.config.handshake_timeout_ns)

    def drain(self) -> List[LatencyRecord]:
        """Return and clear records accumulated when no sink is set."""
        records, self.pending = self.pending, []
        return records

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the in-flight table, counters, pending records and
        sweep schedule — everything a restored tracker needs to complete
        handshakes whose SYN predates the crash."""
        from dataclasses import asdict

        return {
            "table": self.table.state_dict(),
            "stats": self.stats.state_dict(),
            "pending": [asdict(record) for record in self.pending],
            "last_sweep_ns": self._last_sweep_ns,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.table.load_state(state["table"])
        self.stats.load_state(state["stats"])
        self.pending = [LatencyRecord(**row) for row in state["pending"]]
        self._last_sweep_ns = int(state["last_sweep_ns"])

    # -- state machine -----------------------------------------------------

    def _on_syn(self, packet: ParsedPacket, rss_hash: int) -> None:
        self.stats.syn += 1
        key = canonical_flow_key(
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port,
            packet.is_ipv6,
        )
        entry = self.table.get(key)
        if entry is not None:
            same_originator = (
                entry.orig_ip == packet.src_ip and entry.orig_port == packet.src_port
            )
            if same_originator:
                # Retransmitted SYN: the paper keeps the *first* SYN's
                # timestamp, so only count it.
                entry.syn_retransmits += 1
                self.stats.syn_retransmits += 1
                return
            # 4-tuple reuse with swapped roles (or simultaneous open):
            # restart tracking for the new attempt.
            self.table.remove(key, reason="aborted")
            self.stats.resets += 1
        new_entry = FlowEntry(
            state=FlowState.SYN_SEEN,
            orig_ip=packet.src_ip,
            orig_port=packet.src_port,
            resp_ip=packet.dst_ip,
            resp_port=packet.dst_port,
            is_ipv6=packet.is_ipv6,
            syn_ns=packet.timestamp_ns,
            syn_seq=packet.seq,
            rss_hash=rss_hash,
        )
        self.table.insert(key, new_entry)

    def _on_synack(self, packet: ParsedPacket) -> None:
        self.stats.synack += 1
        key = canonical_flow_key(
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port,
            packet.is_ipv6,
        )
        entry = self.table.get(key)
        if entry is None:
            # Flow began before the tap did, or the SYN was evicted.
            self.stats.orphan_synack += 1
            return
        from_responder = (
            entry.resp_ip == packet.src_ip and entry.resp_port == packet.src_port
        )
        if not from_responder:
            self.stats.seq_mismatch += 1
            return
        if entry.state is FlowState.SYNACK_SEEN:
            # Retransmitted SYN-ACK: keep the first timestamp.
            entry.synack_retransmits += 1
            self.stats.synack_retransmits += 1
            return
        if self.config.strict_sequence_check:
            expected_ack = (entry.syn_seq + 1) % _SEQ_MOD
            if packet.ack != expected_ack:
                self.stats.seq_mismatch += 1
                return
        entry.state = FlowState.SYNACK_SEEN
        entry.synack_ns = packet.timestamp_ns
        entry.synack_seq = packet.seq

    def _on_ack(self, packet: ParsedPacket) -> Optional[LatencyRecord]:
        key = canonical_flow_key(
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port,
            packet.is_ipv6,
        )
        entry = self.table.get(key)
        if entry is None or entry.state is not FlowState.SYNACK_SEEN:
            # Either an established flow's data ACK (no entry) or an
            # ACK racing ahead of the SYN-ACK the tap never saw.
            self.stats.stray_ack += 1
            return None
        from_originator = (
            entry.orig_ip == packet.src_ip and entry.orig_port == packet.src_port
        )
        if not from_originator:
            self.stats.stray_ack += 1
            return None
        if self.config.strict_sequence_check:
            expected_seq = (entry.syn_seq + 1) % _SEQ_MOD
            expected_ack = (entry.synack_seq + 1) % _SEQ_MOD
            if packet.seq != expected_seq or packet.ack != expected_ack:
                self.stats.seq_mismatch += 1
                return None

        self.stats.ack_completed += 1
        self.table.remove(key, reason="completed")

        external_ns = entry.synack_ns - entry.syn_ns
        internal_ns = packet.timestamp_ns - entry.synack_ns
        if (
            external_ns < 0
            or internal_ns < 0
            or external_ns > self.config.max_latency_ns
            or internal_ns > self.config.max_latency_ns
        ):
            self.stats.invalid_latency += 1
            return None

        record = LatencyRecord(
            src_ip=entry.orig_ip,
            dst_ip=entry.resp_ip,
            src_port=entry.orig_port,
            dst_port=entry.resp_port,
            internal_ns=internal_ns,
            external_ns=external_ns,
            syn_ns=entry.syn_ns,
            synack_ns=entry.synack_ns,
            ack_ns=packet.timestamp_ns,
            is_ipv6=entry.is_ipv6,
            queue_id=self.queue_id,
            rss_hash=entry.rss_hash,
        )
        self.stats.measurements += 1
        if self.sink is not None:
            self.sink(record)
        else:
            self.pending.append(record)
        return record

    def _on_rst(self, packet: ParsedPacket) -> None:
        key = canonical_flow_key(
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port,
            packet.is_ipv6,
        )
        if self.table.remove(key, reason="aborted") is not None:
            self.stats.resets += 1
