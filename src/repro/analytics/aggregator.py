"""Windowed aggregation by location pair and AS pair.

"Ruru aggregates statistics by source and destination locations, and
AS numbers for further analysis." The :class:`PairAggregator` keeps
one running-statistics cell per (src, dst) pair per window and flushes
each completed window as TSDB points — the rollup the Grafana panels
and the connection-count anomaly detector read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analytics.enricher import EnrichedMeasurement
from repro.analytics.quantile import P2Quantile
from repro.tsdb.point import Point

PairKey = Tuple[str, str]


@dataclass
class PairStats:
    """Streaming statistics for one pair in one window.

    Mean/variance by Welford; the tail by a P² sketch when
    *track_p99* was requested at the aggregator — all O(1) per sample,
    no retained values.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf
    p99: Optional[P2Quantile] = None

    def add(self, value: float) -> None:
        """Fold in one sample."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if self.p99 is not None:
            self.p99.add(value)

    @property
    def stddev(self) -> float:
        """Population standard deviation of the window."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / self.count)

    def state_dict(self) -> dict:
        """Snapshot the running moments (and the P² sketch if present).

        Infinities (the empty-cell min/max sentinels) are not JSON, so
        they serialize as None and restore to the same sentinels.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": None if math.isinf(self.min_value) else self.min_value,
            "max": None if math.isinf(self.max_value) else self.max_value,
            "p99": self.p99.state_dict() if self.p99 is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PairStats":
        """Rebuild a cell from a :meth:`state_dict` snapshot."""
        from repro.analytics.quantile import P2Quantile

        return cls(
            count=int(state["count"]),
            mean=float(state["mean"]),
            _m2=float(state["m2"]),
            min_value=math.inf if state["min"] is None else float(state["min"]),
            max_value=-math.inf if state["max"] is None else float(state["max"]),
            p99=(
                P2Quantile.from_state(state["p99"])
                if state["p99"] is not None
                else None
            ),
        )


@dataclass
class _Window:
    start_ns: int
    by_location: Dict[PairKey, PairStats] = field(default_factory=dict)
    by_asn: Dict[Tuple[int, int], PairStats] = field(default_factory=dict)


class PairAggregator:
    """Tumbling-window aggregator over enriched measurements.

    Args:
        window_ns: window width (default 1 s, the frontend's stats
            cadence; the SNMP-comparison experiment uses 5 minutes).
        emit: called with the flushed TSDB points of each completed
            window; when None, points accumulate in :attr:`flushed`.
    """

    def __init__(
        self,
        window_ns: int = 1_000_000_000,
        emit: Optional[Callable[[List[Point]], None]] = None,
        track_p99: bool = False,
    ):
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self.window_ns = window_ns
        self.emit = emit
        self.track_p99 = track_p99
        self.flushed: List[Point] = []
        self._window: Optional[_Window] = None
        self.measurements_seen = 0

    def add(self, measurement: EnrichedMeasurement) -> None:
        """Fold one measurement into the current window.

        A measurement past the window's end flushes it first; late
        arrivals from a still-earlier window are folded into the
        current one rather than reopening history (single-pass
        streaming, as the live pipeline requires).
        """
        self.measurements_seen += 1
        window_start = (
            measurement.timestamp_ns // self.window_ns
        ) * self.window_ns
        if self._window is None:
            self._window = _Window(start_ns=window_start)
        elif window_start > self._window.start_ns:
            self.flush()
            self._window = _Window(start_ns=window_start)

        window = self._window
        total_ms = measurement.total_ms
        window.by_location.setdefault(
            measurement.location_pair, self._new_stats()
        ).add(total_ms)
        window.by_asn.setdefault(
            measurement.asn_pair, self._new_stats()
        ).add(total_ms)

    def _new_stats(self) -> PairStats:
        return PairStats(p99=P2Quantile(0.99) if self.track_p99 else None)

    def flush(self) -> List[Point]:
        """Emit the current window's points and reset it."""
        if self._window is None:
            return []
        points = self._points_for(self._window)
        self._window = None
        if self.emit is not None:
            self.emit(points)
        else:
            self.flushed.extend(points)
        return points

    def _points_for(self, window: _Window) -> List[Point]:
        points: List[Point] = []
        for (src_city, dst_city), stats in sorted(window.by_location.items()):
            points.append(
                Point(
                    measurement="latency_by_location",
                    timestamp_ns=window.start_ns,
                    tags={"src_city": src_city, "dst_city": dst_city},
                    fields=self._fields(stats),
                )
            )
        for (src_asn, dst_asn), stats in sorted(window.by_asn.items()):
            points.append(
                Point(
                    measurement="latency_by_asn",
                    timestamp_ns=window.start_ns,
                    tags={"src_asn": str(src_asn), "dst_asn": str(dst_asn)},
                    fields=self._fields(stats),
                )
            )
        return points

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the open window so a restored run flushes it with
        the pre-crash samples included, instead of losing the partial
        window at every restart."""
        window = self._window
        return {
            "window_ns": self.window_ns,
            "track_p99": self.track_p99,
            "measurements_seen": self.measurements_seen,
            "window": None
            if window is None
            else {
                "start_ns": window.start_ns,
                "by_location": [
                    [list(pair), stats.state_dict()]
                    for pair, stats in window.by_location.items()
                ],
                "by_asn": [
                    [list(pair), stats.state_dict()]
                    for pair, stats in window.by_asn.items()
                ],
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces any open window)."""
        self.window_ns = int(state["window_ns"])
        self.track_p99 = bool(state["track_p99"])
        self.measurements_seen = int(state["measurements_seen"])
        window_state = state["window"]
        if window_state is None:
            self._window = None
            return
        window = _Window(start_ns=int(window_state["start_ns"]))
        for pair, cell in window_state["by_location"]:
            window.by_location[(str(pair[0]), str(pair[1]))] = (
                PairStats.from_state(cell)
            )
        for pair, cell in window_state["by_asn"]:
            window.by_asn[(int(pair[0]), int(pair[1]))] = (
                PairStats.from_state(cell)
            )
        self._window = window

    @staticmethod
    def _fields(stats: PairStats) -> Dict[str, float]:
        fields = {
            "connections": stats.count,
            "mean_ms": stats.mean,
            "min_ms": stats.min_value,
            "max_ms": stats.max_value,
            "stddev_ms": stats.stddev,
        }
        if stats.p99 is not None and stats.p99.value is not None:
            fields["p99_ms"] = stats.p99.value
        return fields
