"""Ruru Analytics: enrichment, anonymization, aggregation, wiring.

The paper's analytics tier subscribes to the DPDK stage's ZeroMQ
stream, "retrieve[s] geographical locations … and AS information for
the source and destination IPs using multiple threads", then removes
"all original IP addresses … for privacy reasons" before anything is
stored or displayed. This package is that tier:

* :mod:`repro.analytics.enricher` — IP→geo/AS lookup producing
  :class:`EnrichedMeasurement` (which structurally *cannot* carry an
  IP address — anonymization by construction).
* :mod:`repro.analytics.anonymize` — the privacy boundary utilities
  and auditing helpers tests use to prove no address leaks downstream.
* :mod:`repro.analytics.aggregator` — windowed statistics by location
  pair and AS pair ("Ruru aggregates statistics by source and
  destination locations, and AS numbers").
* :mod:`repro.analytics.service` — the deployable service: PULL from
  the pipeline, enrich with a worker pool, fan out to the TSDB writer
  and the frontend publisher, with optional filter modules.
"""

from repro.analytics.enricher import EnrichedMeasurement, Enricher, EnricherStats
from repro.analytics.anonymize import (
    PrivacyViolation,
    assert_no_addresses,
    truncate_ipv4,
    truncate_ipv6,
)
from repro.analytics.aggregator import PairAggregator, PairStats
from repro.analytics.pseudonymize import PrefixPreservingAnonymizer
from repro.analytics.quantile import P2Quantile
from repro.analytics.topk import SpaceSaving, TopEntry
from repro.analytics.service import AnalyticsService

__all__ = [
    "EnrichedMeasurement",
    "Enricher",
    "EnricherStats",
    "PrivacyViolation",
    "assert_no_addresses",
    "truncate_ipv4",
    "truncate_ipv6",
    "PairAggregator",
    "PairStats",
    "PrefixPreservingAnonymizer",
    "P2Quantile",
    "SpaceSaving",
    "TopEntry",
    "AnalyticsService",
]
