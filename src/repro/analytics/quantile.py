"""Streaming quantile estimation: the P² algorithm.

The pair aggregator keeps count/mean/min/max/stddev in O(1) per
sample, but operators watch p95/p99 — and storing every sample per
pair per window defeats the point of streaming. Jain & Chlamtac's P²
algorithm estimates a quantile with five markers and no stored
samples; it is the standard trick in monitoring agents, and accurate
to a few percent on unimodal latency populations.
"""

from __future__ import annotations

from typing import List, Optional


class P2Quantile:
    """Single-quantile P² estimator.

    Args:
        q: the target quantile in (0, 1), e.g. 0.99.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._initial: List[float] = []
        # Marker heights, positions, and desired positions.
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self.count = 0

    def add(self, value: float) -> None:
        """Fold in one observation."""
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initialize()
            return
        self._update(value)

    def _initialize(self) -> None:
        self._initial.sort()
        self._heights = list(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        q = self.q
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]

    def _update(self, value: float) -> None:
        heights, positions = self._heights, self._positions
        # Find the cell and clamp extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Adjust interior markers toward their desired positions.
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if (delta >= 1 and positions[i + 1] - positions[i] > 1) or (
                delta <= -1 and positions[i - 1] - positions[i] < -1
            ):
                direction = 1 if delta >= 0 else -1
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + direction / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + direction)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - direction)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, direction: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + direction * (h[i + direction] - h[i]) / (
            n[i + direction] - n[i]
        )

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the five markers (and the warm-up buffer)."""
        return {
            "q": self.q,
            "count": self.count,
            "initial": list(self._initial),
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "increments": list(self._increments),
        }

    @classmethod
    def from_state(cls, state: dict) -> "P2Quantile":
        """Rebuild an estimator from a :meth:`state_dict` snapshot."""
        sketch = cls(float(state["q"]))
        sketch.count = int(state["count"])
        sketch._initial = [float(v) for v in state["initial"]]
        sketch._heights = [float(v) for v in state["heights"]]
        sketch._positions = [float(v) for v in state["positions"]]
        sketch._desired = [float(v) for v in state["desired"]]
        sketch._increments = [float(v) for v in state["increments"]]
        return sketch

    @property
    def value(self) -> Optional[float]:
        """The current estimate; None before any samples.

        Before five samples it falls back to the exact small-sample
        quantile.
        """
        if self.count == 0:
            return None
        if len(self._initial) < 5:
            ordered = sorted(self._initial)
            index = min(len(ordered) - 1, int(self.q * len(ordered)))
            return ordered[index]
        return self._heights[2]
