"""Prefix-preserving address pseudonymization (Crypto-PAn style).

Ruru's default privacy stance is total: addresses are dropped at the
enricher. Some deployments instead need to *retain* a pseudonymous
address — e.g. to correlate a misbehaving source across days without
ever storing the real address. The standard construction is
Crypto-PAn (Xu et al.): each bit of the output is the input bit XORed
with a keyed PRF of the preceding prefix bits, which makes the mapping

* deterministic under one key,
* one-to-one, and
* **prefix-preserving**: two addresses sharing exactly their first k
  bits map to outputs sharing exactly their first k bits — so /24 or
  AS-level aggregation still works on pseudonyms.

The PRF here is HMAC-SHA256 (stdlib) over the bit-length-tagged
prefix; per-prefix results are memoized, so anonymizing a trace costs
one HMAC per *new* prefix, not per address.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Tuple


class PrefixPreservingAnonymizer:
    """A keyed, prefix-preserving, invertible-only-with-key mapping.

    Args:
        key: secret key; the same key reproduces the same mapping.
        width: address width in bits (32 for IPv4, 128 for IPv6).
        cache_limit: maximum memoized prefixes (LRU-less clear-on-full;
            traces revisit prefixes heavily so this rarely triggers).
    """

    def __init__(self, key: bytes, width: int = 32, cache_limit: int = 1 << 20):
        if not key:
            raise ValueError("key must be non-empty")
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._key = key
        self._cache: Dict[Tuple[int, int], int] = {}
        self._cache_limit = cache_limit

    def _prf_bit(self, prefix: int, length: int) -> int:
        """Keyed PRF of the *length*-bit prefix, reduced to one bit."""
        cached = self._cache.get((prefix, length))
        if cached is not None:
            return cached
        message = length.to_bytes(2, "big") + prefix.to_bytes(
            (self.width + 7) // 8, "big"
        )
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        bit = digest[0] & 1
        if len(self._cache) >= self._cache_limit:
            self._cache.clear()
        self._cache[(prefix, length)] = bit
        return bit

    def anonymize(self, address: int) -> int:
        """Map *address* to its pseudonym."""
        if address >> self.width:
            raise ValueError(f"address wider than {self.width} bits")
        result = 0
        prefix = 0
        for i in range(self.width):
            bit = (address >> (self.width - 1 - i)) & 1
            flip = self._prf_bit(prefix, i)
            result = (result << 1) | (bit ^ flip)
            prefix = (prefix << 1) | bit
        return result

    def anonymize_ipv4(self, address: int) -> int:
        """Alias for 32-bit instances (self-documenting call sites)."""
        if self.width != 32:
            raise ValueError("this anonymizer is not 32 bits wide")
        return self.anonymize(address)

    @staticmethod
    def shared_prefix_len(a: int, b: int, width: int) -> int:
        """Length of the common leading prefix of two addresses."""
        if a == b:
            return width
        differing = a ^ b
        return width - differing.bit_length()

    def verify_prefix_preservation(self, a: int, b: int) -> bool:
        """Check the defining property on one pair (used by tests)."""
        before = self.shared_prefix_len(a, b, self.width)
        after = self.shared_prefix_len(
            self.anonymize(a), self.anonymize(b), self.width
        )
        return before == after
