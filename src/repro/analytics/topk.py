"""Heavy-hitter tracking: the Space-Saving algorithm.

"Busiest pairs" on the live map, "top talkers" in the ops view — at
thousands of connections per second the exact answer needs unbounded
memory, and Metwally et al.'s Space-Saving gives the classic bounded
alternative: *m* counters track the top items with guaranteed error
≤ N/m, and any item with true count > N/m is guaranteed present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, List, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


@dataclass(frozen=True)
class TopEntry(Generic[K]):
    """One reported heavy hitter.

    ``count`` may overestimate by at most ``error``; the true count is
    within ``[count - error, count]``.
    """

    key: K
    count: int
    error: int


class SpaceSaving(Generic[K]):
    """Bounded top-K counting.

    Args:
        capacity: number of counters (*m*). Error bound is N/m for N
            observed items.
    """

    def __init__(self, capacity: int = 100):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts: Dict[K, int] = {}
        self._errors: Dict[K, int] = {}
        self.total = 0

    def add(self, key: K, count: int = 1) -> None:
        """Observe *key* (*count* times)."""
        if count <= 0:
            raise ValueError("count must be positive")
        self.total += count
        if key in self._counts:
            self._counts[key] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            return
        # Evict the minimum counter; the newcomer inherits its count
        # as the error bound.
        victim = min(self._counts, key=self._counts.get)  # type: ignore[arg-type]
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + count
        self._errors[key] = floor

    def top(self, k: int = 10) -> List[TopEntry[K]]:
        """The top *k* entries, largest first."""
        if k < 1:
            raise ValueError("k must be positive")
        ordered = sorted(self._counts.items(), key=lambda kv: -kv[1])[:k]
        return [
            TopEntry(key=key, count=count, error=self._errors[key])
            for key, count in ordered
        ]

    def guaranteed_top(self, k: int = 10) -> List[TopEntry[K]]:
        """Entries whose lower bound beats every other upper bound's
        floor — hitters that are top-k for certain, not by estimate."""
        entries = self.top(len(self._counts) or 1)
        if len(entries) <= k:
            return entries
        threshold = entries[k].count  # the (k+1)-th estimate
        return [e for e in entries[:k] if e.count - e.error >= threshold]

    @property
    def error_bound(self) -> float:
        """The algorithm's worst-case overestimate, N/m."""
        return self.total / self.capacity

    def __len__(self) -> int:
        return len(self._counts)

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot every counter and its error bound.

        Keys may be tuples (pair keys); tuples are not JSON so they
        are tagged and round-tripped back to tuples on load.
        """
        return {
            "capacity": self.capacity,
            "total": self.total,
            "entries": [
                [_pack_key(key), count, self._errors[key]]
                for key, count in self._counts.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.capacity = int(state["capacity"])
        self.total = int(state["total"])
        self._counts = {}
        self._errors = {}
        for packed, count, error in state["entries"]:
            key = _unpack_key(packed)
            self._counts[key] = int(count)
            self._errors[key] = int(error)


def _pack_key(key):
    """JSON-safe form of a counter key (tuples become tagged lists)."""
    if isinstance(key, tuple):
        return {"tuple": list(key)}
    return key


def _unpack_key(packed):
    """Inverse of :func:`_pack_key`."""
    if isinstance(packed, dict):
        return tuple(packed["tuple"])
    return packed
