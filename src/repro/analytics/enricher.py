"""Geo/AS enrichment: latency records in, anonymized measurements out.

The output type, :class:`EnrichedMeasurement`, has *no address
fields*: once a record crosses the enricher, the IPs are gone. This
implements the paper's privacy step structurally rather than by
convention — nothing downstream can leak what it never receives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.latency import LatencyRecord
from repro.geo.asn import AsnDatabase
from repro.geo.database import GeoDatabase

UNKNOWN_COUNTRY = "ZZ"
UNKNOWN_CITY = "Unknown"
UNKNOWN_ASN = 0


@dataclass(frozen=True)
class EnrichedMeasurement:
    """A geo-enriched, anonymized latency measurement.

    This is what reaches InfluxDB and the frontend: latencies plus
    geography and AS numbers — never addresses.
    """

    timestamp_ns: int
    internal_ns: int
    external_ns: int
    src_country: str
    src_city: str
    src_lat: float
    src_lon: float
    src_asn: int
    dst_country: str
    dst_city: str
    dst_lat: float
    dst_lon: float
    dst_asn: int
    # True when the record crossed an open enrichment breaker: the
    # latencies are real, the geography is unknown-by-policy. Dashboards
    # can exclude or shade these; dropping them would hide the outage.
    degraded: bool = False

    @property
    def total_ns(self) -> int:
        return self.internal_ns + self.external_ns

    @property
    def internal_ms(self) -> float:
        return self.internal_ns / 1e6

    @property
    def external_ms(self) -> float:
        return self.external_ns / 1e6

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def location_pair(self):
        """(src city, dst city) — the aggregation key for locations."""
        return (self.src_city, self.dst_city)

    @property
    def asn_pair(self):
        """(src ASN, dst ASN) — the aggregation key for networks."""
        return (self.src_asn, self.dst_asn)


def degraded_measurement(record: LatencyRecord) -> EnrichedMeasurement:
    """An un-enriched measurement for an open enrichment breaker.

    The latency components survive (they were measured upstream of the
    failing dependency); geography and AS numbers are unknown-by-policy
    and the ``degraded`` flag marks the episode. The addresses are
    still stripped — the privacy boundary holds even in degraded mode.
    """
    return EnrichedMeasurement(
        timestamp_ns=record.timestamp_ns,
        internal_ns=record.internal_ns,
        external_ns=record.external_ns,
        src_country=UNKNOWN_COUNTRY,
        src_city=UNKNOWN_CITY,
        src_lat=0.0,
        src_lon=0.0,
        src_asn=UNKNOWN_ASN,
        dst_country=UNKNOWN_COUNTRY,
        dst_city=UNKNOWN_CITY,
        dst_lat=0.0,
        dst_lon=0.0,
        dst_asn=UNKNOWN_ASN,
        degraded=True,
    )


@dataclass
class EnricherStats:
    """Enrichment counters."""

    enriched: int = 0
    geo_misses: int = 0
    asn_misses: int = 0
    dropped_unresolved: int = 0


class Enricher:
    """Looks up both endpoints of a record and strips its addresses.

    Args:
        geo: range-based geo database (IPv4).
        asn: prefix-based AS database (IPv4).
        geo6 / asn6: optional IPv6 databases; without them IPv6
            records enrich as unknown (the pre-dual-stack deployment).
        drop_unresolved: when True, records with *no* resolvable
            endpoint geography are dropped; when False (default) the
            unknown side is tagged ``ZZ``/``Unknown`` so volume is
            preserved — the choice a real deployment faces with
            unallocated space.
    """

    def __init__(
        self,
        geo: GeoDatabase,
        asn: AsnDatabase,
        geo6: Optional[GeoDatabase] = None,
        asn6: Optional[AsnDatabase] = None,
        drop_unresolved: bool = False,
    ):
        self.geo = geo
        self.asn = asn
        self.geo6 = geo6
        self.asn6 = asn6
        self.drop_unresolved = drop_unresolved
        self.stats = EnricherStats()

    def _geo_lookup(self, address: int, is_ipv6: bool):
        if is_ipv6:
            return self.geo6.lookup(address) if self.geo6 else None
        return self.geo.lookup(address)

    def _asn_lookup(self, address: int, is_ipv6: bool):
        if is_ipv6:
            return self.asn6.lookup(address) if self.asn6 else None
        return self.asn.lookup(address)

    def enrich(self, record: LatencyRecord) -> Optional[EnrichedMeasurement]:
        """Enrich one record; None if dropped by the unresolved policy."""
        src_geo = self._geo_lookup(record.src_ip, record.is_ipv6)
        dst_geo = self._geo_lookup(record.dst_ip, record.is_ipv6)
        if src_geo is None:
            self.stats.geo_misses += 1
        if dst_geo is None:
            self.stats.geo_misses += 1
        if self.drop_unresolved and src_geo is None and dst_geo is None:
            self.stats.dropped_unresolved += 1
            return None

        src_as = self._asn_lookup(record.src_ip, record.is_ipv6)
        dst_as = self._asn_lookup(record.dst_ip, record.is_ipv6)
        if src_as is None:
            self.stats.asn_misses += 1
        if dst_as is None:
            self.stats.asn_misses += 1

        self.stats.enriched += 1
        return EnrichedMeasurement(
            timestamp_ns=record.timestamp_ns,
            internal_ns=record.internal_ns,
            external_ns=record.external_ns,
            src_country=src_geo.country_code if src_geo else UNKNOWN_COUNTRY,
            src_city=src_geo.city if src_geo else UNKNOWN_CITY,
            src_lat=src_geo.lat if src_geo else 0.0,
            src_lon=src_geo.lon if src_geo else 0.0,
            src_asn=src_as.asn if src_as else UNKNOWN_ASN,
            dst_country=dst_geo.country_code if dst_geo else UNKNOWN_COUNTRY,
            dst_city=dst_geo.city if dst_geo else UNKNOWN_CITY,
            dst_lat=dst_geo.lat if dst_geo else 0.0,
            dst_lon=dst_geo.lon if dst_geo else 0.0,
            dst_asn=dst_as.asn if dst_as else UNKNOWN_ASN,
        )
