"""The privacy boundary: helpers and auditors.

Ruru's rule is simple — "all original IP addresses are removed for
privacy reasons" after enrichment. The structural guarantee lives in
:class:`~repro.analytics.enricher.EnrichedMeasurement` (no address
fields); this module adds:

* prefix-truncation helpers for deployments that must keep a coarse
  network identifier (an optional, weaker mode);
* :func:`assert_no_addresses`, an auditor that walks any object graph
  and fails if something that looks like an IP address survived — the
  tests run it over TSDB points and frontend frames.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.net.addresses import is_ipv4, is_ipv6


class PrivacyViolation(AssertionError):
    """Raised by the auditor when an address reaches a forbidden tier."""


def truncate_ipv4(address: int, keep_bits: int = 24) -> int:
    """Zero the host bits of an IPv4 address, keeping a /keep_bits."""
    if not 0 <= keep_bits <= 32:
        raise ValueError("keep_bits must be within [0, 32]")
    mask = ((1 << keep_bits) - 1) << (32 - keep_bits) if keep_bits else 0
    return address & mask


def truncate_ipv6(address: int, keep_bits: int = 48) -> int:
    """Zero the host bits of an IPv6 address, keeping a /keep_bits."""
    if not 0 <= keep_bits <= 128:
        raise ValueError("keep_bits must be within [0, 128]")
    mask = ((1 << keep_bits) - 1) << (128 - keep_bits) if keep_bits else 0
    return address & mask


_IPV4_PATTERN = re.compile(r"\b\d{1,3}(?:\.\d{1,3}){3}\b")
# Loose candidate match (including '::' compression); every candidate
# is validated with is_ipv6 before being reported.
_IPV6_PATTERN = re.compile(r"(?:[0-9a-fA-F]{0,4}:){2,7}[0-9a-fA-F]{0,4}")


def _strings_in(obj: Any, depth: int = 0) -> Iterable[str]:
    """Yield every string reachable in a (bounded) object graph."""
    if depth > 6:
        return
    if isinstance(obj, str):
        yield obj
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from _strings_in(key, depth + 1)
            yield from _strings_in(value, depth + 1)
        return
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            yield from _strings_in(item, depth + 1)
        return
    if hasattr(obj, "__dataclass_fields__"):
        for name in obj.__dataclass_fields__:
            yield from _strings_in(getattr(obj, name), depth + 1)


def find_addresses(obj: Any) -> list:
    """All IP-address-looking strings reachable from *obj*."""
    found = []
    for text in _strings_in(obj):
        for match in _IPV4_PATTERN.findall(text):
            if is_ipv4(match):
                found.append(match)
        for match in _IPV6_PATTERN.findall(text):
            if is_ipv6(match):
                found.append(match)
    return found


def assert_no_addresses(obj: Any, context: str = "object") -> None:
    """Fail loudly if an IP address string survives in *obj*.

    Used by tests over everything downstream of the enricher: TSDB
    points, dashboard results, frontend frames.
    """
    leaked = find_addresses(obj)
    if leaked:
        raise PrivacyViolation(
            f"{context} leaked IP addresses past the privacy boundary: {leaked[:5]}"
        )
