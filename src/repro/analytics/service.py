"""The analytics service: ZeroMQ in → enrich → TSDB + frontend out.

Topology (paper Fig 2): the DPDK stage PUSHes encoded latency records;
a pool of enrichment workers PULLs them ("using multiple threads"),
attaches geography and AS numbers, drops the addresses, and the
results fan out to (a) the time-series database, as both raw per-flow
points and windowed pair rollups, and (b) a PUB socket the WebSocket
frontend subscribes to.

Filter modules — the paper's extensibility example — are predicates
over enriched measurements inserted before the fan-out.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional

from repro.analytics.aggregator import PairAggregator
from repro.analytics.enricher import EnrichedMeasurement, Enricher, degraded_measurement
from repro.core.latency import Direction, LatencyRecord
from repro.geo.asn import AsnDatabase
from repro.geo.database import GeoDatabase
from repro.mq.codec import (
    CodecError,
    decode_latency_record,
    encode_enriched,
    encode_latency_record,
)
from repro.mq.frames import Message
from repro.mq.socket import Context, PubSocket, PushSocket
from repro.resilience.invariants import ConservationLedger
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point

LATENCY_TOPIC = b"latency"
ENRICHED_TOPIC = b"enriched"

MeasurementFilter = Callable[[EnrichedMeasurement], bool]

ANALYTICS_ENDPOINT = "inproc://analytics"


def _dlq_reason(exc: Exception) -> str:
    """A bounded-cardinality reason string for DLQ provenance.

    Digits are collapsed so messages like ``length 57 != 60`` map to a
    single reason (these become metric label values).
    """
    text = re.sub(r"\d+", "N", str(exc))
    name = type(exc).__name__
    return f"{name}: {text}" if text else name


def make_pipeline_sink(
    push: PushSocket, tracer=None
) -> Callable[[LatencyRecord], None]:
    """Adapter: a pipeline sink that publishes records over PUSH."""

    if tracer is None:
        def sink(record: LatencyRecord) -> None:
            push.send(
                Message.with_topic(LATENCY_TOPIC, encode_latency_record(record))
            )
    else:
        def sink(record: LatencyRecord) -> None:
            with tracer.span("mq.publish"):
                push.send(
                    Message.with_topic(LATENCY_TOPIC, encode_latency_record(record))
                )

    return sink


class AnalyticsService:
    """Enrichment workers plus the TSDB/frontend fan-out.

    Args:
        context: the message-bus context shared with the pipeline.
        geo / asn: enrichment databases.
        tsdb: destination database (a fresh one if omitted).
        num_workers: enrichment worker pool size (the paper's
            "multiple threads"); workers share one PULL socket and are
            polled round-robin.
        endpoint: where the PULL socket binds.
        aggregation_window_ns: rollup window for pair statistics.
        filters: keep-predicates applied after enrichment; a
            measurement rejected by any filter is counted and dropped.
        telemetry: a :class:`repro.obs.Telemetry` handle shared with
            the pipeline; binds analytics/mq counters to its registry
            and traces enrich/write/publish stages.
        resilience: a :class:`repro.resilience.ResilienceLayer`. When
            given, undecodable payloads are dead-lettered instead of
            merely counted, enrichment and TSDB writes run behind
            circuit breakers, and failed writes retry with backoff on
            the virtual clock. When the enrichment breaker is open,
            records publish *un-enriched* with the ``degraded`` flag
            rather than being lost.
    """

    def __init__(
        self,
        context: Context,
        geo: GeoDatabase,
        asn: AsnDatabase,
        geo6: Optional[GeoDatabase] = None,
        asn6: Optional[AsnDatabase] = None,
        tsdb: Optional[TimeSeriesDatabase] = None,
        num_workers: int = 4,
        endpoint: str = ANALYTICS_ENDPOINT,
        aggregation_window_ns: int = 1_000_000_000,
        filters: Optional[List[MeasurementFilter]] = None,
        store_raw_points: bool = True,
        home_country: str = "NZ",
        telemetry=None,
        resilience=None,
    ):
        if num_workers <= 0:
            raise ValueError("need at least one enrichment worker")
        self.context = context
        self.tsdb = tsdb or TimeSeriesDatabase()
        self.pull = context.pull()
        self.pull.bind(endpoint)
        self.endpoint = endpoint
        self.pub: PubSocket = context.pub()
        self.enrichers = [
            Enricher(geo, asn, geo6=geo6, asn6=asn6) for _ in range(num_workers)
        ]
        self._next_worker = 0
        self.aggregator = PairAggregator(
            window_ns=aggregation_window_ns,
            emit=self._write_points,
        )
        self.filters: List[MeasurementFilter] = list(filters or [])
        self.store_raw_points = store_raw_points
        self.home_country = home_country
        self.records_in = 0
        self.filtered_out = 0
        self.decode_errors = 0
        # Conservation accounting: every ingested record lands in
        # exactly one of processed / dropped_records / deadlettered.
        self.processed = 0
        self.dropped_records = 0
        self.deadlettered = 0
        self.resilience = resilience
        self._now_ns = 0
        # Recovery-harness hook: called once per ingested record,
        # playing the role of the tap's hardware counters — an observer
        # that survives the process (see repro.durability.harness).
        self.ingest_observer: Optional[Callable[[], None]] = None
        self.telemetry = telemetry
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._push_sockets: List[PushSocket] = []
        if telemetry is not None:
            self._bind_registry(telemetry.registry)
            if resilience is not None:
                resilience.bind_registry(telemetry.registry)

    # -- wiring helpers -----------------------------------------------------

    def connect_pipeline(self) -> PushSocket:
        """Create a PUSH socket connected to this service's input."""
        push = self.context.push()
        push.connect(self.endpoint)
        self._push_sockets.append(push)
        return push

    def make_sink(self) -> Callable[[LatencyRecord], None]:
        """A ready-made pipeline sink feeding this service."""
        return make_pipeline_sink(self.connect_pipeline(), tracer=self._tracer)

    def subscribe_frontend(self, hwm: int = 10_000):
        """Create a SUB socket receiving this service's enriched feed."""
        sub = self.context.sub(hwm=hwm)
        sub.subscribe(ENRICHED_TOPIC)
        endpoint = f"{self.endpoint}/frontend/{id(sub)}"
        sub.bind(endpoint)
        self.pub.connect(endpoint)
        return sub

    # -- processing ------------------------------------------------------------

    def poll(self, max_messages: int = 256) -> int:
        """Drain up to *max_messages* from the input; Eal-compatible."""
        handled = 0
        for message in self.pull.recv_all(max_messages):
            handled += 1
            self._process_message(message)
        return handled

    def _process_message(self, message: Message) -> None:
        self.records_in += 1
        if self.ingest_observer is not None:
            self.ingest_observer()
        payload = message.payload[0] if message.payload else b""
        try:
            record = decode_latency_record(payload)
        except (CodecError, IndexError, ValueError) as exc:
            self.decode_errors += 1
            if self.resilience is not None:
                self.resilience.dlq.push(
                    stage="mq.decode",
                    reason=_dlq_reason(exc),
                    payload=payload,
                    timestamp_ns=self._now_ns,
                )
                self.deadlettered += 1
            else:
                self.dropped_records += 1
            return
        if record.timestamp_ns > self._now_ns:
            self._now_ns = record.timestamp_ns
        measurement = self._enrich(record)
        if measurement is None:
            self.dropped_records += 1
            return
        self.process_measurement(measurement)

    def _enrich(self, record: LatencyRecord) -> Optional[EnrichedMeasurement]:
        """Enrich one record, degrading instead of failing.

        Without a resilience layer this is a plain enrich call (lookup
        exceptions propagate — there is no machinery to absorb them).
        With one, a raising enricher trips the breaker and an open
        breaker short-circuits straight to an un-enriched measurement
        carrying the ``degraded`` flag: the latency is never lost.
        """
        enricher = self.enrichers[self._next_worker]
        self._next_worker = (self._next_worker + 1) % len(self.enrichers)
        tracer = self._tracer
        res = self.resilience
        if res is None:
            if tracer is None:
                return enricher.enrich(record)
            # Enrichment is also the anonymization step: the output
            # type structurally drops the addresses.
            with tracer.span("analytics.enrich"):
                return enricher.enrich(record)
        breaker = res.enrich_breaker
        if not breaker.allow(self._now_ns):
            res.degraded_published += 1
            return degraded_measurement(record)
        try:
            if tracer is None:
                measurement = enricher.enrich(record)
            else:
                with tracer.span("analytics.enrich"):
                    measurement = enricher.enrich(record)
        except Exception:  # noqa: BLE001 — lookup faults are the fault model
            res.enrich_failures += 1
            breaker.record_failure(self._now_ns)
            res.degraded_published += 1
            return degraded_measurement(record)
        breaker.record_success(self._now_ns)
        return measurement

    def process_measurement(self, measurement: EnrichedMeasurement) -> None:
        """Post-enrichment path: filters, TSDB, aggregation, frontend."""
        if measurement.timestamp_ns > self._now_ns:
            self._now_ns = measurement.timestamp_ns
        for keep in self.filters:
            if not keep(measurement):
                self.filtered_out += 1
                self.dropped_records += 1
                return
        tracer = self._tracer
        if tracer is None:
            if self.store_raw_points:
                self._write_points(
                    [self._raw_point(measurement, self.home_country)]
                )
            self.aggregator.add(measurement)
            self.pub.send(
                Message.with_topic(ENRICHED_TOPIC, encode_enriched(measurement))
            )
            self.processed += 1
            return
        with tracer.span("analytics.write"):
            if self.store_raw_points:
                self._write_points(
                    [self._raw_point(measurement, self.home_country)]
                )
            self.aggregator.add(measurement)
        with tracer.span("analytics.publish"):
            self.pub.send(
                Message.with_topic(ENRICHED_TOPIC, encode_enriched(measurement))
            )
        self.processed += 1

    # -- guarded TSDB writes ------------------------------------------------

    def _write_points(self, points) -> None:
        """Write a point batch through the breaker/retry machinery.

        Without a resilience layer this is a plain ``write_batch``.
        With one: due retries flush first, an open breaker defers the
        batch instead of hammering a dead store, and a raising write
        defers with exponential backoff until the policy's attempt
        budget is spent — after which the points are shed *and counted*.
        """
        points = list(points)
        if not points:
            return
        if self.resilience is None:
            self.tsdb.write_batch(points)
            return
        self._flush_due_retries()
        self._try_write(points, attempts_made=0)

    def _try_write(self, points, attempts_made: int) -> bool:
        res = self.resilience
        now_ns = self._now_ns
        breaker = res.tsdb_breaker
        if not breaker.allow(now_ns):
            self._defer(points, max(attempts_made, 1))
            return False
        try:
            self.tsdb.write_batch(points)
        except Exception:  # noqa: BLE001 — write faults are the fault model
            res.tsdb_write_failures += 1
            breaker.record_failure(now_ns)
            if res.retry_policy.exhausted(attempts_made + 1):
                res.points_lost += len(points)
            else:
                self._defer(points, attempts_made + 1)
            return False
        breaker.record_success(now_ns)
        res.points_written += len(points)
        return True

    def _defer(self, points, attempts_made: int) -> None:
        evicted = self.resilience.retry_queue.schedule(
            points, self._now_ns, attempts_made
        )
        if evicted is not None:
            self.resilience.points_lost += len(evicted)

    def _flush_due_retries(self) -> None:
        res = self.resilience
        for points, attempts_made in res.retry_queue.due(self._now_ns):
            res.retries += 1
            self._try_write(points, attempts_made)

    def finish(self) -> None:
        """Flush aggregation windows and pending retries (end of a run)."""
        self.poll(max_messages=1 << 30)
        self.aggregator.flush()
        if self.resilience is not None:
            self._drain_retries()

    def _drain_retries(self, max_rounds: int = 64) -> None:
        """Run down the retry queue by advancing virtual drain time.

        The run is over, so "later" is manufactured: each round jumps
        ``now`` past the longest possible backoff and flushes. Batches
        that still cannot land (breaker stuck open against a dead
        store) are shed and counted rather than leaked.
        """
        res = self.resilience
        for _ in range(max_rounds):
            if not len(res.retry_queue):
                return
            self._now_ns += res.retry_policy.max_delay_ns + 1
            self._flush_due_retries()
        for points, _ in res.retry_queue.drain():
            res.points_lost += len(points)

    @staticmethod
    def _raw_point(measurement: EnrichedMeasurement, home_country: str) -> Point:
        direction = Direction.classify(
            measurement.src_country, measurement.dst_country, home_country
        )
        return Point(
            measurement="latency",
            timestamp_ns=measurement.timestamp_ns,
            tags={
                "src_country": measurement.src_country,
                "dst_country": measurement.dst_country,
                "src_city": measurement.src_city,
                "dst_city": measurement.dst_city,
                "src_asn": str(measurement.src_asn),
                "dst_asn": str(measurement.dst_asn),
                "direction": direction.value,
            },
            fields={
                "internal_ms": measurement.internal_ms,
                "external_ms": measurement.external_ms,
                "total_ms": measurement.total_ms,
            },
        )

    # -- reporting --------------------------------------------------------------

    @property
    def enriched_count(self) -> int:
        return sum(worker.stats.enriched for worker in self.enrichers)

    @property
    def now_ns(self) -> int:
        """The service's virtual now (latest record/measurement seen)."""
        return self._now_ns

    def conservation_ledger(self) -> ConservationLedger:
        """The count-conservation snapshot: ingested == processed +
        dropped + deadlettered. The chaos harness checks this after
        every run; it must balance under any fault profile."""
        return ConservationLedger(
            ingested=self.records_in,
            processed=self.processed,
            dropped=self.dropped_records,
            deadlettered=self.deadlettered,
        )

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the analytics tier: conservation counters, the open
        aggregation window, the virtual clock, and the resilience
        bundle (retry-queue point batches ride along as line protocol).
        """
        from repro.tsdb.line_protocol import format_point

        return {
            "records_in": self.records_in,
            "filtered_out": self.filtered_out,
            "decode_errors": self.decode_errors,
            "processed": self.processed,
            "dropped_records": self.dropped_records,
            "deadlettered": self.deadlettered,
            "now_ns": self._now_ns,
            "next_worker": self._next_worker,
            "aggregator": self.aggregator.state_dict(),
            "resilience": (
                self.resilience.state_dict(
                    encode_retry_item=lambda points: [
                        format_point(p) for p in points
                    ]
                )
                if self.resilience is not None
                else None
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.tsdb.line_protocol import parse_line

        self.records_in = int(state["records_in"])
        self.filtered_out = int(state["filtered_out"])
        self.decode_errors = int(state["decode_errors"])
        self.processed = int(state["processed"])
        self.dropped_records = int(state["dropped_records"])
        self.deadlettered = int(state["deadlettered"])
        self._now_ns = int(state["now_ns"])
        self._next_worker = int(state["next_worker"]) % len(self.enrichers)
        self.aggregator.load_state(state["aggregator"])
        if self.resilience is not None and state["resilience"] is not None:
            self.resilience.load_state(
                state["resilience"],
                decode_retry_item=lambda lines: [
                    parse_line(line) for line in lines
                ],
            )

    def _bind_registry(self, registry) -> None:
        """Bridge analytics and message-bus counters into *registry*.

        The binder body lives in :mod:`repro.stack.metrics` with the
        other tiers' binders; imported lazily because the stack package
        imports this module.
        """
        from repro.stack.metrics import bind_analytics_metrics

        bind_analytics_metrics(self, registry)
