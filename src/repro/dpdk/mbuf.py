"""Packet buffer (mbuf) pool with DPDK-style accounting.

On real hardware the NIC drops frames when the mbuf pool is empty;
reproducing that pressure matters for the SYN-flood resilience bench,
where a flood can exhaust buffers faster than workers free them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


class MbufPoolExhausted(RuntimeError):
    """Raised by :meth:`MbufPool.alloc` when no buffers remain."""


@dataclass
class Mbuf:
    """One packet buffer: raw frame bytes plus rx metadata.

    Mirrors the fields of ``rte_mbuf`` that Ruru's fast path touches:
    the data, the RSS hash computed by the NIC, the rx timestamp, and
    the queue the frame arrived on.
    """

    data: bytes = field(repr=False, default=b"")
    rss_hash: int = 0
    timestamp_ns: int = 0
    queue_id: int = 0
    pool: Optional["MbufPool"] = field(default=None, repr=False, compare=False)

    def free(self) -> None:
        """Return this buffer to its pool (no-op for pool-less mbufs)."""
        if self.pool is not None:
            self.pool.free(self)

    def __len__(self) -> int:
        return len(self.data)


class MbufPool:
    """A bounded pool of :class:`Mbuf` objects.

    Args:
        size: total number of buffers. DPDK pools are commonly sized
            as ``2^n - 1``; any positive size works here.
        name: label used in stats output.
    """

    def __init__(self, size: int = 8191, name: str = "mbuf_pool"):
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.size = size
        self.name = name
        self._free: List[Mbuf] = [Mbuf(pool=self) for _ in range(size)]
        self.alloc_count = 0
        self.free_count = 0
        self.exhausted_count = 0

    @property
    def available(self) -> int:
        """Buffers currently free."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Buffers currently allocated."""
        return self.size - len(self._free)

    def alloc(
        self, data: bytes, timestamp_ns: int = 0, rss_hash: int = 0, queue_id: int = 0
    ) -> Mbuf:
        """Take a buffer from the pool and fill it.

        Raises:
            MbufPoolExhausted: when the pool is empty (the caller —
                the NIC — counts this as an rx drop, ``imissed``).
        """
        if not self._free:
            self.exhausted_count += 1
            raise MbufPoolExhausted(self.name)
        mbuf = self._free.pop()
        mbuf.data = data
        mbuf.timestamp_ns = timestamp_ns
        mbuf.rss_hash = rss_hash
        mbuf.queue_id = queue_id
        self.alloc_count += 1
        return mbuf

    def free(self, mbuf: Mbuf) -> None:
        """Return *mbuf* to the pool."""
        if mbuf.pool is not self:
            raise ValueError("mbuf does not belong to this pool")
        if len(self._free) >= self.size:
            raise ValueError("double free: pool already full")
        mbuf.data = b""
        self._free.append(mbuf)
        self.free_count += 1

    def __repr__(self) -> str:
        return (
            f"MbufPool(name={self.name!r}, size={self.size}, "
            f"available={self.available})"
        )
