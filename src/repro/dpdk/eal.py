"""EAL-style lcore launcher.

DPDK's Environment Abstraction Layer pins one busy-polling thread per
core. The simulation runs lcores cooperatively and deterministically:
each registered lcore has a ``poll()`` callable returning how many
items it processed; :meth:`Eal.run` round-robins them until the
workload drains. This keeps runs reproducible (no real threads, no
races) while preserving the per-queue-worker structure the paper's
architecture diagram shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

PollFn = Callable[[], int]


@dataclass
class LCore:
    """A logical core: an id, a role label, and its poll function."""

    lcore_id: int
    role: str
    poll: PollFn
    iterations: int = 0
    work_done: int = 0
    idle_polls: int = 0

    def step(self) -> int:
        """Run one poll iteration; returns items processed."""
        done = self.poll()
        self.iterations += 1
        if done:
            self.work_done += done
        else:
            self.idle_polls += 1
        return done


class Eal:
    """Deterministic cooperative scheduler for lcores.

    Usage::

        eal = Eal()
        eal.launch(worker.poll, role="rx-worker")
        eal.run_until_idle()
    """

    def __init__(self):
        self.lcores: List[LCore] = []
        self._next_id = 0

    def launch(self, poll: PollFn, role: str = "worker") -> LCore:
        """Register a poll loop on the next free lcore."""
        lcore = LCore(lcore_id=self._next_id, role=role, poll=poll)
        self._next_id += 1
        self.lcores.append(lcore)
        return lcore

    def step_all(self) -> int:
        """One scheduling round: poll every lcore once; returns total work."""
        total = 0
        for lcore in self.lcores:
            total += lcore.step()
        return total

    def run_until_idle(self, max_rounds: int = 1_000_000, idle_rounds: int = 2) -> int:
        """Poll all lcores until *idle_rounds* consecutive rounds do no work.

        Returns the number of scheduling rounds executed.

        Raises:
            RuntimeError: the workload failed to drain within
                *max_rounds* (a stuck pipeline, surfaced loudly rather
                than spun on forever).
        """
        quiet = 0
        for round_index in range(max_rounds):
            if self.step_all() == 0:
                quiet += 1
                if quiet >= idle_rounds:
                    return round_index + 1
            else:
                quiet = 0
        raise RuntimeError(f"EAL did not go idle within {max_rounds} rounds")

    def stats(self) -> Dict[int, Dict[str, int]]:
        """Per-lcore work/idle counters keyed by lcore id."""
        return {
            lcore.lcore_id: {
                "iterations": lcore.iterations,
                "work_done": lcore.work_done,
                "idle_polls": lcore.idle_polls,
            }
            for lcore in self.lcores
        }
