"""Per-port statistics, mirroring ``rte_eth_stats``."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PortStats:
    """Counters a real NIC exposes; the benches report these.

    Attributes:
        ipackets: frames successfully received into mbufs.
        ibytes: bytes successfully received.
        imissed: frames dropped for lack of mbufs or ring space.
        ierrors: malformed frames rejected at classification.
        q_ipackets: per-queue receive counters.
    """

    ipackets: int = 0
    ibytes: int = 0
    imissed: int = 0
    ierrors: int = 0
    q_ipackets: Dict[int, int] = field(default_factory=dict)

    def record_rx(self, queue_id: int, frame_len: int) -> None:
        """Account one successfully queued frame."""
        self.ipackets += 1
        self.ibytes += frame_len
        self.q_ipackets[queue_id] = self.q_ipackets.get(queue_id, 0) + 1

    def record_miss(self) -> None:
        """Account one frame dropped before reaching a queue."""
        self.imissed += 1

    def record_error(self) -> None:
        """Account one malformed frame."""
        self.ierrors += 1

    def queue_balance(self) -> List[float]:
        """Fraction of received packets per queue (ordered by queue id).

        The RSS-scaling bench uses this to show RSS spreads load
        evenly across queues.
        """
        if not self.ipackets:
            return []
        queues = sorted(self.q_ipackets)
        return [self.q_ipackets[q] / self.ipackets for q in queues]

    def reset(self) -> None:
        """Zero all counters (``rte_eth_stats_reset``)."""
        self.ipackets = 0
        self.ibytes = 0
        self.imissed = 0
        self.ierrors = 0
        self.q_ipackets.clear()
