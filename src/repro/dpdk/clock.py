"""Virtual TSC-style clock.

DPDK applications timestamp packets with the CPU's TSC. The simulated
pipeline uses this explicit nanosecond clock instead so that tests can
assert exact latencies and whole runs are deterministic. Replayed
traces advance the clock to each packet's capture time; live-style
components (the frontend frame batcher, detector windows) read it the
way they would read ``rte_rdtsc()``.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically non-decreasing nanosecond clock.

    Attributes:
        now_ns: current virtual time in nanoseconds.
    """

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError("clock cannot start before zero")
        self.now_ns = start_ns

    def advance(self, delta_ns: int) -> int:
        """Move the clock forward by *delta_ns*; returns the new time."""
        if delta_ns < 0:
            raise ValueError("clock cannot run backwards")
        self.now_ns += delta_ns
        return self.now_ns

    def advance_to(self, timestamp_ns: int) -> int:
        """Advance to *timestamp_ns* if it is in the future; never rewinds.

        Replay uses this: packets carry capture timestamps and the
        clock follows them, tolerating slight reordering in the trace.
        """
        if timestamp_ns > self.now_ns:
            self.now_ns = timestamp_ns
        return self.now_ns

    @property
    def now_us(self) -> float:
        """Current time in microseconds."""
        return self.now_ns / 1_000.0

    @property
    def now_ms(self) -> float:
        """Current time in milliseconds."""
        return self.now_ns / 1_000_000.0

    @property
    def now_s(self) -> float:
        """Current time in seconds."""
        return self.now_ns / 1_000_000_000.0

    def __repr__(self) -> str:
        return f"VirtualClock(now_ns={self.now_ns})"
