"""Simulated multi-queue NIC port with hardware RSS classification.

A real NIC extracts the L3/L4 tuple in hardware, Toeplitz-hashes it,
picks an rx queue through the RETA, and DMAs the frame into an mbuf.
:class:`NicPort` does exactly that sequence in software: a minimal
header extraction (independent of the worker-side parser), the
:class:`~repro.dpdk.rss.RssHasher`, an mbuf allocation, and a bounded
per-queue ring. Workers drain queues with :meth:`RxQueue.rx_burst`,
DPDK-style.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.dpdk.mbuf import MbufPool, MbufPoolExhausted
from repro.dpdk.port_stats import PortStats
from repro.dpdk.ring import Ring
from repro.dpdk.rss import RssHasher, SYMMETRIC_RSS_KEY
from repro.net.packet import Packet

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

DEFAULT_BURST_SIZE = 32


class RxQueue:
    """One receive queue: a bounded ring of mbufs plus its id."""

    def __init__(self, queue_id: int, capacity: int = 4096):
        self.queue_id = queue_id
        self.ring: Ring = Ring(capacity=capacity, name=f"rxq{queue_id}")

    def rx_burst(self, max_packets: int = DEFAULT_BURST_SIZE) -> list:
        """Poll up to *max_packets* mbufs off this queue."""
        return self.ring.dequeue_burst(max_packets)

    def __len__(self) -> int:
        return len(self.ring)


class NicPort:
    """A port with RSS spreading frames across ``num_queues`` rx queues.

    Args:
        num_queues: receive queue count (one worker core each in Ruru).
        rss_key: the Toeplitz key; defaults to the symmetric key so
            both flow directions share a queue.
        mbuf_pool: buffer pool; a default pool is created if omitted.
        queue_capacity: ring slots per queue.
        admission: optional overload controller; when set, frames pass
            its priority triage before allocation and a full ring may
            displace its newest payload frame for a handshake frame.
    """

    def __init__(
        self,
        num_queues: int = 4,
        rss_key: bytes = SYMMETRIC_RSS_KEY,
        mbuf_pool: Optional[MbufPool] = None,
        queue_capacity: int = 4096,
        port_id: int = 0,
        admission=None,
    ):
        self.port_id = port_id
        self.hasher = RssHasher(key=rss_key, num_queues=num_queues)
        self.queues: List[RxQueue] = [
            RxQueue(i, capacity=queue_capacity) for i in range(num_queues)
        ]
        self.pool = mbuf_pool or MbufPool(size=max(8192, queue_capacity * num_queues))
        self.stats = PortStats()
        self.admission = admission

    @property
    def num_queues(self) -> int:
        return len(self.queues)

    # -- hardware-side classification -----------------------------------

    @staticmethod
    def _extract_tuple(data: bytes) -> Optional[Tuple[int, int, int, int, bool]]:
        """Hardware-style tuple extraction; None if the frame has no
        hashable TCP/UDP 4-tuple (such frames go to queue 0).
        """
        if len(data) < 14:
            return None
        ethertype = _U16.unpack_from(data, 12)[0]
        offset = 14
        while ethertype == 0x8100 and len(data) >= offset + 4:
            ethertype = _U16.unpack_from(data, offset + 2)[0]
            offset += 4
        if ethertype == 0x0800:  # IPv4
            if len(data) < offset + 20:
                return None
            ihl = (data[offset] & 0xF) * 4
            protocol = data[offset + 9]
            if protocol not in (6, 17) or len(data) < offset + ihl + 4:
                return None
            src = _U32.unpack_from(data, offset + 12)[0]
            dst = _U32.unpack_from(data, offset + 16)[0]
            sport = _U16.unpack_from(data, offset + ihl)[0]
            dport = _U16.unpack_from(data, offset + ihl + 2)[0]
            return src, dst, sport, dport, False
        if ethertype == 0x86DD:  # IPv6
            if len(data) < offset + 44:
                return None
            next_header = data[offset + 6]
            if next_header not in (6, 17):
                return None
            src = int.from_bytes(data[offset + 8:offset + 24], "big")
            dst = int.from_bytes(data[offset + 24:offset + 40], "big")
            sport = _U16.unpack_from(data, offset + 40)[0]
            dport = _U16.unpack_from(data, offset + 42)[0]
            return src, dst, sport, dport, True
        return None

    # -- rx path ----------------------------------------------------------

    def receive(self, packet: Packet) -> bool:
        """Classify one frame and queue it; False if it was dropped.

        Drops happen when the mbuf pool is exhausted or the chosen rx
        ring is full — both counted in :attr:`stats` as ``imissed``,
        matching NIC semantics. With an admission controller attached,
        frames the ladder sheds are rejected before allocation, and a
        full ring first tries to displace its newest payload frame to
        make room for an incoming handshake frame; either way the
        controller attributes the loss per class and stage.
        """
        data = packet.data
        admission = self.admission
        klass = None
        if admission is not None:
            admitted, klass, data = admission.admit_frame(data)
            if not admitted:
                self.stats.record_miss()
                return False

        extracted = self._extract_tuple(data)
        if extracted is None:
            rss_hash = 0
            queue_id = 0
        else:
            src, dst, sport, dport, is_ipv6 = extracted
            rss_hash = self.hasher.hash_tuple(src, dst, sport, dport, is_ipv6)
            queue_id = self.hasher.queue_for_hash(rss_hash)

        try:
            mbuf = self.pool.alloc(
                data=data,
                timestamp_ns=packet.timestamp_ns,
                rss_hash=rss_hash,
                queue_id=queue_id,
            )
        except MbufPoolExhausted:
            self.stats.record_miss()
            return False

        ring = self.queues[queue_id].ring
        if ring.is_full:
            if admission is not None and admission.should_displace(klass):
                victim = ring.displace_newest(admission.is_displaceable)
                if victim is not None:
                    victim.free()
                    admission.record_ring_displacement()
                    ring.enqueue(mbuf)
                    self.stats.record_rx(queue_id, len(data))
                    return True
            mbuf.free()
            self.stats.record_miss()
            if admission is not None:
                admission.record_ring_drop(klass)
            return False
        ring.enqueue(mbuf)
        self.stats.record_rx(queue_id, len(data))
        return True

    def receive_burst(self, packets) -> int:
        """Feed a burst of frames; returns how many were queued."""
        accepted = 0
        for packet in packets:
            if self.receive(packet):
                accepted += 1
        return accepted

    def rx_burst(self, queue_id: int, max_packets: int = DEFAULT_BURST_SIZE) -> list:
        """Poll a queue (``rte_eth_rx_burst`` equivalent)."""
        return self.queues[queue_id].rx_burst(max_packets)

    def pending(self) -> int:
        """Total mbufs sitting in rx rings."""
        return sum(len(queue) for queue in self.queues)

    def rebalance(self, weights) -> None:
        """Rewrite the RETA with queue shares proportional to *weights*.

        The live-reconfiguration knob real NICs expose
        (``rte_eth_dev_rss_reta_update``). Note the documented cost:
        flows in mid-handshake when the table changes can land their
        remaining packets on a different queue and be lost to
        measurement — the ablation tests quantify this.
        """
        if len(weights) != self.num_queues:
            raise ValueError("need one weight per queue")
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        size = len(self.hasher.reta)
        total = float(sum(weights))
        # Largest-remainder apportionment keeps the table exact-size.
        shares = [weight / total * size for weight in weights]
        counts = [int(share) for share in shares]
        remainders = sorted(
            range(self.num_queues),
            key=lambda q: shares[q] - counts[q],
            reverse=True,
        )
        deficit = size - sum(counts)
        for queue in remainders[:deficit]:
            counts[queue] += 1
        # Interleave queues across the table rather than long runs.
        interleaved = []
        remaining = list(counts)
        while len(interleaved) < size:
            for queue in range(self.num_queues):
                if remaining[queue] > 0:
                    interleaved.append(queue)
                    remaining[queue] -= 1
        self.hasher.set_reta(interleaved)
