"""Bounded ring buffers for queue↔worker handoff.

Models ``rte_ring``: fixed capacity, burst enqueue/dequeue, and
watermark stats. Overflow behaviour is explicit — a full ring rejects
the burst remainder and the producer counts drops, exactly the
pressure signal the RSS-scaling bench measures.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class RingFull(RuntimeError):
    """Raised by :meth:`Ring.enqueue` when the ring is at capacity."""


class RingEmpty(RuntimeError):
    """Raised by :meth:`Ring.dequeue` when the ring is empty."""


class Ring(Generic[T]):
    """A bounded FIFO with burst operations and occupancy stats."""

    def __init__(self, capacity: int = 1024, name: str = "ring"):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.drops = 0
        self.displaced = 0
        self.high_watermark = 0
        self._peak = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free_space(self) -> int:
        """Slots remaining."""
        return self.capacity - len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def enqueue(self, item: T) -> None:
        """Add one item.

        Raises:
            RingFull: at capacity; the drop is counted.
        """
        if len(self._items) >= self.capacity:
            self.drops += 1
            raise RingFull(self.name)
        self._items.append(item)
        self.enqueued += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        if len(self._items) > self._peak:
            self._peak = len(self._items)

    def enqueue_burst(self, items: Iterable[T]) -> int:
        """Add as many items as fit; returns how many were accepted.

        Items beyond capacity are dropped and counted, mirroring
        ``rte_ring_enqueue_burst`` semantics.
        """
        accepted = 0
        for item in items:
            if len(self._items) >= self.capacity:
                self.drops += 1
                continue
            self._items.append(item)
            self.enqueued += 1
            accepted += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        if len(self._items) > self._peak:
            self._peak = len(self._items)
        return accepted

    def take_peak(self) -> int:
        """Peak occupancy since the last call; resets to current depth.

        The pipeline drains rings to empty at batch boundaries, so an
        instantaneous read is useless as a pressure signal — overload
        sensors read the within-batch peak instead.
        """
        peak = max(self._peak, len(self._items))
        self._peak = len(self._items)
        return peak

    def displace_newest(self, predicate: Callable[[T], bool]) -> Optional[T]:
        """Remove and return the newest queued item matching *predicate*.

        Priority admission under overload: a full ring can evict its
        newest low-priority item to make room for a high-priority one
        (newest, because the oldest is closest to being served).
        Returns None if nothing matches; the caller owns the victim.
        """
        items = self._items
        for index in range(len(items) - 1, -1, -1):
            if predicate(items[index]):
                victim = items[index]
                del items[index]
                self.displaced += 1
                return victim
        return None

    def dequeue(self) -> T:
        """Remove and return one item.

        Raises:
            RingEmpty: nothing queued.
        """
        if not self._items:
            raise RingEmpty(self.name)
        self.dequeued += 1
        return self._items.popleft()

    def dequeue_burst(self, max_items: int) -> List[T]:
        """Remove up to *max_items*; empty list when nothing is queued."""
        if max_items < 0:
            raise ValueError("burst size cannot be negative")
        count = min(max_items, len(self._items))
        burst = [self._items.popleft() for _ in range(count)]
        self.dequeued += count
        return burst

    def __repr__(self) -> str:
        return (
            f"Ring(name={self.name!r}, capacity={self.capacity}, "
            f"occupancy={len(self._items)}, drops={self.drops})"
        )
