"""Bounded ring buffers for queue↔worker handoff.

Models ``rte_ring``: fixed capacity, burst enqueue/dequeue, and
watermark stats. Overflow behaviour is explicit — a full ring rejects
the burst remainder and the producer counts drops, exactly the
pressure signal the RSS-scaling bench measures.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, TypeVar

T = TypeVar("T")


class RingFull(RuntimeError):
    """Raised by :meth:`Ring.enqueue` when the ring is at capacity."""


class RingEmpty(RuntimeError):
    """Raised by :meth:`Ring.dequeue` when the ring is empty."""


class Ring(Generic[T]):
    """A bounded FIFO with burst operations and occupancy stats."""

    def __init__(self, capacity: int = 1024, name: str = "ring"):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.drops = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free_space(self) -> int:
        """Slots remaining."""
        return self.capacity - len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def enqueue(self, item: T) -> None:
        """Add one item.

        Raises:
            RingFull: at capacity; the drop is counted.
        """
        if len(self._items) >= self.capacity:
            self.drops += 1
            raise RingFull(self.name)
        self._items.append(item)
        self.enqueued += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)

    def enqueue_burst(self, items: Iterable[T]) -> int:
        """Add as many items as fit; returns how many were accepted.

        Items beyond capacity are dropped and counted, mirroring
        ``rte_ring_enqueue_burst`` semantics.
        """
        accepted = 0
        for item in items:
            if len(self._items) >= self.capacity:
                self.drops += 1
                continue
            self._items.append(item)
            self.enqueued += 1
            accepted += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        return accepted

    def dequeue(self) -> T:
        """Remove and return one item.

        Raises:
            RingEmpty: nothing queued.
        """
        if not self._items:
            raise RingEmpty(self.name)
        self.dequeued += 1
        return self._items.popleft()

    def dequeue_burst(self, max_items: int) -> List[T]:
        """Remove up to *max_items*; empty list when nothing is queued."""
        if max_items < 0:
            raise ValueError("burst size cannot be negative")
        count = min(max_items, len(self._items))
        burst = [self._items.popleft() for _ in range(count)]
        self.dequeued += count
        return burst

    def __repr__(self) -> str:
        return (
            f"Ring(name={self.name!r}, capacity={self.capacity}, "
            f"occupancy={len(self._items)}, drops={self.drops})"
        )
