"""DPDK simulation: the substrate Ruru's fast path runs on.

The real Ruru uses DPDK's poll-mode driver, symmetric Receive Side
Scaling (RSS) into multiple hardware queues, and one processing thread
per queue pinned to its own core. This package reproduces those
semantics in-process:

* :mod:`repro.dpdk.clock` — a virtual TSC-style nanosecond clock.
* :mod:`repro.dpdk.mbuf` — a fixed-size packet-buffer pool with
  alloc/free accounting (exhaustion == rx drops, as on real hardware).
* :mod:`repro.dpdk.ring` — bounded single-producer/single-consumer
  rings used for queue↔worker handoff.
* :mod:`repro.dpdk.rss` — the Toeplitz RSS hash, including the
  symmetric key trick that sends both directions of a flow to the
  same queue (Ruru depends on this so SYN and SYN-ACK meet in one
  hash table).
* :mod:`repro.dpdk.nic` — a multi-queue NIC that classifies incoming
  frames with RSS and exposes per-queue ``rx_burst``.
* :mod:`repro.dpdk.eal` — an EAL-style lcore launcher for running one
  worker per queue (cooperative, deterministic scheduling).
"""

from repro.dpdk.clock import VirtualClock
from repro.dpdk.mbuf import Mbuf, MbufPool, MbufPoolExhausted
from repro.dpdk.ring import Ring, RingEmpty, RingFull
from repro.dpdk.rss import (
    DEFAULT_RSS_KEY,
    SYMMETRIC_RSS_KEY,
    RssHasher,
    make_symmetric_key,
    toeplitz_hash,
)
from repro.dpdk.nic import NicPort, RxQueue
from repro.dpdk.eal import Eal, LCore
from repro.dpdk.port_stats import PortStats

__all__ = [
    "VirtualClock",
    "Mbuf",
    "MbufPool",
    "MbufPoolExhausted",
    "Ring",
    "RingEmpty",
    "RingFull",
    "DEFAULT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "RssHasher",
    "make_symmetric_key",
    "toeplitz_hash",
    "NicPort",
    "RxQueue",
    "Eal",
    "LCore",
    "PortStats",
]
