"""Receive Side Scaling: the Toeplitz hash and queue selection.

Ruru "configure[s] symmetric Receiver Side Scaling (RSS) at the start
of the pipeline" so that both directions of a TCP flow — the SYN one
way, the SYN-ACK the other — hash to the same receive queue and
therefore meet in the same per-queue hash table. This module
implements the actual Toeplitz hash NICs use, the symmetric-key trick
(a key built from a repeated 16-bit pattern makes the hash invariant
under src/dst swap), and the RETA-style indirection table that maps a
hash to a queue.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence

# Microsoft's example verification key from the RSS specification; the
# de-facto default in many NIC drivers. Not symmetric.
DEFAULT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


def make_symmetric_key(length: int = 40, pattern: bytes = b"\x6d\x5a") -> bytes:
    """Build a symmetric RSS key by repeating a 16-bit *pattern*.

    With a key whose bytes repeat with period 2, the Toeplitz hash of
    (src, dst, sport, dport) equals the hash of (dst, src, dport,
    sport) — the property Ruru's per-queue hash tables rely on.
    """
    if length <= 0:
        raise ValueError("key length must be positive")
    if len(pattern) != 2:
        raise ValueError("symmetric pattern must be exactly 2 bytes")
    repeats = (length + 1) // 2
    return (pattern * repeats)[:length]


# The standard symmetric key (repeated 0x6d5a), as used by e.g. the
# original symmetric-RSS paper and DPDK sample configs.
SYMMETRIC_RSS_KEY = make_symmetric_key(40)


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """Reference bit-serial Toeplitz hash (32-bit result).

    For every set bit *i* of *data* (MSB first), XOR in the 32-bit
    window of *key* starting at bit *i*. Kept simple as the oracle the
    fast table-driven :class:`RssHasher` is tested against.
    """
    needed_bits = len(data) * 8 + 32
    if len(key) * 8 < needed_bits:
        raise ValueError(
            f"key too short: need {needed_bits} bits, have {len(key) * 8}"
        )
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for i in range(len(data) * 8):
        byte = data[i // 8]
        if byte & (0x80 >> (i % 8)):
            window = (key_int >> (key_bits - 32 - i)) & 0xFFFFFFFF
            result ^= window
    return result


class RssHasher:
    """Table-accelerated Toeplitz hasher with queue selection.

    Precomputes, per (byte offset, byte value), the XOR contribution to
    the hash — the same optimization NIC datasheets describe — so
    per-packet hashing is a handful of table lookups.

    Args:
        key: the 40-byte (or longer, for IPv6) RSS key. Defaults to
            the symmetric key, matching Ruru's configuration.
        num_queues: receive queues to spread across.
        reta_size: size of the redirection table (power of two).
    """

    IPV4_TUPLE_LEN = 12  # src(4) dst(4) sport(2) dport(2)
    IPV6_TUPLE_LEN = 36  # src(16) dst(16) sport(2) dport(2)

    def __init__(
        self,
        key: bytes = SYMMETRIC_RSS_KEY,
        num_queues: int = 4,
        reta_size: int = 128,
    ):
        if num_queues <= 0:
            raise ValueError("need at least one queue")
        if reta_size <= 0 or reta_size & (reta_size - 1):
            raise ValueError("reta_size must be a positive power of two")
        min_len = self.IPV4_TUPLE_LEN + 4
        if len(key) < min_len:
            raise ValueError(f"RSS key must be at least {min_len} bytes")
        self.key = key
        self.num_queues = num_queues
        # Default RETA: round-robin queues across the table, like
        # rte_eth_dev_rss_reta_update's common initialization.
        self.reta: List[int] = [i % num_queues for i in range(reta_size)]
        self._tables: Dict[int, List[List[int]]] = {}

    # -- hashing ---------------------------------------------------------

    def _table_for_length(self, length: int) -> List[List[int]]:
        """Per-byte XOR contribution tables for inputs of *length* bytes."""
        table = self._tables.get(length)
        if table is not None:
            return table
        if len(self.key) * 8 < length * 8 + 32:
            # IPv6 tuples need a 68-byte key; extend by cycling, which
            # preserves the 2-byte symmetry of symmetric keys.
            repeats = (length + 4 + len(self.key) - 1) // len(self.key) + 1
            key = (self.key * repeats)[: length + 4]
        else:
            key = self.key
        key_int = int.from_bytes(key, "big")
        key_bits = len(key) * 8
        table = []
        for offset in range(length):
            row = [0] * 256
            for bit in range(8):
                window = (
                    key_int >> (key_bits - 32 - (offset * 8 + bit))
                ) & 0xFFFFFFFF
                mask = 0x80 >> bit
                for value in range(256):
                    if value & mask:
                        row[value] ^= window
            table.append(row)
        self._tables[length] = table
        return table

    def hash_bytes(self, data: bytes) -> int:
        """Toeplitz hash of arbitrary-length *data*."""
        table = self._table_for_length(len(data))
        result = 0
        for offset, byte in enumerate(data):
            result ^= table[offset][byte]
        return result

    def hash_ipv4_tuple(
        self, src_ip: int, dst_ip: int, src_port: int, dst_port: int
    ) -> int:
        """Hash an IPv4 TCP/UDP 4-tuple."""
        data = struct.pack("!IIHH", src_ip, dst_ip, src_port, dst_port)
        return self.hash_bytes(data)

    def hash_ipv6_tuple(
        self, src_ip: int, dst_ip: int, src_port: int, dst_port: int
    ) -> int:
        """Hash an IPv6 TCP/UDP 4-tuple."""
        data = (
            src_ip.to_bytes(16, "big")
            + dst_ip.to_bytes(16, "big")
            + struct.pack("!HH", src_port, dst_port)
        )
        return self.hash_bytes(data)

    def hash_tuple(
        self,
        src_ip: int,
        dst_ip: int,
        src_port: int,
        dst_port: int,
        is_ipv6: bool = False,
    ) -> int:
        """Hash a 4-tuple, dispatching on address family."""
        if is_ipv6:
            return self.hash_ipv6_tuple(src_ip, dst_ip, src_port, dst_port)
        return self.hash_ipv4_tuple(src_ip, dst_ip, src_port, dst_port)

    # -- queue selection ---------------------------------------------------

    def queue_for_hash(self, rss_hash: int) -> int:
        """Map a 32-bit hash to a queue via the indirection table."""
        return self.reta[rss_hash & (len(self.reta) - 1)]

    def set_reta(self, entries: Sequence[int]) -> None:
        """Replace the redirection table (length must be a power of two)."""
        size = len(entries)
        if size <= 0 or size & (size - 1):
            raise ValueError("RETA length must be a positive power of two")
        for queue in entries:
            if not 0 <= queue < self.num_queues:
                raise ValueError(f"RETA entry {queue} out of range")
        self.reta = list(entries)

    @property
    def is_symmetric(self) -> bool:
        """True if the key has the 2-byte repetition symmetry property."""
        return all(
            self.key[i] == self.key[i % 2] for i in range(len(self.key))
        )
