"""Shard child processes: the per-queue worker body and its main loop.

A worker shard is the process-isolated analogue of
:class:`repro.core.worker.QueueWorker`: one packet parser feeding one
handshake tracker, owning exactly one RX queue's traffic (the parent's
RSS router guarantees flow affinity, so both directions of a flow land
here). There is no NIC or ring inside the shard — the wire transport
*is* the queue.

The main loops never return into the caller's stack: children are
forked, and a forked Python process that falls back into pytest or the
CLI would re-run atexit handlers and flush duplicated stdio. The
supervisor wraps these loops and ``os._exit``\\ s with their return
code.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable, List, Optional, Tuple

from repro.core.config import PipelineConfig
from repro.core.handshake import HandshakeTracker
from repro.mq.codec import encode_latency_record
from repro.mq.frames import Message
from repro.net.parser import PacketParser, ParseError
from repro.shard import protocol
from repro.shard.heartbeat import encode_heartbeat
from repro.shard.transport import Transport, TransportClosed, TransportError

#: Default wall-clock heartbeat cadence for shard children.
HEARTBEAT_INTERVAL_NS = 25_000_000  # 25 ms


class ShardWorker:
    """One shard's processing engine: parser + tracker + counters.

    Mirrors :class:`~repro.core.worker.QueueWorker`'s shape (including
    flow sampling and the sweep cadence) so a sharded run and a
    single-process run produce identical measurements for identical
    routed traffic.
    """

    def __init__(self, shard_id: int, config: Optional[PipelineConfig] = None):
        self.shard_id = shard_id
        self.config = config or PipelineConfig()
        self.parser = PacketParser()
        self._records: List[bytes] = []
        self.tracker = HandshakeTracker(
            config=self.config,
            queue_id=shard_id,
            sink=lambda record: self._records.append(
                encode_latency_record(record)
            ),
        )
        self.packets_processed = 0
        self.packets_sampled_out = 0
        self.parse_errors = 0
        self.records_emitted = 0
        self.batches_acked = 0
        self.last_seq = 0
        self._latest_ns = 0

    def process_batch(
        self, seq: int, packets: List[Tuple[int, int, bytes]]
    ) -> Message:
        """Process one routed batch; returns the ack message."""
        modulus = self.config.flow_sample_modulus
        parse_errors_before = self.parse_errors
        for timestamp_ns, rss_hash, data in packets:
            self.packets_processed += 1
            if timestamp_ns > self._latest_ns:
                self._latest_ns = timestamp_ns
            if modulus > 1 and rss_hash % modulus:
                self.packets_sampled_out += 1
                continue
            try:
                parsed = self.parser.parse(data, timestamp_ns)
            except ParseError:
                self.parse_errors += 1
                continue
            self.tracker.process(parsed, rss_hash=rss_hash)
        self.tracker.maybe_sweep(self._latest_ns)
        records = self._records
        self._records = []
        self.records_emitted += len(records)
        self.batches_acked += 1
        self.last_seq = seq
        return protocol.encode_ack(
            seq,
            processed=len(packets),
            parse_errors=self.parse_errors - parse_errors_before,
            records=records,
        )

    # -- durability ----------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "packets_processed": self.packets_processed,
            "packets_sampled_out": self.packets_sampled_out,
            "parse_errors": self.parse_errors,
            "records_emitted": self.records_emitted,
            "batches_acked": self.batches_acked,
            "last_seq": self.last_seq,
            "latest_ns": self._latest_ns,
            "tracker": self.tracker.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        if int(state["shard_id"]) != self.shard_id:
            raise ValueError(
                f"state for shard {state['shard_id']} loaded into "
                f"shard {self.shard_id}"
            )
        self.packets_processed = int(state["packets_processed"])
        self.packets_sampled_out = int(state["packets_sampled_out"])
        self.parse_errors = int(state["parse_errors"])
        self.records_emitted = int(state["records_emitted"])
        self.batches_acked = int(state["batches_acked"])
        self.last_seq = int(state["last_seq"])
        self._latest_ns = int(state["latest_ns"])
        self.tracker.load_state(state["tracker"])

    def apply_ack_deltas(self, deltas: List[dict]) -> int:
        """Replay WAL'd ack deltas on top of a checkpoint.

        The checkpoint restores the tracker and counters as of its
        cut; the parent's per-shard WAL holds the *acked* batches
        since. Replaying their counter deltas makes this shard's final
        self-reported ledger agree exactly with what the parent
        accounted — the flow-table contents of those batches are the
        bounded measurement loss a crash costs (you cannot replay live
        wire traffic), but the *books* balance to the packet.
        """
        for delta in deltas:
            self.packets_processed += int(delta["processed"])
            self.parse_errors += int(delta["parse_errors"])
            self.records_emitted += int(delta["records"])
            self.batches_acked += 1
            self.last_seq = max(self.last_seq, int(delta["seq"]))
        return len(deltas)

    def ledger(self) -> dict:
        return {
            "packets_processed": self.packets_processed,
            "packets_sampled_out": self.packets_sampled_out,
            "parse_errors": self.parse_errors,
            "records_emitted": self.records_emitted,
            "batches_acked": self.batches_acked,
            "last_seq": self.last_seq,
        }


def shard_child_main(
    transport: Transport,
    shard_id: int,
    config: Optional[PipelineConfig] = None,
    heartbeat_interval_ns: int = HEARTBEAT_INTERVAL_NS,
) -> int:
    """The worker shard's process body; returns an exit code.

    Protocol handling is strictly sequential (one transport, FIFO), so
    a checkpoint request cuts between batches — the same consistent-cut
    property the in-process stage graph gets from batch boundaries.
    """
    worker = ShardWorker(shard_id, config=config)
    kill_at_seq: Optional[int] = None
    hb_seq = 0
    last_hb_ns = 0
    recv_timeout_s = heartbeat_interval_ns / 4 / 1e9
    while True:
        now_ns = time.monotonic_ns()
        if now_ns - last_hb_ns >= heartbeat_interval_ns:
            try:
                transport.send(encode_heartbeat(shard_id, hb_seq))
            except (TransportClosed, TransportError):
                return 1  # parent is gone; nothing to serve
            hb_seq += 1
            last_hb_ns = now_ns
        try:
            message = transport.recv(timeout=recv_timeout_s)
        except (TransportClosed, TransportError):
            return 1
        if message is None:
            continue
        topic = message.topic
        if topic == protocol.BATCH_TOPIC:
            seq, packets = protocol.decode_batch(message)
            if kill_at_seq is not None and seq >= kill_at_seq:
                # The scheduled fault: die *hard* while holding this
                # batch, exactly as a segfault would — no ack, no
                # flush, no goodbye. The parent must account the batch
                # as lost_at_crash and recover us from the checkpoint.
                os.kill(os.getpid(), signal.SIGKILL)
            ack = worker.process_batch(seq, packets)
            try:
                transport.send(ack)
            except (TransportClosed, TransportError):
                return 1
        elif topic == protocol.CKPT_REQ_TOPIC:
            request = protocol.decode_json(message)
            reply = protocol.encode_json(
                protocol.CKPT_TOPIC,
                {
                    "seq": int(request.get("seq", 0)),
                    "state": worker.state_dict(),
                },
            )
            try:
                transport.send(reply)
            except (TransportClosed, TransportError):
                return 1
        elif topic == protocol.RESTORE_TOPIC:
            payload = protocol.decode_json(message)
            if payload.get("state") is not None:
                worker.load_state(payload["state"])
            worker.apply_ack_deltas(payload.get("deltas", []))
            fault = payload.get("fault") or {}
            if fault.get("kill_at_seq") is not None:
                kill_at_seq = int(fault["kill_at_seq"])
        elif topic == protocol.FAULT_TOPIC:
            payload = protocol.decode_json(message)
            if payload.get("kill_at_seq") is not None:
                kill_at_seq = int(payload["kill_at_seq"])
            else:
                kill_at_seq = None
        elif topic == protocol.DRAIN_TOPIC:
            reply = protocol.encode_json(
                protocol.DRAINED_TOPIC,
                {"shard_id": shard_id, "ledger": worker.ledger()},
            )
            try:
                transport.send(reply)
            except (TransportClosed, TransportError):
                return 1
            return 0
        # Unknown topics are ignored: a newer parent may speak newer
        # control verbs; the dataplane topics above are versioned by
        # the wire layer.


def analytics_child_main(
    transport: Transport,
    shard_id: int,
    make_service: Callable[[], object],
    heartbeat_interval_ns: int = HEARTBEAT_INTERVAL_NS,
) -> int:
    """The decoupled analytics tier as its own shard process.

    *make_service* is called post-fork (so sockets, RNGs and telemetry
    live entirely in this process) and must return an
    :class:`repro.analytics.service.AnalyticsService` — constructed by
    the composition root, never here.
    """
    service = make_service()
    push = service.connect_pipeline()
    hb_seq = 0
    last_hb_ns = 0
    recv_timeout_s = heartbeat_interval_ns / 4 / 1e9
    while True:
        now_ns = time.monotonic_ns()
        if now_ns - last_hb_ns >= heartbeat_interval_ns:
            try:
                transport.send(encode_heartbeat(shard_id, hb_seq))
            except (TransportClosed, TransportError):
                return 1
            hb_seq += 1
            last_hb_ns = now_ns
        try:
            message = transport.recv(timeout=recv_timeout_s)
        except (TransportClosed, TransportError):
            return 1
        if message is None:
            continue
        topic = message.topic
        if topic == protocol.RECORDS_TOPIC:
            from repro.analytics.service import LATENCY_TOPIC

            seq, records = protocol.decode_records(message)
            for record in records:
                push.send(Message.with_topic(LATENCY_TOPIC, record))
            while service.poll(max_messages=256):
                pass
            try:
                transport.send(protocol.encode_records_ack(seq, len(records)))
            except (TransportClosed, TransportError):
                return 1
        elif topic == protocol.CKPT_REQ_TOPIC:
            request = protocol.decode_json(message)
            reply = protocol.encode_json(
                protocol.CKPT_TOPIC,
                {
                    "seq": int(request.get("seq", 0)),
                    "state": service.state_dict(),
                },
            )
            try:
                transport.send(reply)
            except (TransportClosed, TransportError):
                return 1
        elif topic == protocol.RESTORE_TOPIC:
            payload = protocol.decode_json(message)
            if payload.get("state") is not None:
                service.load_state(payload["state"])
        elif topic == protocol.DRAIN_TOPIC:
            service.finish()
            ledger = service.conservation_ledger()
            summary = {
                "shard_id": shard_id,
                "enriched": service.enriched_count,
                "records_ingested": ledger.ingested,
                "records_processed": ledger.processed,
            }
            tsdb = getattr(service, "tsdb", None)
            if tsdb is not None:
                summary["tsdb_points"] = tsdb.total_points()
            try:
                transport.send(
                    protocol.encode_json(protocol.DRAINED_TOPIC, summary)
                )
            except (TransportClosed, TransportError):
                return 1
            return 0
