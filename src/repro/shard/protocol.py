"""The parent↔shard control protocol: topics and payload codecs.

Every message is a normal :class:`repro.mq.frames.Message` (topic
frame + payload frames) carried over the wire framing — the same
multipart model the in-process bus uses, so the codec layer is shared
rather than reinvented.

Dataplane:

* ``batch``  parent → shard: one routed packet batch (seq, packets).
* ``ack``    shard → parent: that batch's outcome — processed count,
  parse errors, and every completed latency record, **in the same
  message**. Accounting is all-or-nothing per batch: either the parent
  sees the ack (counts + records together) or it sees nothing and the
  batch is charged to ``lost_at_crash``.
* ``records`` / ``rack`` parent ↔ analytics shard: latency records
  forwarded to a decoupled analytics process, and its receipt.

Control plane: ``hb`` heartbeats (:mod:`repro.shard.heartbeat`),
``ckpt_req``/``ckpt`` checkpoint capture, ``restore`` state + WAL
deltas into a restarted shard, ``fault`` scheduled-fault arming,
``drain``/``drained`` the graceful shutdown handshake.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable, List, Tuple

from repro.mq.frames import Message

BATCH_TOPIC = b"batch"
ACK_TOPIC = b"ack"
RECORDS_TOPIC = b"records"
RECORDS_ACK_TOPIC = b"rack"
CKPT_REQ_TOPIC = b"ckpt_req"
CKPT_TOPIC = b"ckpt"
RESTORE_TOPIC = b"restore"
FAULT_TOPIC = b"fault"
DRAIN_TOPIC = b"drain"
DRAINED_TOPIC = b"drained"

_PKT = struct.Struct("!QII")  # timestamp_ns, rss_hash, data length
_BATCH_HDR = struct.Struct("!QI")  # seq, packet count
_ACK_HDR = struct.Struct("!QIII")  # seq, processed, parse_errors, records
_RECORDS_HDR = struct.Struct("!QI")  # seq, record count
_LEN = struct.Struct("!I")


class ProtocolError(ValueError):
    """A protocol message failed structural validation."""


# -- packet batches ----------------------------------------------------------


def pack_packets(packets: Iterable[Tuple[int, int, bytes]]) -> Tuple[bytes, int]:
    """``(timestamp_ns, rss_hash, data)`` triples → one blob + count."""
    parts: List[bytes] = []
    count = 0
    for timestamp_ns, rss_hash, data in packets:
        parts.append(_PKT.pack(timestamp_ns, rss_hash, len(data)))
        parts.append(data)
        count += 1
    return b"".join(parts), count


def unpack_packets(blob: bytes, count: int) -> List[Tuple[int, int, bytes]]:
    """Inverse of :func:`pack_packets`; validates the count and length."""
    packets: List[Tuple[int, int, bytes]] = []
    offset = 0
    for _ in range(count):
        if offset + _PKT.size > len(blob):
            raise ProtocolError("truncated packet header in batch")
        timestamp_ns, rss_hash, length = _PKT.unpack_from(blob, offset)
        offset += _PKT.size
        if offset + length > len(blob):
            raise ProtocolError("truncated packet data in batch")
        packets.append((timestamp_ns, rss_hash, bytes(blob[offset : offset + length])))
        offset += length
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after {count} packets"
        )
    return packets


def encode_batch(seq: int, packets: Iterable[Tuple[int, int, bytes]]) -> Message:
    blob, count = pack_packets(packets)
    return Message.with_topic(BATCH_TOPIC, _BATCH_HDR.pack(seq, count), blob)


def decode_batch(message: Message) -> Tuple[int, List[Tuple[int, int, bytes]]]:
    if len(message.frames) != 3 or len(message.frames[1]) != _BATCH_HDR.size:
        raise ProtocolError("malformed batch message")
    seq, count = _BATCH_HDR.unpack(message.frames[1])
    return seq, unpack_packets(message.frames[2], count)


# -- acks --------------------------------------------------------------------


def pack_record_blob(records: Iterable[bytes]) -> Tuple[bytes, int]:
    parts: List[bytes] = []
    count = 0
    for record in records:
        parts.append(_LEN.pack(len(record)))
        parts.append(record)
        count += 1
    return b"".join(parts), count


def unpack_record_blob(blob: bytes, count: int) -> List[bytes]:
    records: List[bytes] = []
    offset = 0
    for _ in range(count):
        if offset + _LEN.size > len(blob):
            raise ProtocolError("truncated record length in ack")
        (length,) = _LEN.unpack_from(blob, offset)
        offset += _LEN.size
        if offset + length > len(blob):
            raise ProtocolError("truncated record body in ack")
        records.append(bytes(blob[offset : offset + length]))
        offset += length
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after {count} records"
        )
    return records


def encode_ack(
    seq: int, processed: int, parse_errors: int, records: Iterable[bytes]
) -> Message:
    blob, count = pack_record_blob(records)
    return Message.with_topic(
        ACK_TOPIC, _ACK_HDR.pack(seq, processed, parse_errors, count), blob
    )


def decode_ack(message: Message) -> Tuple[int, int, int, List[bytes]]:
    """``(seq, processed, parse_errors, records)`` from an ack."""
    if len(message.frames) != 3 or len(message.frames[1]) != _ACK_HDR.size:
        raise ProtocolError("malformed ack message")
    seq, processed, parse_errors, count = _ACK_HDR.unpack(message.frames[1])
    return seq, processed, parse_errors, unpack_record_blob(message.frames[2], count)


# -- records forwarding (analytics shard) ------------------------------------


def encode_records(seq: int, records: Iterable[bytes]) -> Message:
    blob, count = pack_record_blob(records)
    return Message.with_topic(
        RECORDS_TOPIC, _RECORDS_HDR.pack(seq, count), blob
    )


def decode_records(message: Message) -> Tuple[int, List[bytes]]:
    if len(message.frames) != 3 or len(message.frames[1]) != _RECORDS_HDR.size:
        raise ProtocolError("malformed records message")
    seq, count = _RECORDS_HDR.unpack(message.frames[1])
    return seq, unpack_record_blob(message.frames[2], count)


def encode_records_ack(seq: int, count: int) -> Message:
    return Message.with_topic(RECORDS_ACK_TOPIC, _RECORDS_HDR.pack(seq, count))


def decode_records_ack(message: Message) -> Tuple[int, int]:
    if len(message.frames) != 2 or len(message.frames[1]) != _RECORDS_HDR.size:
        raise ProtocolError("malformed records ack")
    seq, count = _RECORDS_HDR.unpack(message.frames[1])
    return seq, count


# -- JSON control messages ---------------------------------------------------


def encode_json(topic: bytes, payload: dict) -> Message:
    return Message.with_topic(
        topic, json.dumps(payload, sort_keys=True).encode("utf-8")
    )


def decode_json(message: Message) -> dict:
    if len(message.frames) != 2:
        raise ProtocolError(
            f"malformed {message.topic!r} message: {len(message.frames)} frames"
        )
    try:
        payload = json.loads(message.frames[1].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad {message.topic!r} payload: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"{message.topic!r} payload must be a table")
    return payload
