"""Process placement derived from the stage-graph topology.

The stage graph (:mod:`repro.stack.topology`) already derives drain
order, checkpoint payload and crash points from one declared table.
Placement is the same move for *process boundaries*: walk the
topology, decide which OS process hosts each stage, and turn every
edge that crosses a process boundary into a wire transport.

The derivation mirrors the paper's deployment: the NIC (RSS fan-out)
stays in the parent — it *is* the router — each ``workers`` replica
gets its own process (the paper's "different DPDK processing threads
… on separate CPU cores", here made real OS processes so a crash is
contained), and the ``mq`` stage is not a process at all but the edge
between them: the MQ frame codec carried over a pipe or socketpair.
The analytics tier and everything downstream of it either stays in
the parent, moves to one more process, or is omitted (the fast-path
bench shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.stack.topology import TOPOLOGY, stage_names

#: Where the analytics tail may live.
ANALYTICS_PLACEMENTS = ("none", "parent", "process")

#: Stages that always stay in the parent: admission control and the
#: RSS router cannot move — they are what fans traffic *out* to shards.
PARENT_STAGES = ("overload", "nic")

#: The stage replicated one-per-shard.
SHARDED_STAGE = "workers"

#: The stage realized as wire transports rather than a process.
EDGE_STAGE = "mq"

#: The analytics tail, in topology order (computed in `derive_placement`).
_TAIL_START = "analytics"


class PlacementError(ValueError):
    """The requested placement cannot be derived from the topology."""


@dataclass(frozen=True)
class ProcessSpec:
    """One OS process and the stages it hosts.

    ``shard_id`` is None for the parent; worker shards carry the RX
    queue they own (queue id == shard id, preserving the NIC's RSS
    indirection semantics), the analytics shard carries none.
    """

    name: str
    stages: Tuple[str, ...]
    shard_id: Optional[int] = None
    queue_id: Optional[int] = None


@dataclass(frozen=True)
class EdgeSpec:
    """One topology edge that crosses a process boundary."""

    source: str
    target: str
    stage: str  # the topology stage this edge realizes (always "mq")


@dataclass(frozen=True)
class ShardPlan:
    """The derived placement: who runs what, and over which wires."""

    parent: ProcessSpec
    shards: Tuple[ProcessSpec, ...]
    edges: Tuple[EdgeSpec, ...]
    analytics: str

    @property
    def num_worker_shards(self) -> int:
        return sum(1 for spec in self.shards if SHARDED_STAGE in spec.stages)

    @property
    def analytics_shard(self) -> Optional[ProcessSpec]:
        for spec in self.shards:
            if _TAIL_START in spec.stages:
                return spec
        return None

    def describe(self) -> str:
        """Human-readable placement table (docs and ``--describe``)."""
        lines = [
            f"process {self.parent.name}: {', '.join(self.parent.stages)}"
        ]
        for spec in self.shards:
            queue = (
                f" (rx queue {spec.queue_id})" if spec.queue_id is not None else ""
            )
            lines.append(
                f"process {spec.name}{queue}: {', '.join(spec.stages)}"
            )
        for edge in self.edges:
            lines.append(
                f"edge {edge.source} -> {edge.target}: stage "
                f"{edge.stage!r} over wire framing"
            )
        return "\n".join(lines)


def derive_placement(
    num_shards: int, analytics: str = "none"
) -> ShardPlan:
    """Place the declared topology across OS processes.

    Args:
        num_shards: worker shard processes, one per RX queue.
        analytics: where the analytics tail lives — ``"none"`` (not
            assembled; the fast-path bench shape), ``"parent"``
            (in-process with the router), or ``"process"`` (one more
            shard process, the paper's decoupled analytics tier).
    """
    if num_shards < 1:
        raise PlacementError("num_shards must be at least 1")
    if analytics not in ANALYTICS_PLACEMENTS:
        raise PlacementError(
            f"unknown analytics placement {analytics!r}; "
            f"choose from {ANALYTICS_PLACEMENTS}"
        )
    names = stage_names()
    for required in (*PARENT_STAGES, SHARDED_STAGE, EDGE_STAGE):
        if required not in names:
            raise PlacementError(
                f"topology has no {required!r} stage to place"
            )
    tail = tuple(
        spec.name
        for spec in TOPOLOGY[names.index(_TAIL_START) :]
        if spec.name not in (SHARDED_STAGE, EDGE_STAGE)
    )

    parent_stages = tuple(
        name for name in names if name in PARENT_STAGES
    )
    if analytics == "parent":
        parent_stages = parent_stages + tail
    parent = ProcessSpec(name="parent", stages=parent_stages)

    shards = tuple(
        ProcessSpec(
            name=f"shard-{shard_id}",
            stages=(SHARDED_STAGE,),
            shard_id=shard_id,
            queue_id=shard_id,
        )
        for shard_id in range(num_shards)
    )
    edges = [
        EdgeSpec(source="parent", target=spec.name, stage=EDGE_STAGE)
        for spec in shards
    ]
    if analytics == "process":
        analytics_spec = ProcessSpec(
            name="shard-analytics",
            stages=tail,
            shard_id=num_shards,
        )
        shards = shards + (analytics_spec,)
        # Worker records flow back through the parent (the router owns
        # the ack path) and on to the analytics process over one more
        # wire edge — the same mq stage, one more hop.
        edges.append(
            EdgeSpec(
                source="parent", target=analytics_spec.name, stage=EDGE_STAGE
            )
        )
    return ShardPlan(
        parent=parent,
        shards=shards,
        edges=tuple(edges),
        analytics=analytics,
    )
