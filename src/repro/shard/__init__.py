"""``repro.shard`` — process placement derived from the stage graph.

The paper's deployment runs RSS queues on "different DPDK processing
threads … on separate CPU cores"; this package makes those boundaries
real OS processes, so a crash is *contained* instead of fatal. The
same declared topology that already derives drain order and crash
points (:mod:`repro.stack.topology`) here derives placement
(:mod:`~repro.shard.placement`): the parent keeps admission control
and the RSS router, each RX queue's worker becomes a forked child,
the ``mq`` stage becomes a real byte-stream transport
(:mod:`~repro.shard.transport` + the length-prefixed
:mod:`~repro.shard.wire` framing), and the analytics tier optionally
becomes one more process.

Robustness is the point, not the garnish: heartbeat leases with
deadline detection (:mod:`~repro.shard.heartbeat`), SIGKILL-tolerant
supervision with restart budgets (:mod:`~repro.shard.supervisor`),
checkpoint + WAL restore per shard
(:mod:`repro.durability.shardstate`), reroute/shed policies during
down windows, and a global conservation ledger the drain proves
exactly (:mod:`~repro.shard.runtime`).
"""

from __future__ import annotations

from repro.shard.heartbeat import FailureDetector, HeartbeatError
from repro.shard.placement import (
    PlacementError,
    ProcessSpec,
    ShardPlan,
    derive_placement,
)
from repro.shard.runtime import (
    SHED_POLICIES,
    GlobalLedger,
    ShardRunReport,
    ShardedRuntime,
)
from repro.shard.supervisor import (
    SHARD_DOWN,
    SHARD_DRAINED,
    SHARD_FAILED,
    SHARD_SUSPECT,
    SHARD_UP,
    ShardHandle,
    ShardSupervisor,
)
from repro.shard.transport import (
    FdPair,
    Transport,
    TransportClosed,
    TransportError,
    loopback_pair,
    make_fd_pair,
)
from repro.shard.wire import FrameDecodeError, StreamDecoder, encode_message
from repro.shard.worker import ShardWorker

__all__ = [
    "FailureDetector",
    "FdPair",
    "FrameDecodeError",
    "GlobalLedger",
    "HeartbeatError",
    "PlacementError",
    "ProcessSpec",
    "SHARD_DOWN",
    "SHARD_DRAINED",
    "SHARD_FAILED",
    "SHARD_SUSPECT",
    "SHARD_UP",
    "SHED_POLICIES",
    "ShardHandle",
    "ShardPlan",
    "ShardRunReport",
    "ShardSupervisor",
    "ShardWorker",
    "ShardedRuntime",
    "StreamDecoder",
    "Transport",
    "TransportClosed",
    "TransportError",
    "derive_placement",
    "encode_message",
    "loopback_pair",
    "make_fd_pair",
]
