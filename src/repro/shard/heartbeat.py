"""Shard heartbeats and deadline-based failure detection.

Every shard child emits a small heartbeat message on a wall-clock
cadence, stamped with ``time.monotonic_ns()``. On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide — the parent can subtract
the child's send stamp from its own receive stamp and get a real
one-way control-plane latency, no clock sync protocol needed.

The :class:`FailureDetector` is the classic lease: a shard that has
not been heard from within ``deadline_ns`` is declared down. A
SIGKILLed process stops heartbeating instantly, so detection latency
is bounded by the deadline; a *stalled* process (deadlocked, stopped,
swapping) is caught the same way even though its pipes stay open —
which is exactly what EOF detection alone would miss.
"""

from __future__ import annotations

import struct
import time
from typing import Dict, List, Optional

from repro.mq.frames import Message

HEARTBEAT_TOPIC = b"hb"
_HEARTBEAT = struct.Struct("!IQQ")  # shard_id, seq, sent_mono_ns


class HeartbeatError(ValueError):
    """A heartbeat frame failed to parse."""


def encode_heartbeat(shard_id: int, seq: int, now_ns: Optional[int] = None) -> Message:
    """One heartbeat message, stamped with the monotonic clock."""
    sent_ns = time.monotonic_ns() if now_ns is None else now_ns
    return Message.with_topic(
        HEARTBEAT_TOPIC, _HEARTBEAT.pack(shard_id, seq, sent_ns)
    )


def decode_heartbeat(message: Message):
    """``(shard_id, seq, sent_mono_ns)`` from a heartbeat message."""
    if message.topic != HEARTBEAT_TOPIC:
        raise HeartbeatError(f"not a heartbeat: topic {message.topic!r}")
    if len(message.frames) != 2 or len(message.frames[1]) != _HEARTBEAT.size:
        raise HeartbeatError("malformed heartbeat payload")
    return _HEARTBEAT.unpack(message.frames[1])


class FailureDetector:
    """Deadline-based liveness over observed heartbeats.

    Args:
        deadline_ns: silence longer than this declares a shard down.
            ``None`` disables wall-clock detection entirely — the
            deterministic scenario mode relies on EOF and scheduled
            faults instead, because a virtual-time run must not depend
            on how fast the host happens to execute it.
    """

    def __init__(self, deadline_ns: Optional[int]):
        if deadline_ns is not None and deadline_ns <= 0:
            raise ValueError("deadline_ns must be positive (or None)")
        self.deadline_ns = deadline_ns
        self._last_seen_ns: Dict[int, int] = {}
        self._last_latency_ns: Dict[int, int] = {}
        self.heartbeats_observed = 0

    @property
    def enabled(self) -> bool:
        return self.deadline_ns is not None

    def watch(self, shard_id: int, now_ns: Optional[int] = None) -> None:
        """Start (or reset) the lease for a shard — called at spawn, so
        a shard that never says hello still expires one deadline later."""
        self._last_seen_ns[shard_id] = (
            time.monotonic_ns() if now_ns is None else now_ns
        )

    def observe(
        self,
        shard_id: int,
        sent_ns: int,
        received_ns: Optional[int] = None,
    ) -> int:
        """Record one heartbeat; returns the control-plane latency (ns)."""
        now_ns = time.monotonic_ns() if received_ns is None else received_ns
        self._last_seen_ns[shard_id] = now_ns
        latency = max(0, now_ns - sent_ns)
        self._last_latency_ns[shard_id] = latency
        self.heartbeats_observed += 1
        return latency

    def forget(self, shard_id: int) -> None:
        """Stop watching (the shard was declared down or drained)."""
        self._last_seen_ns.pop(shard_id, None)

    def expired(self, now_ns: Optional[int] = None) -> List[int]:
        """Shards whose lease has lapsed, in shard-id order."""
        if self.deadline_ns is None:
            return []
        now = time.monotonic_ns() if now_ns is None else now_ns
        return sorted(
            shard_id
            for shard_id, seen in self._last_seen_ns.items()
            if now - seen > self.deadline_ns
        )

    def last_latency_ns(self, shard_id: int) -> Optional[int]:
        return self._last_latency_ns.get(shard_id)
