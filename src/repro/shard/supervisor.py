"""The shard control plane: spawn, watch, kill, declare, restart.

The parent process owns every shard's lifecycle. Each shard is a
``fork``\\ ed child running an entry closure (built by the runtime —
the composition root decides what a shard *is*; this module only
decides whether it is *alive*). Children always leave via
``os._exit`` so a forked Python interpreter never falls back into
pytest or the CLI's stack.

Failure handling is two-phase, mirroring real cluster managers:

* **suspicion** — an EOF or EPIPE on a shard's transport proves the
  process is gone, so dispatch to it stops immediately; but in
  wall-clock mode the *declaration* waits for the heartbeat deadline
  (:class:`~repro.shard.heartbeat.FailureDetector`), because the
  deadline is the detector the design names and a stalled-but-alive
  process produces no EOF at all.
* **declaration** — the shard's in-flight batches are charged to
  ``lost_at_crash``, its transport is closed, the corpse is reaped,
  and a restart is attempted against the per-shard
  :class:`~repro.resilience.RestartBudget`. Within budget the shard
  is respawned and sent a ``restore`` message built from its
  :class:`~repro.durability.shardstate.ShardStateStore` (newest
  checkpoint + WAL'd ack deltas); an exhausted budget marks the shard
  ``failed`` permanently — traffic routes around it forever.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.resilience.supervisor import RestartBudget
from repro.shard.heartbeat import FailureDetector
from repro.shard.placement import ProcessSpec
from repro.shard import protocol
from repro.shard.transport import Transport, make_fd_pair

#: Shard lifecycle states.
SHARD_UP = "up"
SHARD_SUSPECT = "suspect"
SHARD_DOWN = "down"
SHARD_FAILED = "failed"
SHARD_DRAINED = "drained"

#: Child entry: (shard_id, transport) -> exit code. Runs post-fork.
ShardEntry = Callable[[int, Transport], int]


class ShardHandle:
    """Parent-side bookkeeping for one shard process."""

    def __init__(self, spec: ProcessSpec):
        self.spec = spec
        self.shard_id = spec.shard_id
        self.name = spec.name
        self.pid: Optional[int] = None
        self.transport: Optional[Transport] = None
        self.state = SHARD_DOWN  # until first spawn
        self.restarts = 0
        self.detected_cause: Optional[str] = None
        self.causes: List[str] = []
        self.exit_status: Optional[int] = None
        # seq -> packet count for every dispatched-but-unacked batch.
        self.inflight: Dict[int, int] = {}
        self.next_seq = 1
        self.last_acked_seq = 0
        # Cumulative parent-side accounting (survives restarts).
        self.dispatched_packets = 0
        self.acked_packets = 0
        self.acked_parse_errors = 0
        self.records_received = 0
        self.lost_at_crash = 0
        self.deadlettered = 0
        self.rejoin_at_round: Optional[int] = None
        self.drained_payload: Optional[dict] = None
        self.pending_ckpt: Optional[dict] = None

    @property
    def live(self) -> bool:
        """Dispatchable right now."""
        return self.state == SHARD_UP

    @property
    def gone(self) -> bool:
        """Permanently out of the run."""
        return self.state in (SHARD_FAILED, SHARD_DRAINED)

    def inflight_packets(self) -> int:
        return sum(self.inflight.values())

    def ledger(self) -> dict:
        return {
            "dispatched": self.dispatched_packets,
            "acked": self.acked_packets,
            "parse_errors": self.acked_parse_errors,
            "records": self.records_received,
            "lost_at_crash": self.lost_at_crash,
            "deadlettered": self.deadlettered,
            "restarts": self.restarts,
            "state": self.state,
            "causes": list(self.causes),
        }


class ShardSupervisor:
    """Spawns shard processes and keeps them (or their books) alive."""

    def __init__(
        self,
        specs: List[ProcessSpec],
        entry: ShardEntry,
        transport_kind: str = "pipe",
        detector: Optional[FailureDetector] = None,
        restart_budget: Optional[RestartBudget] = None,
    ):
        self.handles: Dict[int, ShardHandle] = {}
        for spec in specs:
            if spec.shard_id is None:
                raise ValueError(f"process {spec.name!r} has no shard id")
            self.handles[spec.shard_id] = ShardHandle(spec)
        self._entry = entry
        self._transport_kind = transport_kind
        self.detector = detector or FailureDetector(deadline_ns=None)
        self.budget = restart_budget or RestartBudget(max_restarts=3)
        self.total_restarts = 0
        self.heartbeats_seen = 0
        self._registry = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for handle in self.handles.values():
            self._spawn(handle)

    def _spawn(self, handle: ShardHandle) -> None:
        """Fork one shard child; the parent adopts its transport side."""
        pair = make_fd_pair(self._transport_kind)
        pid = os.fork()
        if pid == 0:
            # -- child ------------------------------------------------------
            code = 1
            try:
                # Drop inherited copies of every *other* shard's parent-side
                # fds: a sibling holding them would mask that sibling's EOF
                # and leak fds across restarts.
                for other in self.handles.values():
                    if other.transport is not None:
                        other.transport.close()
                # The parent owns orderly shutdown; a terminal ^C must not
                # kill shards before the parent drains them.
                signal.signal(signal.SIGINT, signal.SIG_IGN)
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                transport = pair.adopt_child(label=f"{handle.name}-child")
                code = self._entry(handle.shard_id, transport)
            except BaseException:
                code = 1
            finally:
                os._exit(code)
        # -- parent ---------------------------------------------------------
        handle.pid = pid
        handle.transport = pair.adopt_parent(label=handle.name)
        handle.state = SHARD_UP
        handle.detected_cause = None
        handle.rejoin_at_round = None
        self.detector.watch(handle.shard_id)

    def kill(self, shard_id: int, sig: int = signal.SIGKILL) -> None:
        """Chaos entry point: kill the shard process from outside."""
        handle = self.handles[shard_id]
        if handle.pid is not None:
            try:
                os.kill(handle.pid, sig)
            except ProcessLookupError:
                pass

    def reap(self, handle: ShardHandle, block: bool = False) -> None:
        """Collect the child's exit status (no zombies)."""
        if handle.pid is None:
            return
        flags = 0 if block else os.WNOHANG
        try:
            pid, status = os.waitpid(handle.pid, flags)
        except ChildProcessError:
            handle.pid = None
            return
        if pid == handle.pid:
            handle.exit_status = status
            handle.pid = None

    # -- failure handling ----------------------------------------------------

    def suspect(self, shard_id: int, cause: str) -> None:
        """Stop dispatching; declaration waits for the detector."""
        handle = self.handles[shard_id]
        if handle.state == SHARD_UP:
            handle.state = SHARD_SUSPECT
            handle.detected_cause = cause

    def declare_down(self, shard_id: int, cause: str) -> int:
        """Declare the shard dead; returns packets charged to the crash.

        Drains any acks that made it out before the death first — a
        batch whose ack is already in the pipe was processed, not lost.
        """
        handle = self.handles[shard_id]
        if handle.state in (SHARD_DOWN, SHARD_FAILED, SHARD_DRAINED):
            return 0
        if handle.transport is not None:
            for message in handle.transport.recv_all():
                self.handle_control_message(handle, message)
            handle.transport.close()
            handle.transport = None
        lost = handle.inflight_packets()
        handle.lost_at_crash += lost
        handle.inflight.clear()
        handle.state = SHARD_DOWN
        handle.detected_cause = cause
        handle.causes.append(cause)
        self.detector.forget(shard_id)
        self.reap(handle, block=True)
        return lost

    def restart(
        self,
        shard_id: int,
        restore_payload: Optional[dict] = None,
    ) -> bool:
        """Respawn within budget; False marks the shard failed forever."""
        handle = self.handles[shard_id]
        if handle.state != SHARD_DOWN:
            raise RuntimeError(
                f"cannot restart shard {shard_id} in state {handle.state!r}"
            )
        if not self.budget.consume(handle.name):
            handle.state = SHARD_FAILED
            return False
        self._spawn(handle)
        handle.restarts += 1
        self.total_restarts += 1
        if restore_payload is not None:
            assert handle.transport is not None
            handle.transport.send(
                protocol.encode_json(protocol.RESTORE_TOPIC, restore_payload)
            )
        return True

    def expired_shards(self, now_ns: Optional[int] = None) -> List[int]:
        """Shards whose heartbeat lease has lapsed (wall-clock mode)."""
        expired = self.detector.expired(now_ns)
        return [
            shard_id
            for shard_id in expired
            if self.handles[shard_id].state in (SHARD_UP, SHARD_SUSPECT)
        ]

    # -- message handling ----------------------------------------------------

    def handle_control_message(self, handle: ShardHandle, message) -> bool:
        """Absorb non-ack control traffic; True if the message was taken.

        Acks are left to the runtime (they carry records and feed the
        durability WAL); heartbeats, checkpoint replies and drain
        replies are pure control and land here.
        """
        topic = message.topic
        if topic == protocol.CKPT_TOPIC:
            handle.pending_ckpt = protocol.decode_json(message)
            return True
        if topic == protocol.DRAINED_TOPIC:
            handle.drained_payload = protocol.decode_json(message)
            return True
        from repro.shard.heartbeat import HEARTBEAT_TOPIC, decode_heartbeat

        if topic == HEARTBEAT_TOPIC:
            shard_id, _seq, sent_ns = decode_heartbeat(message)
            self.detector.observe(shard_id, sent_ns)
            self.heartbeats_seen += 1
            return True
        return False

    # -- drain ---------------------------------------------------------------

    def drain_shard(
        self, handle: ShardHandle, timeout_s: float = 30.0
    ) -> Optional[dict]:
        """Graceful-shutdown handshake for one live shard.

        Sends ``drain`` and pumps until the ``drained`` reply arrives
        (acks encountered on the way are NOT consumed here — callers
        must have settled the dataplane first; FIFO ordering guarantees
        no ack can trail the drain reply). Returns the child's ledger
        payload, or None if the shard died instead of draining.
        """
        if handle.transport is None or handle.state not in (
            SHARD_UP,
            SHARD_SUSPECT,
        ):
            return None
        from repro.shard.transport import TransportClosed, TransportError

        try:
            handle.transport.send(
                protocol.encode_json(
                    protocol.DRAIN_TOPIC, {"shard_id": handle.shard_id}
                )
            )
            deadline = time.monotonic() + timeout_s
            while handle.drained_payload is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                message = handle.transport.recv(timeout=min(remaining, 0.05))
                if message is not None:
                    self.handle_control_message(handle, message)
        except (TransportClosed, TransportError):
            return None
        finally:
            if handle.drained_payload is not None:
                handle.state = SHARD_DRAINED
                self.detector.forget(handle.shard_id)
                if handle.transport is not None:
                    handle.transport.close()
                    handle.transport = None
                self.reap(handle, block=True)
        return handle.drained_payload

    def shutdown(self) -> None:
        """Last-resort cleanup: kill and reap anything still running."""
        for handle in self.handles.values():
            if handle.pid is not None:
                try:
                    os.kill(handle.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                self.reap(handle, block=True)
            if handle.transport is not None:
                handle.transport.close()
                handle.transport = None

    # -- observability -------------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Expose shard liveness and crash accounting as metrics."""
        up = registry.gauge(
            "ruru_shard_up",
            help="1 while the shard process is dispatchable, else 0.",
            labels=("shard",),
        )
        restarts = registry.counter(
            "ruru_shard_restarts_total",
            help="Times each shard was respawned after a declared death.",
            labels=("shard",),
        )
        lost = registry.counter(
            "ruru_shard_lost_at_crash_total",
            help="Packets in flight to a shard when it was declared down.",
            labels=("shard",),
        )
        latency = registry.gauge(
            "ruru_shard_heartbeat_latency_ns",
            help="Latest heartbeat one-way latency per shard.",
            labels=("shard",),
        )

        def collect() -> None:
            for handle in self.handles.values():
                up.labels(handle.name).set(1 if handle.live else 0)
                restarts.labels(handle.name).value = handle.restarts
                lost.labels(handle.name).value = handle.lost_at_crash
                seen = self.detector.last_latency_ns(handle.shard_id)
                if seen is not None:
                    latency.labels(handle.name).set(seen)

        registry.register_collector(collect)
        self._registry = registry

    def states(self) -> Dict[str, str]:
        return {h.name: h.state for h in self.handles.values()}

    def worker_handles(self) -> List[ShardHandle]:
        """Worker shards only (excludes an analytics shard), id order."""
        return [
            self.handles[shard_id]
            for shard_id in sorted(self.handles)
            if "workers" in self.handles[shard_id].spec.stages
        ]


def spawn_summary(handles: Dict[int, ShardHandle]) -> List[Tuple[str, int]]:
    """(name, pid) pairs for logging, in shard-id order."""
    return [
        (handles[shard_id].name, handles[shard_id].pid or -1)
        for shard_id in sorted(handles)
    ]
