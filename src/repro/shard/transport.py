"""Real OS transports carrying wire-framed messages between shards.

Two flavours, both byte streams with the same :class:`Transport`
facade on top:

* :func:`pipe_pair` — two ``os.pipe()``s (one per direction), the
  cheapest cross-process channel;
* :func:`socketpair_pair` — one ``AF_UNIX`` ``socketpair``, a single
  full-duplex fd per side.

Both file descriptors run non-blocking. ``send`` therefore has to be
**partial-write tolerant**: it loops over ``os.write`` until the whole
encoded message is out, and — crucially — while waiting for the pipe
to drain it also *reads* whatever the peer has sent. Without that, two
processes each blocked writing a large message into a full pipe while
the other's is also full would deadlock; draining the read side breaks
the cycle (incoming messages land in the inbox for a later ``recv``).

``recv`` is symmetric: reads come in arbitrary slices and are fed to a
:class:`~repro.shard.wire.StreamDecoder`, which tolerates torn reads
by construction. EOF (the peer died or closed) is remembered; once the
inbox drains, receiving raises :class:`TransportClosed`.
"""

from __future__ import annotations

import errno
import os
import select
import socket
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.mq.frames import Message
from repro.shard.wire import FrameDecodeError, StreamDecoder, encode_message

_READ_CHUNK = 1 << 16


class TransportError(RuntimeError):
    """The transport is unusable (closed, timed out, or desynced)."""


class TransportClosed(TransportError):
    """The peer's end is gone (EOF on read or EPIPE on write)."""

    def __init__(self, message: str, partial_write: bool = False):
        super().__init__(message)
        #: True when a send died with some bytes already written — the
        #: peer (if it still lives) will see a torn tail.
        self.partial_write = partial_write


class Transport:
    """One side of a framed, full-duplex, cross-process channel.

    Args:
        read_fd: fd to read the peer's bytes from.
        write_fd: fd to write to (may equal *read_fd* for sockets).
        label: debugging tag carried in error messages.
    """

    def __init__(self, read_fd: int, write_fd: int, label: str = ""):
        self._read_fd = read_fd
        self._write_fd = write_fd
        self.label = label
        os.set_blocking(read_fd, False)
        if write_fd != read_fd:
            os.set_blocking(write_fd, False)
        self._decoder = StreamDecoder()
        self._inbox: Deque[Message] = deque()
        self._eof = False
        self._closed = False
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0

    def fileno(self) -> int:
        """The read fd — lets callers ``select`` across transports."""
        return self._read_fd

    @property
    def eof(self) -> bool:
        """The peer's write end is closed (it exited or crashed)."""
        return self._eof

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Messages already decoded and waiting in the inbox."""
        return len(self._inbox)

    # -- receiving -----------------------------------------------------------

    def _read_available(self) -> bool:
        """Drain readable bytes into the decoder; True if any arrived."""
        got_any = False
        while True:
            try:
                chunk = os.read(self._read_fd, _READ_CHUNK)
            except BlockingIOError:
                break
            except OSError as exc:
                if exc.errno == errno.ECONNRESET:
                    self._eof = True
                    break
                raise
            if chunk == b"":
                self._eof = True
                break
            got_any = True
            try:
                self._inbox.extend(self._decoder.feed(chunk))
            except FrameDecodeError as exc:
                raise TransportError(
                    f"transport {self.label!r} desynchronized: {exc}"
                ) from exc
            if len(chunk) < _READ_CHUNK:
                break
        return got_any

    def pump(self) -> int:
        """Non-blocking: absorb whatever is readable right now.

        Returns the number of messages newly available. Never raises
        on EOF — it just latches :attr:`eof`; a SIGKILLed peer's torn
        tail stays harmlessly buffered in the decoder.
        """
        if self._closed:
            return 0
        before = len(self._inbox)
        if not self._eof:
            self._read_available()
        return len(self._inbox) - before

    def recv(self, timeout: Optional[float] = 0.0) -> Optional[Message]:
        """Next message; None when none arrives within *timeout* seconds.

        ``timeout=None`` blocks until a message or EOF. Raises
        :class:`TransportClosed` when the peer is gone and the inbox
        is empty — there is nothing left to receive, ever.
        """
        if self._closed:
            raise TransportClosed(f"transport {self.label!r} is closed")
        while True:
            if self._inbox:
                self.received_messages += 1
                return self._inbox.popleft()
            if self._eof:
                raise TransportClosed(
                    f"transport {self.label!r}: peer closed"
                )
            readable, _, _ = select.select([self._read_fd], [], [], timeout)
            if not readable:
                return None
            if not self._read_available() and not self._eof:
                # Spurious wakeup; honour a finite timeout by not
                # looping forever (treat it as one wait slot spent).
                if timeout is not None:
                    return None

    def recv_all(self) -> List[Message]:
        """Pump, then drain the whole inbox (never blocks)."""
        self.pump()
        drained = list(self._inbox)
        self._inbox.clear()
        self.received_messages += len(drained)
        return drained

    # -- sending -------------------------------------------------------------

    def send(self, message: Message, timeout: Optional[float] = 30.0) -> None:
        """Write one message, tolerating short writes.

        Loops until the encoded blob is fully written. While the pipe
        is full it drains the read side (deadlock avoidance) and waits
        for writability up to *timeout* seconds — a peer that neither
        reads nor dies within that window is an error.

        Raises :class:`TransportClosed` on a dead peer; the exception's
        ``partial_write`` flag says whether any bytes escaped first.
        """
        if self._closed:
            raise TransportClosed(f"transport {self.label!r} is closed")
        data = encode_message(message)
        view = memoryview(data)
        offset = 0
        while offset < len(data):
            try:
                offset += os.write(self._write_fd, view[offset:])
                continue
            except BlockingIOError:
                pass
            except (BrokenPipeError, ConnectionResetError):
                self._eof = True
                raise TransportClosed(
                    f"transport {self.label!r}: peer gone mid-send "
                    f"({offset}/{len(data)} bytes written)",
                    partial_write=offset > 0,
                ) from None
            # Pipe full: drain incoming traffic so the peer (possibly
            # itself blocked writing to us) can make progress, then
            # wait until our write side frees up.
            if not self._eof:
                self._read_available()
            readable, writable, _ = select.select(
                [self._read_fd] if not self._eof else [],
                [self._write_fd],
                [],
                timeout,
            )
            if not readable and not writable:
                raise TransportError(
                    f"transport {self.label!r}: send stalled for "
                    f"{timeout}s at {offset}/{len(data)} bytes"
                )
        self.sent_messages += 1
        self.sent_bytes += len(data)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            os.close(self._read_fd)
        except OSError:
            pass
        if self._write_fd != self._read_fd:
            try:
                os.close(self._write_fd)
            except OSError:
                pass


class FdPair:
    """The four (or two) raw fds behind one parent↔child channel.

    Created *before* ``fork``; afterwards each process adopts its side
    (wrapping the right fds in a :class:`Transport`) and closes the
    other's — otherwise the child's death never produces EOF, because
    the parent itself still holds the child's write end open.
    """

    def __init__(
        self,
        parent_fds: Tuple[int, int],
        child_fds: Tuple[int, int],
        kind: str,
    ):
        self.parent_fds = parent_fds  # (read_fd, write_fd)
        self.child_fds = child_fds
        self.kind = kind

    def adopt_parent(self, label: str = "") -> Transport:
        for fd in set(self.child_fds):
            try:
                os.close(fd)
            except OSError:
                pass
        return Transport(*self.parent_fds, label=label or "parent")

    def adopt_child(self, label: str = "") -> Transport:
        for fd in set(self.parent_fds):
            try:
                os.close(fd)
            except OSError:
                pass
        return Transport(*self.child_fds, label=label or "child")


def pipe_pair() -> FdPair:
    """Two pipes: parent→child and child→parent."""
    child_read, parent_write = os.pipe()
    parent_read, child_write = os.pipe()
    return FdPair(
        parent_fds=(parent_read, parent_write),
        child_fds=(child_read, child_write),
        kind="pipe",
    )


def socketpair_pair() -> FdPair:
    """One AF_UNIX socketpair: a single full-duplex fd per side."""
    parent_sock, child_sock = socket.socketpair()
    parent_fd = parent_sock.detach()
    child_fd = child_sock.detach()
    return FdPair(
        parent_fds=(parent_fd, parent_fd),
        child_fds=(child_fd, child_fd),
        kind="socketpair",
    )


def make_fd_pair(kind: str) -> FdPair:
    """``"pipe"`` or ``"socketpair"`` → a fresh :class:`FdPair`."""
    if kind == "pipe":
        return pipe_pair()
    if kind == "socketpair":
        return socketpair_pair()
    raise ValueError(f"unknown transport kind {kind!r}")


def loopback_pair(label: str = "loop") -> Tuple[Transport, Transport]:
    """Both ends in one process — for tests of framing over real fds."""
    left_sock, right_sock = socket.socketpair()
    left = left_sock.detach()
    right = right_sock.detach()
    return (
        Transport(left, left, label=f"{label}-a"),
        Transport(right, right, label=f"{label}-b"),
    )
