"""Length-prefixed wire framing for MQ messages over byte streams.

Inside one process the bus passes :class:`repro.mq.frames.Message`
objects by reference. Between processes the same multipart messages
must cross a pipe or Unix-domain socket, which is a *byte stream*: the
kernel is free to deliver a message in arbitrary slices ("torn reads")
and to accept only part of a write ("short writes"). This module is
the boundary codec:

* :func:`encode_message` — one message to one self-delimiting blob:
  a fixed header (magic, version, frame count), one 32-bit length per
  frame, then the frame bytes.
* :class:`StreamDecoder` — the incremental inverse. Feed it byte
  slices in any fragmentation; it buffers partial input and yields
  complete messages, in order.

Failure discipline: anything structurally wrong — bad magic, unknown
version, a frame count or length beyond the caps — raises
:class:`FrameDecodeError` immediately. Truncation is *not* an error
while the stream is open (the rest of the message may still arrive);
it becomes one only when the caller declares the stream finished via
:meth:`StreamDecoder.check_eof`. A decoder that has raised stays
poisoned: byte streams have no resynchronization points, so the only
safe recovery is to drop the connection.
"""

from __future__ import annotations

import struct
from typing import List

from repro.mq.frames import Message

#: First bytes of every wire message; anything else is garbage or a
#: desynchronized stream.
WIRE_MAGIC = b"RW"
WIRE_VERSION = 1

#: Caps, enforced on both encode and decode, so a corrupt length field
#: can never convince the decoder to buffer gigabytes.
MAX_FRAMES = 256
MAX_FRAME_BYTES = 1 << 26  # 64 MiB per frame
MAX_MESSAGE_BYTES = 1 << 27  # 128 MiB per message

_HEADER = struct.Struct("!2sBH")  # magic, version, frame count


class FrameDecodeError(ValueError):
    """The byte stream is not a valid wire-framed message sequence."""


def encode_message(message: Message) -> bytes:
    """Serialize one multipart message to a self-delimiting blob."""
    frames = message.frames
    if len(frames) > MAX_FRAMES:
        raise FrameDecodeError(
            f"message has {len(frames)} frames, cap is {MAX_FRAMES}"
        )
    total = 0
    lengths = []
    for frame in frames:
        if len(frame) > MAX_FRAME_BYTES:
            raise FrameDecodeError(
                f"frame of {len(frame)} bytes exceeds cap {MAX_FRAME_BYTES}"
            )
        total += len(frame)
        lengths.append(len(frame))
    if total > MAX_MESSAGE_BYTES:
        raise FrameDecodeError(
            f"message of {total} bytes exceeds cap {MAX_MESSAGE_BYTES}"
        )
    parts = [
        _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, len(frames)),
        struct.pack(f"!{len(frames)}I", *lengths),
    ]
    parts.extend(frames)
    return b"".join(parts)


class StreamDecoder:
    """Incremental decoder over an arbitrarily fragmented byte stream.

    >>> blob = encode_message(Message([b"topic", b"payload"]))
    >>> decoder = StreamDecoder()
    >>> decoder.feed(blob[:3])
    []
    >>> [m.topic for m in decoder.feed(blob[3:])]
    [b'topic']
    """

    def __init__(self):
        self._buffer = bytearray()
        self._poisoned: Exception | None = None
        self.messages_decoded = 0
        self.bytes_consumed = 0

    def __len__(self) -> int:
        """Bytes currently buffered (a partially received message)."""
        return len(self._buffer)

    @property
    def poisoned(self) -> bool:
        return self._poisoned is not None

    def _fail(self, reason: str) -> "FrameDecodeError":
        error = FrameDecodeError(reason)
        self._poisoned = error
        return error

    def feed(self, data: bytes) -> List[Message]:
        """Absorb *data*; return every message completed by it.

        Raises :class:`FrameDecodeError` on structural damage; the
        decoder is then poisoned and every further call re-raises.
        """
        if self._poisoned is not None:
            raise self._poisoned
        self._buffer.extend(data)
        messages: List[Message] = []
        buf = self._buffer
        offset = 0
        while True:
            if len(buf) - offset < _HEADER.size:
                break
            magic, version, nframes = _HEADER.unpack_from(buf, offset)
            if magic != WIRE_MAGIC:
                raise self._fail(f"bad wire magic {bytes(magic)!r}")
            if version != WIRE_VERSION:
                raise self._fail(f"unknown wire version {version}")
            if nframes == 0:
                raise self._fail("zero-frame message")
            if nframes > MAX_FRAMES:
                raise self._fail(
                    f"frame count {nframes} exceeds cap {MAX_FRAMES}"
                )
            lengths_end = offset + _HEADER.size + 4 * nframes
            if len(buf) < lengths_end:
                break  # truncated length table: wait for more bytes
            lengths = struct.unpack_from(
                f"!{nframes}I", buf, offset + _HEADER.size
            )
            total = 0
            for length in lengths:
                if length > MAX_FRAME_BYTES:
                    raise self._fail(
                        f"frame length {length} exceeds cap {MAX_FRAME_BYTES}"
                    )
                total += length
            if total > MAX_MESSAGE_BYTES:
                raise self._fail(
                    f"message of {total} bytes exceeds cap {MAX_MESSAGE_BYTES}"
                )
            if len(buf) < lengths_end + total:
                break  # truncated body: wait for more bytes
            frames = []
            cursor = lengths_end
            for length in lengths:
                frames.append(bytes(buf[cursor : cursor + length]))
                cursor += length
            messages.append(Message(frames))
            self.messages_decoded += 1
            offset = cursor
        if offset:
            del buf[:offset]
            self.bytes_consumed += offset
        return messages

    def check_eof(self) -> None:
        """Declare the stream finished.

        A clean close lands exactly on a message boundary; leftover
        bytes mean the peer died mid-write (a torn tail). That is a
        decode error *at EOF* — the message can never complete.
        """
        if self._poisoned is not None:
            raise self._poisoned
        if self._buffer:
            raise self._fail(
                f"stream ended mid-message with {len(self._buffer)} "
                "buffered bytes (torn tail)"
            )
