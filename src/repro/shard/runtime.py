"""The sharded runtime: RSS fan-out across real OS processes.

The parent *is* the NIC: it extracts each frame's 4-tuple, Toeplitz-
hashes it with the symmetric RSS key and routes the packet to the
worker shard owning that queue — so both directions of a flow land in
the same process, exactly as the in-process pipeline's
:class:`~repro.dpdk.nic.NicPort` guarantees. A flow→shard cache keeps
parent-side routing cheaper than the shards' per-packet work (the
hash is computed once per flow direction) and doubles as the reroute
table during failures: a decision made while a shard was down sticks
for the life of the flow, so a rerouted handshake's payload follows
it instead of bouncing back mid-measurement.

Two operating modes, chosen by whether a heartbeat deadline is set:

* **deterministic** (``heartbeat_deadline_ms=None``) — lockstep
  dispatch (one in-flight batch per shard), EOF declares a death
  immediately, restarts happen a fixed number of rounds later.
  Scenario baselines need every count to be exact, so nothing may
  depend on how fast the host runs.
* **wall-clock** (deadline set) — windowed dispatch, EOF only marks a
  shard *suspect*; declaration is the heartbeat deadline's job, and a
  declared shard is restarted as soon as the budget allows. This is
  the live/chaos shape: detection latency is bounded by the deadline.

Either way the books must balance. Every offered packet meets exactly
one of five fates, and :meth:`ShardedRuntime.drain` proves it::

    ingested == processed + dropped + deadlettered + shed + lost_at_crash

with per-shard reconciliation on top: each drained child's
self-reported ledger must equal the parent's accounting for it — which
is exactly what checkpoint + WAL-delta restore buys after a crash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.config import PipelineConfig
from repro.dpdk.nic import NicPort
from repro.dpdk.rss import RssHasher
from repro.durability.shardstate import ShardStateStore
from repro.mq.frames import Message
from repro.overload.classify import CLASSES, HANDSHAKE, classify_frame
from repro.resilience.supervisor import RestartBudget
from repro.shard import protocol
from repro.shard.heartbeat import FailureDetector
from repro.shard.placement import ShardPlan, derive_placement
from repro.shard.supervisor import (
    SHARD_DOWN,
    SHARD_SUSPECT,
    ShardHandle,
    ShardSupervisor,
)
from repro.shard.transport import Transport, TransportClosed, TransportError
from repro.shard.worker import (
    HEARTBEAT_INTERVAL_NS,
    analytics_child_main,
    shard_child_main,
)

#: What to do with a down shard's traffic.
SHED_POLICIES = ("protect-handshakes", "reroute-all")

#: How long a drain/ack wait may stall before the run errors out.
_SETTLE_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class GlobalLedger:
    """``ingested == processed + dropped + deadlettered + shed + lost_at_crash``.

    The PR 8 overload invariant with one more term: packets that were
    in flight to a shard the instant it died. A crash may lose
    *measurements* (you cannot replay live wire traffic) but it may
    never lose *accounting*.
    """

    ingested: int
    processed: int
    dropped: int
    deadlettered: int
    shed: int
    lost_at_crash: int

    @property
    def balance(self) -> int:
        return self.ingested - (
            self.processed
            + self.dropped
            + self.deadlettered
            + self.shed
            + self.lost_at_crash
        )

    @property
    def ok(self) -> bool:
        return self.balance == 0

    def check(self) -> None:
        if not self.ok:
            raise AssertionError(f"shard conservation violated: {self}")

    def as_dict(self) -> Dict[str, int]:
        return {
            "ingested": self.ingested,
            "processed": self.processed,
            "dropped": self.dropped,
            "deadlettered": self.deadlettered,
            "shed": self.shed,
            "lost_at_crash": self.lost_at_crash,
            "balance": self.balance,
        }

    def __str__(self) -> str:
        status = "OK" if self.ok else f"VIOLATED (balance={self.balance})"
        return (
            f"shard ledger: ingested={self.ingested} == "
            f"processed={self.processed} + dropped={self.dropped} + "
            f"deadlettered={self.deadlettered} + shed={self.shed} + "
            f"lost_at_crash={self.lost_at_crash} [{status}]"
        )


@dataclass
class ShardRunReport:
    """Everything a drained sharded run proved (or failed to)."""

    ledger: GlobalLedger
    shards: Dict[str, dict]
    child_ledgers: Dict[str, dict]
    reconciliation: List[Tuple[str, bool, str]]
    shed_by_class: Dict[str, int]
    rerouted_packets: int
    restarts: int
    states: Dict[str, str]
    heartbeats_seen: int
    records: Dict[str, int]
    analytics: Optional[dict] = None
    rounds: int = 0

    @property
    def ok(self) -> bool:
        return self.ledger.ok and all(ok for _, ok, _ in self.reconciliation)

    def failed_checks(self) -> List[str]:
        return [
            f"{name}: {detail}"
            for name, ok, detail in self.reconciliation
            if not ok
        ]

    def as_dict(self) -> dict:
        return {
            "ledger": self.ledger.as_dict(),
            "shards": self.shards,
            "child_ledgers": self.child_ledgers,
            "reconciliation": [
                {"name": name, "ok": ok, "detail": detail}
                for name, ok, detail in self.reconciliation
            ],
            "shed_by_class": self.shed_by_class,
            "rerouted_packets": self.rerouted_packets,
            "restarts": self.restarts,
            "states": self.states,
            "heartbeats_seen": self.heartbeats_seen,
            "records": self.records,
            "analytics": self.analytics,
            "rounds": self.rounds,
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [str(self.ledger)]
        for name in sorted(self.shards):
            ledger = self.shards[name]
            lines.append(
                f"  {name}: state={ledger['state']} "
                f"dispatched={ledger['dispatched']} acked={ledger['acked']} "
                f"lost_at_crash={ledger['lost_at_crash']} "
                f"restarts={ledger['restarts']}"
            )
        shed = ", ".join(
            f"{klass}={count}" for klass, count in sorted(self.shed_by_class.items())
        )
        lines.append(
            f"  policy: rerouted={self.rerouted_packets} shed=[{shed}]"
        )
        for name, ok, detail in self.reconciliation:
            lines.append(f"  check {name}: {'OK' if ok else 'FAIL'} ({detail})")
        return "\n".join(lines)


@dataclass
class _ScheduledFault:
    kill_at_seq: int
    armed: bool = False


class ShardedRuntime:
    """The parent process of a sharded run: router, supervisor, books.

    Args:
        num_shards: worker shard processes (one RX queue each).
        config: pipeline config shared with the shard workers (the
            RSS key and tracker knobs must match a single-process run
            for the equivalence property to hold).
        analytics: ``"none"`` / ``"parent"`` / ``"process"`` — see
            :func:`~repro.shard.placement.derive_placement`.
        make_analytics: zero-arg factory returning an
            ``AnalyticsService``; required for ``parent``/``process``
            placements. Built by the composition root, called post-fork
            for the ``process`` placement.
        state_dir: enables per-shard durability (checkpoint + ack WAL)
            and therefore *exact* post-crash ledger reconciliation.
        heartbeat_deadline_ms: None selects deterministic mode.
        restart_delay_batches: rounds a dead shard stays down in
            deterministic mode before its restart (models detection +
            respawn latency as virtual rounds).
        checkpoint_every_batches: checkpoint cadence in rounds; None
            checkpoints only at drain.
        max_inflight: dispatch window per shard (forced to 1 in
            deterministic mode).
        policy: down-shard traffic policy (``protect-handshakes``
            reroutes handshakes and sheds the rest by class;
            ``reroute-all`` reroutes everything).
        record_sink: optional callable fed every encoded latency
            record when ``analytics == "none"``.
    """

    def __init__(
        self,
        num_shards: int,
        config: Optional[PipelineConfig] = None,
        *,
        analytics: str = "none",
        make_analytics: Optional[Callable[[], object]] = None,
        state_dir: Optional[str] = None,
        transport: str = "pipe",
        policy: str = "protect-handshakes",
        heartbeat_deadline_ms: Optional[float] = None,
        heartbeat_interval_ms: float = HEARTBEAT_INTERVAL_NS / 1e6,
        checkpoint_every_batches: Optional[int] = 8,
        restart_delay_batches: int = 1,
        max_restarts_per_shard: int = 3,
        max_inflight: int = 4,
        batch_size: int = 256,
        record_sink: Optional[Callable[[bytes], None]] = None,
        registry=None,
        fsync: bool = False,
    ):
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {SHED_POLICIES}"
            )
        if analytics in ("parent", "process") and make_analytics is None:
            raise ValueError(
                f"analytics={analytics!r} needs a make_analytics factory"
            )
        self.config = config or PipelineConfig()
        self.plan: ShardPlan = derive_placement(num_shards, analytics=analytics)
        self.num_shards = num_shards
        self.analytics = analytics
        self.policy = policy
        self.batch_size = batch_size
        self.deterministic = heartbeat_deadline_ms is None
        self.max_inflight = 1 if self.deterministic else max(1, max_inflight)
        self.restart_delay_batches = max(1, restart_delay_batches)
        self.checkpoint_every_batches = checkpoint_every_batches
        self._record_sink = record_sink
        self._make_analytics = make_analytics
        self._heartbeat_interval_ns = int(heartbeat_interval_ms * 1e6)

        self.hasher = RssHasher(
            key=self.config.rss_key, num_queues=num_shards
        )
        detector = FailureDetector(
            deadline_ns=(
                None
                if heartbeat_deadline_ms is None
                else int(heartbeat_deadline_ms * 1e6)
            )
        )
        self.supervisor = ShardSupervisor(
            specs=list(self.plan.shards),
            entry=self._shard_entry,
            transport_kind=transport,
            detector=detector,
            restart_budget=RestartBudget(max_restarts=max_restarts_per_shard),
        )
        self.stores: Dict[int, ShardStateStore] = {}
        if state_dir is not None:
            for spec in self.plan.shards:
                self.stores[spec.shard_id] = ShardStateStore(
                    state_dir, spec.name, fsync=fsync
                )

        # Routing state: (4-tuple, family) -> (rss_hash, shard_id).
        # Direction-sensitive on purpose — the symmetric key hashes both
        # directions identically, so the two entries agree, and lookups
        # skip a canonicalization pass on the hot path.
        self._flow_route: Dict[tuple, Tuple[int, int]] = {}
        self._faults: Dict[int, _ScheduledFault] = {}

        # Global books.
        self.ingested = 0
        self.dropped = 0
        self.shed_by_class: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self.rerouted_packets = 0
        self.records_out = 0
        self.records_delivered = 0
        self.records_lost_at_crash = 0
        self.records_dropped = 0
        self._round = 0
        self._started = False
        self._drained = False

        self._analytics_service = None
        self._analytics_push = None
        self._analytics_seq = 0
        self._records_buffer: List[bytes] = []

        if registry is not None:
            self.bind_registry(registry)

    # -- composition ---------------------------------------------------------

    def _shard_entry(self, shard_id: int, transport: Transport) -> int:
        """Post-fork child body selection (worker vs analytics shard)."""
        analytics_spec = self.plan.analytics_shard
        if analytics_spec is not None and shard_id == analytics_spec.shard_id:
            return analytics_child_main(
                transport,
                shard_id,
                self._make_analytics,
                heartbeat_interval_ns=self._heartbeat_interval_ns,
            )
        return shard_child_main(
            transport,
            shard_id,
            config=self.config,
            heartbeat_interval_ns=self._heartbeat_interval_ns,
        )

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.supervisor.start()
        if self.analytics == "parent":
            self._analytics_service = self._make_analytics()
            self._analytics_push = self._analytics_service.connect_pipeline()
        for shard_id, fault in self._faults.items():
            self._arm_fault(shard_id, fault)

    # -- fault injection ------------------------------------------------------

    def schedule_kill(self, shard_id: int, at_seq: int) -> None:
        """Arm a deterministic SIGKILL: the shard dies the moment it
        receives its batch with seq >= *at_seq*, before acking it."""
        fault = _ScheduledFault(kill_at_seq=at_seq)
        self._faults[shard_id] = fault
        if self._started:
            self._arm_fault(shard_id, fault)

    def _arm_fault(self, shard_id: int, fault: _ScheduledFault) -> None:
        handle = self.supervisor.handles[shard_id]
        if handle.transport is None or fault.armed:
            return
        handle.transport.send(
            protocol.encode_json(
                protocol.FAULT_TOPIC, {"kill_at_seq": fault.kill_at_seq}
            )
        )
        fault.armed = True

    def kill_shard(self, shard_id: int) -> None:
        """Wall-clock chaos: SIGKILL the shard process right now. The
        heartbeat deadline — not this call — declares it down."""
        self.supervisor.kill(shard_id)

    # -- routing --------------------------------------------------------------

    def _live_fallback(self, home: int) -> Optional[int]:
        """The next live worker shard after *home*, ring order."""
        for step in range(1, self.num_shards):
            candidate = (home + step) % self.num_shards
            if self.supervisor.handles[candidate].live:
                return candidate
        return None

    def _route_round(
        self, packets: Iterable
    ) -> Dict[int, List[Tuple[int, int, bytes]]]:
        """Route one round of packets; applies the down-shard policy."""
        per_shard: Dict[int, List[Tuple[int, int, bytes]]] = {}
        for packet in packets:
            self.ingested += 1
            data = packet.data
            key = NicPort._extract_tuple(data)
            if key is None:
                rss_hash, target = 0, self.hasher.queue_for_hash(0)
            else:
                cached = self._flow_route.get(key)
                if cached is None:
                    rss_hash = self.hasher.hash_tuple(*key)
                    target = self.hasher.queue_for_hash(rss_hash)
                    self._flow_route[key] = (rss_hash, target)
                else:
                    rss_hash, target = cached
            if not self.supervisor.handles[target].live:
                target = self._place_down_packet(key, rss_hash, target, data)
                if target is None:
                    continue  # shed; already attributed
            per_shard.setdefault(target, []).append(
                (packet.timestamp_ns, rss_hash, data)
            )
        return per_shard

    def _place_down_packet(
        self, key, rss_hash: int, home: int, data: bytes
    ) -> Optional[int]:
        """Down-shard policy: reroute (returns new target) or shed (None).

        A reroute is recorded in the flow cache so the whole flow
        sticks to its fallback — measurement continuity beats locality.
        """
        if self.policy == "protect-handshakes":
            klass = classify_frame(data)
            if klass != HANDSHAKE:
                self.shed_by_class[klass] += 1
                return None
        fallback = self._live_fallback(home)
        if fallback is None:
            klass = classify_frame(data)
            self.shed_by_class[klass] += 1
            return None
        if key is not None:
            self._flow_route[key] = (rss_hash, fallback)
        self.rerouted_packets += 1
        return fallback

    # -- dataplane ------------------------------------------------------------

    def offer(self, packets: Iterable) -> None:
        """Dispatch one round of packets across the live shards."""
        if not self._started:
            self.start()
        if self._drained:
            raise RuntimeError("runtime already drained")
        self._round += 1
        self._restart_due_shards()
        per_shard = self._route_round(packets)

        requeue: List[Tuple[int, int, bytes]] = []
        for shard_id in sorted(per_shard):
            triples = per_shard[shard_id]
            handle = self.supervisor.handles[shard_id]
            if not handle.live:
                requeue.extend(triples)  # died earlier this round
                continue
            self._dispatch(handle, triples)
        if requeue:
            # Second pass through the policy for packets whose target
            # died between routing and dispatch; a second failure
            # deadletters rather than looping.
            second: Dict[int, List[Tuple[int, int, bytes]]] = {}
            for timestamp_ns, rss_hash, data in requeue:
                target = self._place_down_packet(None, rss_hash, 0, data)
                if target is not None:
                    second.setdefault(target, []).append(
                        (timestamp_ns, rss_hash, data)
                    )
            for shard_id in sorted(second):
                handle = self.supervisor.handles[shard_id]
                if handle.live:
                    self._dispatch(handle, second[shard_id])
                else:
                    handle.deadlettered += len(second[shard_id])

        # Settle the window.
        for handle in self.supervisor.worker_handles():
            if handle.live and handle.inflight:
                self._wait_for_acks(handle, below=self.max_inflight)
        self._flush_records()
        # Absorb pending heartbeats *before* judging deadlines — a shard
        # whose acks we did not need this round still spoke.
        self._pump_control()
        self._check_deadlines()
        if (
            self.checkpoint_every_batches
            and self._round % self.checkpoint_every_batches == 0
        ):
            self.checkpoint_all()

    def _dispatch(
        self, handle: ShardHandle, triples: List[Tuple[int, int, bytes]]
    ) -> None:
        if handle.inflight and len(handle.inflight) >= self.max_inflight:
            self._wait_for_acks(handle, below=self.max_inflight)
            if not handle.live:
                handle.deadlettered += len(triples)
                return
        seq = handle.next_seq
        handle.next_seq += 1
        message = protocol.encode_batch(seq, triples)
        try:
            handle.transport.send(message)
        except (TransportClosed, TransportError):
            # The batch never reached the shard: it is deadlettered,
            # not lost_at_crash — the distinction the ledger preserves.
            handle.deadlettered += len(triples)
            self._on_transport_death(handle)
            return
        handle.inflight[seq] = len(triples)
        handle.dispatched_packets += len(triples)

    def _pump_control(self) -> None:
        """Non-blocking: drain every live shard's decoded messages."""
        for handle in list(self.supervisor.handles.values()):
            if not handle.live or handle.transport is None:
                continue
            try:
                for message in handle.transport.recv_all():
                    self._handle_message(handle, message)
            except (TransportClosed, TransportError):
                self._on_transport_death(handle)

    def _wait_for_acks(self, handle: ShardHandle, below: int) -> None:
        """Block until *handle* has < *below* in-flight batches (or dies)."""
        deadline = time.monotonic() + _SETTLE_TIMEOUT_S
        while handle.live and len(handle.inflight) >= below:
            try:
                message = handle.transport.recv(timeout=0.05)
            except (TransportClosed, TransportError):
                self._on_transport_death(handle)
                return
            if message is None:
                self._check_deadlines()
                if time.monotonic() > deadline:
                    raise TransportError(
                        f"shard {handle.name} stalled with "
                        f"{len(handle.inflight)} batches in flight"
                    )
                continue
            self._handle_message(handle, message)

    def _handle_message(self, handle: ShardHandle, message: Message) -> None:
        topic = message.topic
        if topic == protocol.ACK_TOPIC:
            seq, processed, parse_errors, records = protocol.decode_ack(message)
            if handle.inflight.pop(seq, None) is None:
                raise TransportError(
                    f"shard {handle.name} acked unknown batch {seq}"
                )
            handle.acked_packets += processed
            handle.acked_parse_errors += parse_errors
            handle.records_received += len(records)
            handle.last_acked_seq = max(handle.last_acked_seq, seq)
            store = self.stores.get(handle.shard_id)
            if store is not None:
                store.append_ack(seq, processed, parse_errors, len(records))
            self._deliver_records(records)
        elif topic == protocol.RECORDS_ACK_TOPIC:
            seq, count = protocol.decode_records_ack(message)
            if handle.inflight.pop(seq, None) is not None:
                self.records_delivered += count
        else:
            self.supervisor.handle_control_message(handle, message)

    # -- failure handling ------------------------------------------------------

    def _on_transport_death(self, handle: ShardHandle) -> None:
        """EOF/EPIPE: conclusive in deterministic mode, suspicion in
        wall-clock mode (where the heartbeat deadline declares)."""
        if self.deterministic:
            cause = (
                "scheduled-kill"
                if handle.shard_id in self._faults
                else "transport-eof"
            )
            self._declare(handle, cause)
        else:
            self.supervisor.suspect(handle.shard_id, "transport-eof")

    def _check_deadlines(self) -> None:
        for shard_id in self.supervisor.expired_shards():
            handle = self.supervisor.handles[shard_id]
            self._declare(handle, "heartbeat-deadline")
            # Wall-clock mode restarts as soon as the budget allows.
            self._restart_shard(handle)

    def _declare(self, handle: ShardHandle, cause: str) -> None:
        # Acks that escaped before the death are real work, not losses:
        # consume everything already decoded before charging the rest.
        if handle.transport is not None:
            for message in handle.transport.recv_all():
                self._handle_message(handle, message)
        lost = self.supervisor.declare_down(handle.shard_id, cause)
        if handle is self._analytics_handle():
            # Records in flight to a dead analytics shard are record
            # losses, not packet losses.
            self.records_lost_at_crash += lost
            handle.lost_at_crash -= lost
            handle.lost_at_crash = max(0, handle.lost_at_crash)
        if self.deterministic and handle.state == SHARD_DOWN:
            handle.rejoin_at_round = self._round + self.restart_delay_batches

    def _restart_due_shards(self) -> None:
        if not self.deterministic:
            return
        for handle in self.supervisor.handles.values():
            if (
                handle.state == SHARD_DOWN
                and handle.rejoin_at_round is not None
                and self._round >= handle.rejoin_at_round
            ):
                self._restart_shard(handle)

    def _restart_shard(self, handle: ShardHandle) -> bool:
        """Respawn from the last checkpoint + WAL deltas (or, without a
        state dir, from parent-synthesized counter deltas so the books
        still reconcile; only the durable path restores the flow table)."""
        if handle.state != SHARD_DOWN:
            return False
        store = self.stores.get(handle.shard_id)
        if store is not None:
            recovery = store.load()
            restore = {"state": recovery.state, "deltas": recovery.deltas}
        else:
            restore = {
                "state": None,
                "deltas": (
                    [
                        {
                            "seq": handle.last_acked_seq,
                            "processed": handle.acked_packets,
                            "parse_errors": handle.acked_parse_errors,
                            "records": handle.records_received,
                        }
                    ]
                    if handle.acked_packets
                    else []
                ),
            }
        return self.supervisor.restart(handle.shard_id, restore_payload=restore)

    # -- records / analytics ---------------------------------------------------

    def _analytics_handle(self) -> Optional[ShardHandle]:
        spec = self.plan.analytics_shard
        return None if spec is None else self.supervisor.handles[spec.shard_id]

    def _deliver_records(self, records: List[bytes]) -> None:
        self.records_out += len(records)
        if not records:
            return
        if self.analytics == "parent":
            from repro.analytics.service import LATENCY_TOPIC

            for record in records:
                self._analytics_push.send(
                    Message.with_topic(LATENCY_TOPIC, record)
                )
            while self._analytics_service.poll(max_messages=256):
                pass
            self.records_delivered += len(records)
        elif self.analytics == "process":
            self._records_buffer.extend(records)
        else:
            if self._record_sink is not None:
                for record in records:
                    self._record_sink(record)
            self.records_delivered += len(records)

    def _flush_records(self) -> None:
        """Forward buffered records to the analytics shard (one hop)."""
        if self.analytics != "process" or not self._records_buffer:
            return
        handle = self._analytics_handle()
        records, self._records_buffer = self._records_buffer, []
        if handle is None or not handle.live:
            self.records_dropped += len(records)
            return
        self._analytics_seq += 1
        seq = self._analytics_seq
        try:
            handle.transport.send(protocol.encode_records(seq, records))
        except (TransportClosed, TransportError):
            self.records_dropped += len(records)
            self._on_transport_death(handle)
            return
        handle.inflight[seq] = len(records)
        self._wait_for_acks(handle, below=self.max_inflight)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint_all(self) -> int:
        """Synchronous checkpoint of every live shard; returns how many."""
        written = 0
        for handle in self.supervisor.handles.values():
            if handle.live and self._checkpoint_shard(handle):
                written += 1
        return written

    def _checkpoint_shard(self, handle: ShardHandle) -> bool:
        store = self.stores.get(handle.shard_id)
        if store is None or handle.transport is None:
            return False
        handle.pending_ckpt = None
        try:
            handle.transport.send(
                protocol.encode_json(
                    protocol.CKPT_REQ_TOPIC, {"seq": self._round}
                )
            )
        except (TransportClosed, TransportError):
            self._on_transport_death(handle)
            return False
        deadline = time.monotonic() + _SETTLE_TIMEOUT_S
        while handle.pending_ckpt is None:
            try:
                message = handle.transport.recv(timeout=0.05)
            except (TransportClosed, TransportError):
                self._on_transport_death(handle)
                return False
            if message is None:
                if time.monotonic() > deadline:
                    return False
                continue
            self._handle_message(handle, message)
        state = handle.pending_ckpt["state"]
        # The child's own ack high-water is the WAL dedup mark: FIFO
        # ordering guarantees every ack it covers was applied above.
        high_water = int(state.get("last_seq", handle.last_acked_seq))
        store.checkpoint(state, now_ns=self._round, last_acked_seq=high_water)
        return True

    # -- drain -----------------------------------------------------------------

    def run(self, packets: Iterable, batch_size: Optional[int] = None):
        """Feed a whole packet stream in rounds, then drain."""
        size = batch_size or self.batch_size
        batch: List = []
        for packet in packets:
            batch.append(packet)
            if len(batch) >= size:
                self.offer(batch)
                batch = []
        if batch:
            self.offer(batch)
        return self.drain()

    def drain(self) -> ShardRunReport:
        """Settle, reconcile, shut down; returns the proven report."""
        if self._drained:
            raise RuntimeError("runtime already drained")
        self._drained = True
        reconciliation: List[Tuple[str, bool, str]] = []
        child_ledgers: Dict[str, dict] = {}
        analytics_summary: Optional[dict] = None

        # A suspect shard's transport already hit EOF/EPIPE — the run
        # ending before its heartbeat lease lapsed must not leave its
        # inflight off the books. Declare now; the death is conclusive.
        for handle in self.supervisor.handles.values():
            if handle.state == SHARD_SUSPECT:
                self._declare(
                    handle, handle.detected_cause or "drain-unresolved"
                )

        for handle in self.supervisor.worker_handles():
            if handle.live and handle.inflight:
                self._wait_for_acks(handle, below=1)
        self._flush_records()
        analytics_handle = self._analytics_handle()
        if (
            analytics_handle is not None
            and analytics_handle.live
            and analytics_handle.inflight
        ):
            self._wait_for_acks(analytics_handle, below=1)

        if self.stores:
            self.checkpoint_all()

        for handle in self.supervisor.worker_handles():
            payload = self.supervisor.drain_shard(handle)
            if payload is None:
                continue
            ledger = payload["ledger"]
            child_ledgers[handle.name] = ledger
            for child_key, parent_value in (
                ("packets_processed", handle.acked_packets),
                ("parse_errors", handle.acked_parse_errors),
                ("records_emitted", handle.records_received),
            ):
                child_value = int(ledger[child_key])
                reconciliation.append(
                    (
                        f"{handle.name}.{child_key}",
                        child_value == parent_value,
                        f"child={child_value} parent={parent_value}",
                    )
                )
        if analytics_handle is not None:
            analytics_summary = self.supervisor.drain_shard(analytics_handle)
            if analytics_summary is not None:
                child_ledgers[analytics_handle.name] = analytics_summary
        if self._analytics_service is not None:
            self._analytics_service.finish()
            analytics_summary = {
                "enriched": self._analytics_service.enriched_count,
            }

        self.supervisor.shutdown()
        for store in self.stores.values():
            store.close()

        ledger = self.global_ledger()
        reconciliation.append(
            ("global.conservation", ledger.ok, str(ledger))
        )
        report = ShardRunReport(
            ledger=ledger,
            shards={
                h.name: h.ledger() for h in self.supervisor.handles.values()
            },
            child_ledgers=child_ledgers,
            reconciliation=reconciliation,
            shed_by_class=dict(self.shed_by_class),
            rerouted_packets=self.rerouted_packets,
            restarts=self.supervisor.total_restarts,
            states=self.supervisor.states(),
            heartbeats_seen=self.supervisor.heartbeats_seen,
            records={
                "emitted": self.records_out,
                "delivered": self.records_delivered,
                "dropped": self.records_dropped,
                "lost_at_crash": self.records_lost_at_crash,
            },
            analytics=analytics_summary,
            rounds=self._round,
        )
        return report

    def global_ledger(self) -> GlobalLedger:
        workers = self.supervisor.worker_handles()
        return GlobalLedger(
            ingested=self.ingested,
            processed=sum(h.acked_packets for h in workers),
            dropped=self.dropped,
            deadlettered=sum(h.deadlettered for h in workers),
            shed=sum(self.shed_by_class.values()),
            lost_at_crash=sum(h.lost_at_crash for h in workers),
        )

    def close(self) -> None:
        """Abortive cleanup for error paths (drain is the normal exit)."""
        self.supervisor.shutdown()
        for store in self.stores.values():
            store.close()

    # -- observability ---------------------------------------------------------

    def bind_registry(self, registry) -> None:
        self.supervisor.bind_registry(registry)
        rerouted = registry.counter(
            "ruru_shard_rerouted_total",
            help="Packets rerouted away from a down shard.",
        )
        shed = registry.counter(
            "ruru_shard_shed_total",
            help="Packets shed because their shard was down.",
            labels=("klass",),
        )

        def collect() -> None:
            rerouted.value = self.rerouted_packets
            for klass, count in self.shed_by_class.items():
                shed.labels(klass).value = count

        registry.register_collector(collect)
