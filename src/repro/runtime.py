"""The deployed system as one co-scheduled runtime.

The examples drive the stages sequentially (run the pipeline, then
drain analytics, then render). The real deployment runs everything
*concurrently*: DPDK workers poll their queues while the analytics
threads drain ZeroMQ and the frontend streams frames. This module
reproduces that shape on the EAL scheduler — every stage is an lcore,
packets are fed in bursts, and all stages make progress interleaved,
so queue depths and HWM drops behave as they would live.

Typical use::

    runtime = RuruRuntime.build(generator.plan)
    report = runtime.run(generator.packets())
    report.tsdb.query(...)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.core.config import PipelineConfig
from repro.dpdk.eal import Eal
from repro.frontend.map_view import LiveMapView
from repro.frontend.websocket import WebSocketChannel
from repro.geo.asn import AsnDatabase
from repro.geo.builder import SyntheticGeoPlan
from repro.geo.database import GeoDatabase
from repro.mq.codec import decode_enriched
from repro.mq.socket import SubSocket
from repro.net.packet import Packet
from repro.stack import build_enrichment_dbs, build_live_stack
from repro.tsdb.database import TimeSeriesDatabase


@dataclass
class RuntimeReport:
    """Everything a run produced, one handle per tier."""

    pipeline_stats: object
    tsdb: TimeSeriesDatabase
    map_view: LiveMapView
    channel: WebSocketChannel
    anomalies: List = field(default_factory=list)
    frontend_dropped: int = 0

    @property
    def measurements(self) -> int:
        return self.pipeline_stats.measurements


class _FrontendPump:
    """Lcore body: drain the enriched SUB into the live map."""

    def __init__(self, sub: SubSocket, view: LiveMapView):
        self.sub = sub
        self.view = view
        self.last_ns = 0

    def poll(self, max_messages: int = 128) -> int:
        handled = 0
        for message in self.sub.recv_all(max_messages):
            measurement = decode_enriched(message.payload[0])
            self.view.add_measurement(measurement, measurement.timestamp_ns)
            self.view.tick(measurement.timestamp_ns)
            self.last_ns = max(self.last_ns, measurement.timestamp_ns)
            handled += 1
        return handled


class RuruRuntime:
    """All tiers wired and co-scheduled on one EAL.

    Args:
        geo / asn: enrichment databases.
        config: pipeline tunables.
        with_anomaly_detection: attach the three detectors.
        analytics_workers: enrichment worker pool size.
        map_fps: live-map frame rate.
    """

    def __init__(
        self,
        geo: GeoDatabase,
        asn: AsnDatabase,
        config: Optional[PipelineConfig] = None,
        with_anomaly_detection: bool = True,
        analytics_workers: int = 4,
        map_fps: int = 30,
    ):
        self.config = config or PipelineConfig()
        self.stack = build_live_stack(
            geo_asn=(geo, asn),
            config=self.config,
            anomaly=with_anomaly_detection,
            analytics_workers=analytics_workers,
            frontend_hwm=10_000,
        )
        self.service = self.stack.service
        self.manager = self.stack.anomaly
        self.pipeline = self.stack.pipeline
        self.channel = WebSocketChannel(name="live-map")
        self.map_view = LiveMapView(channel=self.channel, fps=map_fps)
        self._frontend_sub = self.stack.frontend
        self._pump = _FrontendPump(self._frontend_sub, self.map_view)

        # One EAL for every stage: rx workers + analytics + frontend.
        self.eal = Eal()
        for worker in self.pipeline.workers:
            self.eal.launch(worker.poll, role=f"rx-q{worker.queue_id}")
        self.eal.launch(self.service.poll, role="analytics")
        self.eal.launch(self._pump.poll, role="frontend")

    @classmethod
    def build(
        cls,
        plan: Optional[SyntheticGeoPlan] = None,
        country_accuracy: float = 0.98,
        **kwargs,
    ) -> "RuruRuntime":
        """Construct with synthetic databases over *plan*."""
        geo, asn = build_enrichment_dbs(
            plan=plan, country_accuracy=country_accuracy
        )
        return cls(geo, asn, **kwargs)

    def run(self, packets: Iterable[Packet], feed_batch: int = 128) -> RuntimeReport:
        """Feed the stream with all stages co-scheduled; returns the report.

        Every *feed_batch* packets, each lcore gets one poll round —
        so analytics and the frontend progress while rx queues still
        hold packets, exactly as separate cores would.
        """
        batch = 0
        for packet in packets:
            self.pipeline.offer(packet)
            batch += 1
            if batch >= feed_batch:
                self.eal.step_all()
                batch = 0
        # Drain: keep scheduling until nothing moves anywhere.
        self.eal.run_until_idle()
        self.service.finish()
        self.eal.run_until_idle()
        self.pipeline._merge_worker_stats()
        self.map_view.flush_frame(self._pump.last_ns)

        anomalies = []
        if self.manager is not None:
            anomalies = self.manager.finish(now_ns=self._pump.last_ns)
        return RuntimeReport(
            pipeline_stats=self.pipeline.stats,
            tsdb=self.service.tsdb,
            map_view=self.map_view,
            channel=self.channel,
            anomalies=anomalies,
            frontend_dropped=self._frontend_sub.dropped,
        )

    def status(self) -> dict:
        """A JSON-able operations snapshot of every tier.

        The shape an ops endpoint (or the demo's status header) would
        expose: measurement counters, queue pressure, storage size,
        frontend pacing.
        """
        summary = self.pipeline.stats.summary()
        return {
            "pipeline": {
                **summary,
                "queue_balance": self.pipeline.queue_balance(),
                "flow_table_occupancy": self.pipeline.flow_table_occupancy(),
            },
            "analytics": {
                "records_in": self.service.records_in,
                "enriched": self.service.enriched_count,
                "filtered_out": self.service.filtered_out,
                "input_queue_depth": len(self.service.pull),
            },
            "tsdb": {
                "points": self.service.tsdb.total_points(),
                "series": {
                    name: count
                    for name, count in self.service.tsdb.cardinality().items()
                },
            },
            "frontend": {
                "frames_sent": self.map_view.frames_sent,
                "active_arcs": self.map_view.active_arc_count,
                "arcs_dropped": self.map_view.arcs_dropped,
                "feed_bytes": self.channel.bytes_to_client,
                "colors": self.map_view.color_histogram(),
            },
        }
