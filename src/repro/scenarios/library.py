"""The committed scenario library.

Scenarios ship as TOML documents under ``library/`` next to this
module — data, not code: adding an episode is adding a file, and the
CLI, the grid runner, the committed baselines and CI all pick it up by
name. ``RURU_SCENARIO_PATH`` (a ``os.pathsep``-separated list of
directories) layers operator scenario collections on top; a later
directory shadows an earlier name, and the built-ins load first.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.scenarios.spec import ScenarioSpec, SpecError, load_scenario_file

#: The built-in scenario documents.
LIBRARY_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "library")


def _scenario_files(directory: str) -> List[str]:
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return []
    return [
        os.path.join(directory, entry)
        for entry in entries
        if entry.endswith((".toml", ".json"))
    ]


def load_library(
    extra_dirs: Optional[List[str]] = None,
) -> Dict[str, ScenarioSpec]:
    """Name → spec for the built-ins plus any layered directories."""
    directories = [LIBRARY_DIR]
    env_path = os.environ.get("RURU_SCENARIO_PATH")
    if env_path:
        directories.extend(part for part in env_path.split(os.pathsep) if part)
    directories.extend(extra_dirs or [])
    library: Dict[str, ScenarioSpec] = {}
    for directory in directories:
        for path in _scenario_files(directory):
            try:
                spec = load_scenario_file(path)
            except SpecError as exc:
                raise SpecError(f"{path}: {exc}") from None
            library[spec.name] = spec
    return library


def scenario_names(extra_dirs: Optional[List[str]] = None) -> List[str]:
    return sorted(load_library(extra_dirs))


def get_scenario(
    name: str, extra_dirs: Optional[List[str]] = None
) -> ScenarioSpec:
    """Resolve *name*: a library entry, or a direct spec-file path."""
    if name.endswith((".toml", ".json")) and os.path.exists(name):
        return load_scenario_file(name)
    library = load_library(extra_dirs)
    try:
        return library[name]
    except KeyError:
        raise SpecError(
            f"unknown scenario {name!r}; choose from {sorted(library)} "
            "or pass a spec-file path"
        ) from None
