"""Scenario regression gating against committed baselines.

Every library scenario has a committed baseline resultset under
``benchmarks/baselines/scenarios/<name>.json``. Comparison reuses
``ruru perf compare``'s noise-aware machinery
(:func:`repro.obs.bench.compare`), which the scenario runner's metric
stamping splits into two regimes:

* **correctness invariants** — ledger entries, anomaly-event counts,
  flow/measurement totals — are recorded ``exact`` + ``portable``:
  any drift, in either direction, on any machine, is a regression.
  Doubling one scenario's fault rate moves its ledger and fault
  counters, so that scenario fails while the untouched ones pass.
* **performance observations** — stage wall shares when a run was
  profiled — go through the usual noise floors, with cross-platform
  absolute metrics downgraded to advisory.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.bench import (
    CompareReport,
    Resultset,
    compare,
    stage_profile_metrics,
)

#: Repo-relative home of the committed scenario baselines.
BASELINE_SUBDIR = os.path.join("benchmarks", "baselines", "scenarios")


def default_baseline_dir() -> str:
    """Resolve the baseline directory.

    ``$RURU_SCENARIO_BASELINES`` wins; otherwise the repo-relative
    path from the current directory when it exists, falling back to
    the checkout this module was imported from (so tests and CI agree
    regardless of the working directory).
    """
    env_dir = os.environ.get("RURU_SCENARIO_BASELINES")
    if env_dir:
        return env_dir
    if os.path.isdir(BASELINE_SUBDIR):
        return BASELINE_SUBDIR
    repo_root = os.path.dirname(  # src/repro/scenarios -> repo root
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    )
    return os.path.join(repo_root, BASELINE_SUBDIR)


def baseline_path(name: str, baseline_dir: Optional[str] = None) -> str:
    """Where scenario *name*'s committed baseline lives."""
    return os.path.join(baseline_dir or default_baseline_dir(), f"{name}.json")


def compare_scenario(
    baseline: Resultset,
    current: Resultset,
    threshold: float = 0.15,
) -> CompareReport:
    """Diff a scenario run against its baseline.

    Thin over :func:`repro.obs.bench.compare`: when *both* resultsets
    carry a stage profile, the machine-portable per-stage wall-share
    metrics are derived on the fly and gated alongside — a run that
    was not profiled (the deterministic default) compares on the exact
    invariants alone.
    """
    if baseline.stage_profile and current.stage_profile:
        baseline = _with_stage_metrics(baseline)
        current = _with_stage_metrics(current)
    return compare(baseline, current, threshold=threshold)


def _with_stage_metrics(resultset: Resultset) -> Resultset:
    out = Resultset(resultset.name, meta=resultset.meta)
    out.metrics = dict(resultset.metrics)
    out.stage_profile = resultset.stage_profile
    for name, entry in stage_profile_metrics(resultset.stage_profile).items():
        out.metrics.setdefault(name, entry)
    return out
