"""The grid batch runner: (scenario × seed × override) sweeps.

Modeled on flent's batch facility (and the repeatable-grid argument of
arXiv 1609.00653): a performance or behaviour claim is only
comparable when the workload that produced it is a *coordinate*, not a
story. A grid names its cells deterministically —
``<scenario>--s<seed>[--<variant>]`` — and the runner archives one
metadata-stamped resultset per cell under
``<out_dir>/<scenario>/<cell_id>.json``.

Resumability is the point: archives are probed with
:func:`repro.obs.bench.try_load_resultset`, so a rerun of an
interrupted grid skips every cell whose archive is readable and
matches the cell coordinates — including archives written by older
revisions with other schemas (they simply re-run). A torn JSON file
from a killed run never poisons the sweep.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.bench import try_load_resultset
from repro.scenarios.library import get_scenario
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class GridCell:
    """One coordinate of a grid sweep."""

    scenario: str
    seed: int
    variant: str = "base"
    overrides: Dict[str, object] = field(default_factory=dict)

    @property
    def cell_id(self) -> str:
        suffix = "" if self.variant == "base" else f"--{self.variant}"
        return f"{self.scenario}--s{self.seed}{suffix}"

    def archive_path(self, out_dir: str) -> str:
        return os.path.join(out_dir, self.scenario, f"{self.cell_id}.json")

    def coordinates(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "variant": self.variant,
        }


@dataclass
class GridSpec:
    """The sweep axes: scenarios × seeds × named override variants."""

    scenarios: List[str]
    seeds: List[int] = field(default_factory=lambda: [7])
    #: variant name → dotted-path spec overrides; "base" = the spec
    #: as committed.
    variants: Dict[str, Dict[str, object]] = field(
        default_factory=lambda: {"base": {}}
    )

    def expand(self) -> List[GridCell]:
        """Every cell, in deterministic sweep order."""
        cells = []
        for scenario in self.scenarios:
            for seed in self.seeds:
                for variant, overrides in self.variants.items():
                    cells.append(
                        GridCell(
                            scenario=scenario,
                            seed=int(seed),
                            variant=variant,
                            overrides=dict(overrides),
                        )
                    )
        return cells


@dataclass
class CellOutcome:
    cell: GridCell
    status: str  # "ran" | "skipped" | "failed"
    path: str
    detail: str = ""


@dataclass
class BatchReport:
    """What one grid pass did."""

    out_dir: str
    outcomes: List[CellOutcome] = field(default_factory=list)

    @property
    def ran(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "ran"]

    @property
    def skipped(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def failed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [f"grid: {len(self.outcomes)} cell(s) -> {self.out_dir}"]
        for outcome in self.outcomes:
            lines.append(
                f"  [{outcome.status:>7}] {outcome.cell.cell_id}"
                + (f" ({outcome.detail})" if outcome.detail else "")
            )
        lines.append(
            f"{len(self.ran)} ran, {len(self.skipped)} skipped "
            f"(already archived), {len(self.failed)} failed"
        )
        return "\n".join(lines)


def _already_archived(cell: GridCell, path: str) -> bool:
    """Whether a readable archive with this cell's coordinates exists."""
    archived = try_load_resultset(path)
    if archived is None:
        return False
    recorded = archived.meta.get("cell")
    if not isinstance(recorded, dict):
        # An archive from a revision that predates cell stamping still
        # counts when it sits at this cell's exact path.
        return True
    return all(
        str(recorded.get(key)) == str(value)
        for key, value in cell.coordinates().items()
    )


def run_grid(
    grid: GridSpec,
    out_dir: str,
    resume: bool = True,
    extra_dirs: Optional[List[str]] = None,
    on_cell: Optional[Callable[[GridCell, str], None]] = None,
    max_cells: Optional[int] = None,
) -> BatchReport:
    """Execute (or resume) one grid sweep.

    Args:
        grid: the sweep axes. Scenario names resolve through the
            library (plus *extra_dirs* / ``RURU_SCENARIO_PATH``).
        out_dir: archive root; one JSON per cell.
        resume: skip cells whose archive already exists (the default —
            pass False to force a full re-run).
        on_cell: progress callback ``(cell, status)`` per cell.
        max_cells: stop after this many *executed* cells (simulates an
            interrupted sweep; the test harness and ``--max-cells``).
    """
    report = BatchReport(out_dir=out_dir)
    specs: Dict[str, ScenarioSpec] = {}
    executed = 0
    for cell in grid.expand():
        path = cell.archive_path(out_dir)
        if resume and _already_archived(cell, path):
            report.outcomes.append(CellOutcome(cell, "skipped", path))
            if on_cell is not None:
                on_cell(cell, "skipped")
            continue
        if max_cells is not None and executed >= max_cells:
            break
        try:
            if cell.scenario not in specs:
                specs[cell.scenario] = get_scenario(cell.scenario, extra_dirs)
            result: ScenarioResult = run_scenario(
                specs[cell.scenario],
                seed=cell.seed,
                overrides=cell.overrides,
                cell=cell.coordinates(),
            )
        except Exception as exc:  # noqa: BLE001 — one cell, not the grid
            report.outcomes.append(
                CellOutcome(cell, "failed", path, detail=repr(exc))
            )
            if on_cell is not None:
                on_cell(cell, "failed")
            continue
        executed += 1
        if result.ok:
            result.resultset.write(path)
            status, detail = "ran", ""
        else:
            # Keep the evidence, but never under the resume-probe path:
            # a cell that violated its correctness gates must re-run.
            result.resultset.write(path + ".failed")
            status = "failed"
            detail = "; ".join(
                c.render() for c in result.checks if not c.ok
            )
        report.outcomes.append(CellOutcome(cell, status, path, detail=detail))
        if on_cell is not None:
            on_cell(cell, status)
    return report
