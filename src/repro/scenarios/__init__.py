"""Declarative scenarios: the paper's operational episodes as data.

Ruru's deployment story is a list of *named episodes* — the nightly
firewall glitch, SYN floods, connection surges between two cities —
that until now only existed as one-off wiring in
:mod:`repro.traffic.scenarios` and the CLI. This package turns an
episode into a document:

* :mod:`repro.scenarios.spec` — the scenario spec: traffic mix, fault
  profile (named or inline rate overrides), a timed anomaly schedule
  on the virtual clock, stack shape, duration and seed, loadable from
  TOML or JSON.
* :mod:`repro.scenarios.library` — the committed scenario library
  (``auckland-baseline``, ``firewall-glitch-night``, …), shipped as
  TOML files next to this package.
* :mod:`repro.scenarios.runner` — executes one spec through the
  stage-graph runtime and folds the run into a metadata-stamped
  :class:`repro.obs.bench.Resultset` plus correctness checks (ledger
  conservation, expected anomaly events per schedule).
* :mod:`repro.scenarios.grid` — expands (scenario × seed × override)
  grids and archives one resultset per cell, resumably: a rerun skips
  cells whose archive already exists.
* :mod:`repro.scenarios.compare` — regression gating against the
  committed baselines under ``benchmarks/baselines/scenarios/`` with
  ``ruru perf compare``'s noise-aware thresholds.

``ruru scenario list|show|run|batch|compare`` is the operator surface.
"""

from repro.scenarios.compare import (
    baseline_path,
    compare_scenario,
    default_baseline_dir,
)
from repro.scenarios.grid import BatchReport, GridCell, GridSpec, run_grid
from repro.scenarios.library import (
    get_scenario,
    load_library,
    scenario_names,
)
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import (
    AnomalyWindowSpec,
    FaultSpec,
    ScenarioSpec,
    StackSpec,
    TrafficSpec,
    apply_overrides,
    load_scenario_file,
)

__all__ = [
    "AnomalyWindowSpec",
    "BatchReport",
    "FaultSpec",
    "GridCell",
    "GridSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "StackSpec",
    "TrafficSpec",
    "apply_overrides",
    "baseline_path",
    "compare_scenario",
    "default_baseline_dir",
    "get_scenario",
    "load_library",
    "load_scenario_file",
    "run_grid",
    "run_scenario",
    "scenario_names",
]
