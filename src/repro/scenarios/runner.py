"""Execute one scenario spec through the stage-graph runtime.

The runner is deliberately thin: all wiring comes from
:class:`repro.stack.builder.StackBuilder` (the composition root), all
processing goes through :meth:`RuruStack.process_batch` — the same
graph traversal ``ruru prof`` and the chaos harness exercise — and the
outcome is folded into one :class:`repro.obs.bench.Resultset` plus a
list of correctness checks.

Everything the resultset's ``metrics`` section carries is
*deterministic*: same (spec, seed) → byte-identical metrics and
anomaly-event sequences. Wall-clock observations (elapsed seconds,
packets/s) land in the metadata block instead, stamped next to the git
revision and platform, so two runs of the same cell diff clean.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import PipelineConfig
from repro.obs import Telemetry
from repro.obs.bench import Resultset, collect_meta
from repro.overload import CLASSES, HANDSHAKE, PAYLOAD, OverloadLedger
from repro.scenarios.spec import EVENT_KINDS, ScenarioSpec, apply_overrides
from repro.stack.builder import StackBuilder
from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.generator import GeneratorConfig, TrafficGenerator
from repro.traffic.endpoints import EndpointPopulation

NS_PER_S = 1_000_000_000


def build_scenario_generator(
    spec: ScenarioSpec, seed: int
) -> TrafficGenerator:
    """The spec's traffic axis as a configured generator."""
    traffic = spec.traffic
    profile = DiurnalProfile() if traffic.diurnal else DiurnalProfile.flat()
    config = GeneratorConfig(
        duration_ns=traffic.duration_ns,
        start_ns=traffic.start_ns,
        mean_flows_per_s=traffic.rate,
        seed=seed,
        tap_city=traffic.tap_city,
        profile=profile,
        handshake_only_fraction=traffic.handshake_only_fraction,
        rst_fraction=traffic.rst_fraction,
        ipv6_fraction=traffic.ipv6_fraction,
        max_data_exchanges=traffic.max_data_exchanges,
    )
    injectors = [
        window.build_injector(traffic) for window in spec.anomalies
    ]
    return TrafficGenerator(
        config=config,
        population=EndpointPopulation(),
        injectors=injectors,
    )


@dataclass
class Check:
    """One correctness gate the run either held or violated."""

    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        return f"[{'ok' if self.ok else 'FAIL'}] {self.name}" + (
            f": {self.detail}" if self.detail else ""
        )


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    seed: int
    resultset: Resultset
    events: List[str] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def metric(self, name: str) -> Optional[float]:
        entry = self.resultset.metrics.get(name)
        return None if entry is None else entry["value"]

    def render(self) -> str:
        lines = [
            f"scenario: {self.spec.name!r} seed={self.seed}",
            f"  {self.spec.description}",
            f"  faults: {self.spec.faults.profile}"
            + (" (+overrides)" if self.spec.faults.overrides else ""),
            f"  flows={self.metric('scenario.flows'):,.0f} "
            f"packets={self.metric('scenario.packets_offered'):,.0f} "
            f"measurements={self.metric('scenario.measurements'):,.0f}",
            f"  ledger: ingested={self.metric('ledger.ingested'):,.0f} "
            f"processed={self.metric('ledger.processed'):,.0f} "
            f"dropped={self.metric('ledger.dropped'):,.0f} "
            f"deadlettered={self.metric('ledger.deadlettered'):,.0f} "
            f"(balance {self.metric('ledger.balance'):+,.0f})",
        ]
        if self.metric("overload.level_max") is not None:
            lines.append(
                f"  overload: level_max={self.metric('overload.level_max'):.0f} "
                f"transitions={self.metric('overload.transitions'):.0f} "
                f"shed payload={self.metric('overload.shed.payload'):,.0f} "
                f"handshake={self.metric('overload.shed.handshake'):,.0f} "
                f"(oledger balance {self.metric('oledger.balance'):+,.0f})"
            )
        wall = self.resultset.meta.get("wall", {})
        if wall:
            lines.append(
                f"  wall: {wall.get('elapsed_s', 0):.2f}s "
                f"({wall.get('packets_per_s', 0):,.0f} packets/s)"
            )
        lines.append("anomaly events:")
        if self.events:
            lines.extend(f"  {text}" for text in self.events)
        else:
            lines.append("  (none)")
        lines.append("checks:")
        lines.extend(f"  {check.render()}" for check in self.checks)
        lines.append("verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    overrides: Optional[Dict[str, object]] = None,
    cell: Optional[Dict[str, object]] = None,
    profile_stages: bool = False,
) -> ScenarioResult:
    """Run *spec* end to end; never raises for in-band failures.

    Args:
        spec: the scenario document.
        seed: overrides the spec's seed (the grid's seed axis).
        overrides: dotted-path spec overrides (the grid's config axis).
        cell: grid-cell coordinates stamped into the archive metadata.
        profile_stages: attach the stage profiler and archive its
            summary (wall timings — off for byte-stable baselines).
    """
    spec = apply_overrides(spec, overrides or {})
    if spec.shard.enabled:
        # The process-topology axis takes over: the episode runs
        # through real worker processes (repro.shard) instead of the
        # in-process stack. Stage profiling does not apply there.
        from repro.scenarios.shard_runner import run_shard_scenario

        return run_shard_scenario(
            spec, seed=seed, overrides=overrides, cell=cell
        )
    run_seed = spec.seed if seed is None else int(seed)
    generator = build_scenario_generator(spec, run_seed)
    fault_profile = spec.faults.resolve()

    telemetry = Telemetry()
    profiler = (
        telemetry.enable_profiler(sample_every=0) if profile_stages else None
    )
    builder = (
        StackBuilder()
        .generator(generator)
        .queues(spec.stack.queues)
        .telemetry(telemetry)
        .analytics(num_workers=spec.stack.analytics_workers)
        # "stream" mode: detectors observe the enriched frontend feed
        # (the durable-runtime shape), which stays well-ordered under
        # mq duplication/corruption profiles where inline observation
        # would see time move backwards.
        .anomaly("stream")
        .frontend(hwm=spec.stack.frontend_hwm)
        .faults(fault_profile, seed=run_seed)
    )
    if spec.stack.topk is not None:
        builder.topk(capacity=spec.stack.topk)
    if spec.stack.queue_capacity is not None:
        builder.pipeline_config(
            PipelineConfig(
                num_queues=spec.stack.queues,
                queue_capacity=spec.stack.queue_capacity,
            )
        )
    if spec.overload.enabled:
        builder.overload(
            low=spec.overload.low,
            high=spec.overload.high,
            up_dwell_ms=spec.overload.up_dwell_ms,
            down_dwell_ms=spec.overload.down_dwell_ms,
            sampled_modulus=spec.overload.sampled_modulus,
            snap_len=spec.overload.snap_len,
        )
    stack = builder.build()
    pipeline = stack.pipeline

    # Feed batches are cut either by count (the default) or by virtual
    # time: a window makes the offered *rate* what fills the rings, so
    # overload scenarios see genuine occupancy pressure during a ramp
    # instead of every batch being the same fixed size.
    window_ns = (
        int(spec.stack.feed_window_ms * 1_000_000)
        if spec.stack.feed_window_ms is not None
        else None
    )

    unhandled: List[str] = []
    started = time.perf_counter()
    try:
        batch = []
        window_end: Optional[int] = None
        for packet in stack.packet_stream():
            if window_ns is not None:
                if window_end is None:
                    window_end = packet.timestamp_ns + window_ns
                elif packet.timestamp_ns >= window_end:
                    stack.process_batch(batch)
                    batch = []
                    while packet.timestamp_ns >= window_end:
                        window_end += window_ns
                batch.append(packet)
            else:
                batch.append(packet)
                if len(batch) >= pipeline.feed_batch:
                    stack.process_batch(batch)
                    batch = []
        stack.process_batch(batch)
        stack.drain()
    except Exception as exc:  # noqa: BLE001 — the checks carry it
        unhandled.append(repr(exc))
    elapsed_s = time.perf_counter() - started

    stats = pipeline.stats_snapshot()
    ledger = stack.service.conservation_ledger()
    end_ns = spec.traffic.start_ns + spec.traffic.duration_ns
    events = stack.anomaly.finish(now_ns=max(end_ns, stack.now_ns))
    event_counts = {kind: 0 for kind in EVENT_KINDS}
    for event in events:
        event_counts[event.kind] = event_counts.get(event.kind, 0) + 1

    meta = collect_meta(seed=run_seed, config={"overrides": overrides or {}})
    meta["scenario"] = spec.name
    meta["spec"] = spec.to_dict()
    meta["cell"] = dict(cell or {"scenario": spec.name, "seed": run_seed})
    meta["events"] = [str(event) for event in events]
    meta["wall"] = {
        "elapsed_s": round(elapsed_s, 3),
        "packets_per_s": (
            round(stats.packets_offered / elapsed_s, 1) if elapsed_s > 0 else 0.0
        ),
    }
    resultset = Resultset(f"scenario.{spec.name}", meta=meta)

    def exact(name: str, value: float, unit: str = "") -> None:
        resultset.record(name, value, unit=unit, exact=True, portable=True)

    exact("scenario.flows", generator.flows_generated, unit="flows")
    exact("scenario.packets_offered", stats.packets_offered, unit="packets")
    exact("scenario.measurements", stats.measurements, unit="records")
    exact("scenario.enriched", stack.service.enriched_count, unit="records")
    exact("scenario.tsdb_points", stack.tsdb.total_points(), unit="points")
    exact("ledger.ingested", ledger.ingested)
    exact("ledger.processed", ledger.processed)
    exact("ledger.dropped", ledger.dropped)
    exact("ledger.deadlettered", ledger.deadlettered)
    exact("ledger.balance", ledger.balance)
    exact("frontend.received", stack.frontend_received)
    exact("frontend.degraded", stack.frontend_degraded)
    exact(
        "faults.injected_total",
        sum(stack.injector.injected.values()) if stack.injector else 0,
    )
    if stack.resilience is not None:
        exact("resilience.degraded_published", stack.resilience.degraded_published)
        exact("resilience.dlq_total", stack.resilience.dlq.total)
        exact("resilience.retries", stack.resilience.retries)
    controller = stack.overload
    oledger = None
    if controller is not None:
        exact("overload.level", controller.level)
        exact("overload.level_max", controller.level_max)
        exact("overload.transitions", len(controller.transitions))
        for klass in sorted(CLASSES):
            exact(f"overload.offered.{klass}", controller.offered[klass])
            exact(f"overload.admitted.{klass}", controller.admitted[klass])
            exact(f"overload.shed.{klass}", controller.shed_total(klass=klass))
        exact("overload.truncated", controller.truncated)
        exact("overload.ring_displacements", controller.ring_displacements)
        exact("overload.mq_offered", controller.mq_offered)
        oledger = OverloadLedger.from_parts(
            controller.mq_offered,
            ledger,
            controller.shed_total(stage="mq"),
        )
        exact("oledger.ingested", oledger.ingested)
        exact("oledger.shed", oledger.shed)
        exact("oledger.balance", oledger.balance)
        meta["overload"] = controller.summary()
        meta["overload_transitions"] = [
            str(transition) for transition in controller.transitions
        ]
    exact("events.total", len(events), unit="events")
    for kind in sorted(event_counts):
        exact(f"events.{kind}", event_counts[kind], unit="events")
    if profiler is not None:
        resultset.stage_profile = dict(profiler.summary())

    checks = [
        Check(
            "survived",
            not unhandled,
            "; ".join(unhandled),
        ),
        Check(
            "ledger-conserves",
            ledger.ok,
            str(ledger) if not ledger.ok else "",
        ),
    ]
    if controller is not None:
        # Frame-level sheds split into rejected-at-offer frames
        # (packets_shed) and queued-then-evicted victims
        # (ring_displacements); MQ-stage sheds are records, not frames.
        frame_shed = controller.shed_total() - controller.shed_total(stage="mq")
        attributed = stats.packets_shed + controller.ring_displacements
        packet_balance = stats.packets_offered - (
            stats.packets_queued + stats.nic_drops + stats.packets_shed
        )
        queued_balance = stats.packets_queued - (
            stats.packets_processed + controller.ring_displacements
        )
        checks.append(
            Check(
                "packet-ledger-conserves",
                packet_balance == 0
                and queued_balance == 0
                and attributed == frame_shed,
                f"offer balance {packet_balance:+d}, "
                f"queue balance {queued_balance:+d}, "
                f"shed {attributed} vs attributed {frame_shed}",
            )
        )
        checks.append(
            Check(
                "overload-ledger-conserves",
                oledger.ok,
                str(oledger) if not oledger.ok else "",
            )
        )
        if spec.overload.handshake_shed_max_ratio is not None:
            ratio = controller.shed_ratio(HANDSHAKE)
            limit = spec.overload.handshake_shed_max_ratio
            checks.append(
                Check(
                    "handshake-shed-bounded",
                    ratio <= limit,
                    f"shed ratio {ratio:.4f}, want <= {limit}",
                )
            )
        if spec.overload.payload_shed_min_ratio is not None:
            ratio = controller.shed_ratio(PAYLOAD)
            floor = spec.overload.payload_shed_min_ratio
            checks.append(
                Check(
                    "payload-shed-engaged",
                    ratio >= floor,
                    f"shed ratio {ratio:.4f}, want >= {floor}",
                )
            )
    for kind, band in sorted(spec.expect.items()):
        count = event_counts.get(kind, 0)
        low, high = band.get("min"), band.get("max")
        ok = (low is None or count >= low) and (high is None or count <= high)
        want = " and ".join(
            part
            for part in (
                f">={low}" if low is not None else "",
                f"<={high}" if high is not None else "",
            )
            if part
        )
        checks.append(
            Check(f"expect.{kind}", ok, f"saw {count}, want {want}")
        )

    return ScenarioResult(
        spec=spec,
        seed=run_seed,
        resultset=resultset,
        events=[str(event) for event in events],
        checks=checks,
    )
