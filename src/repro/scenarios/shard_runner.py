"""Run a scenario through the process-sharded runtime (``repro.shard``).

The dispatch target for specs whose ``[shard]`` table sets
``shards > 0``: the spec's traffic axis still builds the workload, but
instead of the in-process stack the packets flow through
:class:`repro.shard.ShardedRuntime` — one real OS process per RX
queue, MQ frames over pipes, a supervising parent — optionally with a
scheduled SIGKILL against one shard to exercise crash containment,
checkpoint + WAL recovery and rejoin.

The run uses the runtime's *deterministic* mode (no wall-clock
heartbeat deadline, lockstep dispatch, virtual-round rejoin), so every
metric the resultset records is byte-stable for a (spec, seed) pair
and gates ``exact`` against the committed baseline, exactly like the
in-process scenarios' ledgers do. Wall-clock observations land in the
metadata block.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, Optional

from repro.core.config import PipelineConfig
from repro.obs.bench import Resultset, collect_meta
from repro.scenarios.spec import ScenarioSpec

NS_PER_S = 1_000_000_000


def run_shard_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    overrides: Optional[Dict[str, object]] = None,
    cell: Optional[Dict[str, object]] = None,
):
    """Execute one sharded episode; returns a ``ScenarioResult``.

    *spec* must already have any overrides applied (the public
    :func:`repro.scenarios.runner.run_scenario` does this before
    dispatching here); *overrides* is stamped into the metadata only.
    """
    # Imported late: the runner module imports this one's caller.
    from repro.scenarios.runner import (
        Check,
        ScenarioResult,
        build_scenario_generator,
    )
    from repro.shard.runtime import ShardedRuntime

    shard = spec.shard
    run_seed = spec.seed if seed is None else int(seed)
    generator = build_scenario_generator(spec, run_seed)
    packets = generator.packet_list()

    state_dir = tempfile.mkdtemp(prefix="ruru-shard-") if shard.durable else None
    runtime = ShardedRuntime(
        shard.shards,
        PipelineConfig(num_queues=shard.shards),
        analytics="none",
        state_dir=state_dir,
        policy=shard.policy,
        checkpoint_every_batches=shard.checkpoint_every_batches,
        restart_delay_batches=shard.restart_delay_batches,
        max_restarts_per_shard=shard.max_restarts,
        batch_size=shard.batch_size,
    )
    if shard.kill_shard is not None:
        runtime.schedule_kill(shard.kill_shard, at_seq=shard.kill_at_batch)

    unhandled = []
    report = None
    started = time.perf_counter()
    try:
        report = runtime.run(packets, batch_size=shard.batch_size)
    except Exception as exc:  # noqa: BLE001 — the checks carry it
        unhandled.append(repr(exc))
    finally:
        runtime.close()
    elapsed_s = time.perf_counter() - started

    meta = collect_meta(seed=run_seed, config={"overrides": overrides or {}})
    meta["scenario"] = spec.name
    meta["spec"] = spec.to_dict()
    meta["cell"] = dict(cell or {"scenario": spec.name, "seed": run_seed})
    meta["wall"] = {
        "elapsed_s": round(elapsed_s, 3),
        "packets_per_s": (
            round(len(packets) / elapsed_s, 1) if elapsed_s > 0 else 0.0
        ),
    }
    resultset = Resultset(f"scenario.{spec.name}", meta=meta)

    def exact(name: str, value: float, unit: str = "") -> None:
        resultset.record(name, value, unit=unit, exact=True, portable=True)

    exact("scenario.flows", generator.flows_generated, unit="flows")
    exact("scenario.packets_offered", len(packets), unit="packets")

    checks = [Check("survived", not unhandled, "; ".join(unhandled))]
    if report is not None:
        # Heartbeat counts are wall-clock coupled; everything below is
        # a function of (spec, seed) alone.
        meta["shard"] = {
            "states": report.states,
            "restarts": report.restarts,
            "heartbeats_seen": report.heartbeats_seen,
            "rounds": report.rounds,
        }
        ledger = report.ledger
        # The canonical names the render/grid tooling reads, then the
        # shard-only terms.
        exact("scenario.measurements", report.records["emitted"], unit="records")
        exact("ledger.ingested", ledger.ingested)
        exact("ledger.processed", ledger.processed)
        exact("ledger.dropped", ledger.dropped)
        exact("ledger.deadlettered", ledger.deadlettered)
        exact("ledger.balance", ledger.balance)
        exact("shard.ledger.shed", ledger.shed)
        exact("shard.ledger.lost_at_crash", ledger.lost_at_crash)
        exact("shard.rerouted", report.rerouted_packets, unit="packets")
        exact("shard.restarts", report.restarts, unit="restarts")
        for klass in sorted(report.shed_by_class):
            exact(f"shard.shed.{klass}", report.shed_by_class[klass])
        exact(
            "shard.records.delivered",
            report.records["delivered"],
            unit="records",
        )
        for name in sorted(report.shards):
            entry = report.shards[name]
            exact(f"shard.{name}.dispatched", entry["dispatched"])
            exact(f"shard.{name}.acked", entry["acked"])
            exact(f"shard.{name}.lost_at_crash", entry["lost_at_crash"])
            exact(f"shard.{name}.restarts", entry["restarts"])

        checks.append(
            Check(
                "shard-ledger-conserves",
                ledger.ok,
                str(ledger) if not ledger.ok else "",
            )
        )
        checks.append(
            Check(
                "shard-reconciliation",
                all(ok for _, ok, _ in report.reconciliation),
                "; ".join(report.failed_checks()),
            )
        )
        if shard.kill_shard is not None:
            victim = report.shards.get(f"shard-{shard.kill_shard}", {})
            checks.append(
                Check(
                    "shard-recovered",
                    victim.get("restarts", 0) >= 1
                    and victim.get("state") == "drained",
                    f"victim state={victim.get('state')!r} "
                    f"restarts={victim.get('restarts')}",
                )
            )
            checks.append(
                Check(
                    "crash-was-charged",
                    ledger.lost_at_crash > 0,
                    f"lost_at_crash={ledger.lost_at_crash}",
                )
            )

    return ScenarioResult(
        spec=spec,
        seed=run_seed,
        resultset=resultset,
        events=[],
        checks=checks,
    )
