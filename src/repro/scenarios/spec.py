"""The scenario spec: one operational episode as a document.

A spec composes four orthogonal axes, mirroring how the paper's
deployment stories are told ("flash crowd at the diurnal peak, over a
lossy message bus, with the nightly firewall anomaly"):

* **traffic** — the background workload shape fed to
  :class:`repro.traffic.generator.TrafficGenerator`: duration, rate,
  diurnal or flat load, the virtual time of day the tap starts
  watching, behavioural fractions (scans, RSTs, IPv6, exchange depth).
* **faults** — adverse conditions: a registered
  :data:`repro.faults.profiles.PROFILES` name plus optional inline
  rate overrides (``mq_drop_rate = 0.1``) that derive an anonymous
  profile from it.
* **anomalies** — a schedule of timed windows on the virtual clock,
  each building one of the paper-episode injectors (firewall glitch /
  SYN flood / connection surge).
* **stack** — how much of the dataflow to assemble (queues, analytics
  workers, top-k, frontend buffering).

Plus a default ``seed``, and ``expect``: the anomaly-event counts the
schedule is supposed to trigger, which the runner gates on. Specs are
plain data — loadable from TOML or JSON, round-trippable through
:meth:`ScenarioSpec.to_dict`, and overridable with dotted paths
(``traffic.rate=100``) for grid sweeps.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.profiles import FaultProfile, get_profile

NS_PER_S = 1_000_000_000
NS_PER_HOUR = 3600 * NS_PER_S

#: Anomaly kinds the schedule can place, and the detector-event kinds
#: each one is expected to trigger (see ``ScenarioSpec.expect``).
ANOMALY_KINDS = ("firewall-glitch", "syn-flood", "connection-surge", "ddos-ramp")

#: Detector event kinds (``repro.anomaly``) a spec may expect.
EVENT_KINDS = (
    "latency-spike",
    "syn-flood",
    "connection-surge",
    "path-drift",
)


class SpecError(ValueError):
    """A scenario document failed validation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class TrafficSpec:
    """The background workload axis."""

    duration_s: float = 30.0
    rate: float = 40.0
    tap_city: str = "Auckland"
    diurnal: bool = False
    #: Virtual time of day the capture starts (hours since midnight) —
    #: what anchors "nightly" windows without simulating a whole day.
    start_hour: float = 0.0
    handshake_only_fraction: float = 0.02
    rst_fraction: float = 0.01
    ipv6_fraction: float = 0.0
    max_data_exchanges: int = 3

    def __post_init__(self):
        _require(self.duration_s > 0, "traffic.duration_s must be positive")
        _require(self.rate > 0, "traffic.rate must be positive")
        _require(
            0.0 <= self.start_hour < 24.0,
            "traffic.start_hour must be within [0, 24)",
        )

    @property
    def start_ns(self) -> int:
        return int(self.start_hour * NS_PER_HOUR)

    @property
    def duration_ns(self) -> int:
        return int(self.duration_s * NS_PER_S)


@dataclass(frozen=True)
class FaultSpec:
    """The adverse-conditions axis: named profile + inline overrides."""

    profile: str = "clean"
    overrides: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        base = get_profile(self.profile)  # validates the name
        valid = {spec.name for spec in dataclasses.fields(base)}
        for key in self.overrides:
            _require(
                key in valid and key not in ("name", "description"),
                f"faults.overrides.{key} is not a FaultProfile rate",
            )

    def resolve(self) -> FaultProfile:
        """The effective profile (anonymous derivation if overridden)."""
        base = get_profile(self.profile)
        if not self.overrides:
            return base
        decorated = ", ".join(
            f"{key}={value}" for key, value in sorted(self.overrides.items())
        )
        return dataclasses.replace(
            base,
            name=f"{base.name}+overrides",
            description=f"{base.description} [{decorated}]",
            **self.overrides,
        )

    @property
    def active(self) -> bool:
        """Whether the resolved profile injects anything at all."""
        return bool(self.resolve().active_faults())


@dataclass(frozen=True)
class AnomalyWindowSpec:
    """One timed episode window on the virtual clock.

    ``at_s`` is relative to the start of the capture (so a spec stays
    valid when ``traffic.start_hour`` moves), except for the firewall
    glitch, whose window is anchored to *time of day* via
    ``window_start_hour`` — that is the episode: the update fires at
    the same wall hour every night, not N seconds into a capture.
    """

    kind: str
    at_s: float = 0.0
    duration_s: float = 10.0
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        _require(
            self.kind in ANOMALY_KINDS,
            f"unknown anomaly kind {self.kind!r}; choose from {ANOMALY_KINDS}",
        )
        _require(self.duration_s > 0, "anomaly duration_s must be positive")
        _require(self.at_s >= 0, "anomaly at_s cannot be negative")

    def build_injector(self, traffic: TrafficSpec):
        """The concrete :class:`repro.traffic.generator.FlowInjector`."""
        # Imported here: repro.traffic.scenarios pulls in the geo
        # catalog, which spec parsing does not need.
        from repro.traffic.scenarios import (
            ConnectionSurgeInjector,
            DdosRampInjector,
            FirewallGlitchInjector,
            SynFloodInjector,
        )

        params = dict(self.params)
        start_ns = traffic.start_ns + int(self.at_s * NS_PER_S)
        duration_ns = int(self.duration_s * NS_PER_S)
        if self.kind == "firewall-glitch":
            window_start_hour = float(
                params.pop("window_start_hour", traffic.start_hour + self.at_s / 3600.0)
            )
            return FirewallGlitchInjector(
                window_start_offset_ns=int(window_start_hour * NS_PER_HOUR),
                window_ns=duration_ns,
                extra_delay_ms=float(params.pop("extra_delay_ms", 4000.0)),
                **params,
            )
        if self.kind == "ddos-ramp":
            return DdosRampInjector(
                ramp_start_ns=start_ns,
                ramp_duration_ns=duration_ns,
                peak_rate_per_s=float(params.pop("peak_rate_per_s", 400.0)),
                target_city=str(params.pop("target_city", "Auckland")),
                target_port=int(params.pop("target_port", 443)),
                data_exchanges=int(params.pop("data_exchanges", 8)),
                response_bytes=int(params.pop("response_bytes", 1400)),
                **params,
            )
        if self.kind == "syn-flood":
            return SynFloodInjector(
                flood_start_ns=start_ns,
                flood_duration_ns=duration_ns,
                rate_per_s=float(params.pop("rate_per_s", 2000.0)),
                target_city=str(params.pop("target_city", "Auckland")),
                target_port=int(params.pop("target_port", 443)),
                **params,
            )
        return ConnectionSurgeInjector(
            surge_start_ns=start_ns,
            surge_duration_ns=duration_ns,
            rate_per_s=float(params.pop("rate_per_s", 300.0)),
            src_city=str(params.pop("src_city", "Wellington")),
            dst_city=str(params.pop("dst_city", "Los Angeles")),
            **params,
        )


@dataclass(frozen=True)
class StackSpec:
    """How much of the dataflow the run assembles.

    ``queue_capacity`` shrinks the rx rings so an overload scenario
    can actually pressure them; ``feed_window_ms`` switches feeding
    from fixed-size batches to virtual-time windows, so a traffic ramp
    translates into growing per-batch burst sizes — the load signal
    watermark sensors react to.
    """

    queues: int = 2
    analytics_workers: int = 4
    frontend_hwm: int = 1 << 20
    topk: Optional[int] = None
    queue_capacity: Optional[int] = None
    feed_window_ms: Optional[float] = None

    def __post_init__(self):
        _require(self.queues >= 1, "stack.queues must be at least 1")
        _require(
            self.analytics_workers >= 1,
            "stack.analytics_workers must be at least 1",
        )
        if self.queue_capacity is not None:
            _require(
                self.queue_capacity >= 8,
                "stack.queue_capacity must be at least 8",
            )
        if self.feed_window_ms is not None:
            _require(
                self.feed_window_ms > 0,
                "stack.feed_window_ms must be positive",
            )


@dataclass(frozen=True)
class OverloadSpec:
    """The backpressure axis: the overload controller's knobs plus the
    scenario's shed-ratio gates (checked by the runner when set)."""

    enabled: bool = False
    low: float = 0.5
    high: float = 0.85
    up_dwell_ms: float = 50.0
    down_dwell_ms: float = 250.0
    sampled_modulus: int = 8
    snap_len: int = 256
    #: Gate: handshake-class frames shed anywhere must stay under this
    #: fraction of handshake frames offered (None = no gate).
    handshake_shed_max_ratio: Optional[float] = None
    #: Gate: payload-class frames shed must exceed this fraction of
    #: payload frames offered (None = no gate).
    payload_shed_min_ratio: Optional[float] = None

    def __post_init__(self):
        _require(
            0.0 <= self.low < self.high <= 1.0,
            "overload watermarks need 0 <= low < high <= 1",
        )
        _require(self.up_dwell_ms >= 0, "overload.up_dwell_ms cannot be negative")
        _require(
            self.down_dwell_ms >= 0, "overload.down_dwell_ms cannot be negative"
        )
        _require(
            self.sampled_modulus >= 1, "overload.sampled_modulus must be >= 1"
        )
        for name in ("handshake_shed_max_ratio", "payload_shed_min_ratio"):
            value = getattr(self, name)
            if value is not None:
                _require(
                    0.0 <= value <= 1.0, f"overload.{name} must be in [0, 1]"
                )


@dataclass(frozen=True)
class ShardScenarioSpec:
    """The process-topology axis (``repro.shard``).

    ``shards > 0`` runs the episode through
    :class:`repro.shard.ShardedRuntime` — real worker processes over
    pipe transports — instead of the in-process stack, optionally
    SIGKILLing one shard mid-run to exercise the recovery path. The
    run is deterministic (lockstep dispatch, virtual-round rejoin), so
    its ledger and reconciliation metrics gate byte-exact.
    """

    shards: int = 0
    policy: str = "protect-handshakes"
    analytics: str = "none"
    batch_size: int = 64
    kill_shard: Optional[int] = None
    kill_at_batch: Optional[int] = None
    restart_delay_batches: int = 2
    checkpoint_every_batches: int = 4
    max_restarts: int = 3
    durable: bool = True

    def __post_init__(self):
        _require(self.shards >= 0, "shard.shards cannot be negative")
        _require(
            self.policy in ("protect-handshakes", "reroute-all"),
            f"shard.policy {self.policy!r} must be "
            "'protect-handshakes' or 'reroute-all'",
        )
        _require(
            self.analytics in ("none", "parent", "process"),
            f"shard.analytics {self.analytics!r} must be "
            "'none', 'parent' or 'process'",
        )
        _require(self.batch_size >= 1, "shard.batch_size must be positive")
        _require(
            (self.kill_shard is None) == (self.kill_at_batch is None),
            "shard.kill_shard and shard.kill_at_batch come together",
        )
        if self.kill_shard is not None:
            _require(
                0 <= self.kill_shard < max(self.shards, 1),
                "shard.kill_shard must name one of the shards",
            )
            _require(
                self.kill_at_batch >= 1,
                "shard.kill_at_batch must be at least 1",
            )
        _require(
            self.restart_delay_batches >= 1,
            "shard.restart_delay_batches must be at least 1",
        )
        _require(
            self.checkpoint_every_batches >= 1,
            "shard.checkpoint_every_batches must be at least 1",
        )
        _require(self.max_restarts >= 0, "shard.max_restarts cannot be negative")

    @property
    def enabled(self) -> bool:
        return self.shards > 0


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, runnable, comparable operational episode."""

    name: str
    description: str = ""
    seed: int = 7
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    anomalies: Tuple[AnomalyWindowSpec, ...] = ()
    stack: StackSpec = field(default_factory=StackSpec)
    overload: OverloadSpec = field(default_factory=OverloadSpec)
    shard: ShardScenarioSpec = field(default_factory=ShardScenarioSpec)
    #: Expected anomaly-event counts: kind -> {"min": n} and/or
    #: {"max": n}. The runner fails the correctness gate when the
    #: detectors land outside the band.
    expect: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def __post_init__(self):
        _require(bool(self.name), "scenario name cannot be empty")
        _require(
            all(ch.isalnum() or ch in "-_." for ch in self.name),
            f"scenario name {self.name!r} must be filesystem-safe "
            "(alphanumerics, '-', '_', '.')",
        )
        for kind, band in self.expect.items():
            _require(
                kind in EVENT_KINDS,
                f"expect.{kind}: unknown event kind; choose from {EVENT_KINDS}",
            )
            _require(
                set(band) <= {"min", "max"},
                f"expect.{kind} keys must be 'min'/'max'",
            )

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """The document form (what ``ruru scenario show`` prints)."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "traffic": dataclasses.asdict(self.traffic),
            "faults": dataclasses.asdict(self.faults),
            "anomalies": [dataclasses.asdict(a) for a in self.anomalies],
            "stack": dataclasses.asdict(self.stack),
            "overload": dataclasses.asdict(self.overload),
            "shard": dataclasses.asdict(self.shard),
            "expect": {k: dict(v) for k, v in self.expect.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        _require(isinstance(data, dict), "scenario document must be a table")
        known = {
            "name", "description", "seed", "traffic", "faults",
            "anomalies", "stack", "overload", "shard", "expect",
        }
        unknown = set(data) - known
        _require(not unknown, f"unknown scenario keys: {sorted(unknown)}")
        try:
            traffic = TrafficSpec(**dict(data.get("traffic", {})))
            faults = FaultSpec(**dict(data.get("faults", {})))
            stack = StackSpec(**dict(data.get("stack", {})))
            overload = OverloadSpec(**dict(data.get("overload", {})))
            shard = ShardScenarioSpec(**dict(data.get("shard", {})))
            anomalies = tuple(
                AnomalyWindowSpec(**dict(entry))
                for entry in data.get("anomalies", ())
            )
        except TypeError as exc:
            raise SpecError(f"bad scenario field: {exc}") from None
        return cls(
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
            seed=int(data.get("seed", 7)),
            traffic=traffic,
            faults=faults,
            anomalies=anomalies,
            stack=stack,
            overload=overload,
            shard=shard,
            expect={
                str(kind): {str(k): int(v) for k, v in dict(band).items()}
                for kind, band in dict(data.get("expect", {})).items()
            },
        )


def load_scenario_file(path: str) -> ScenarioSpec:
    """Parse one spec from a ``.toml`` or ``.json`` file."""
    if str(path).endswith(".json"):
        with open(path, "r", encoding="utf-8") as handle:
            return ScenarioSpec.from_dict(json.load(handle))
    import tomllib

    with open(path, "rb") as handle:
        return ScenarioSpec.from_dict(tomllib.load(handle))


def apply_overrides(spec: ScenarioSpec, overrides: Dict[str, object]) -> ScenarioSpec:
    """A new spec with dotted-path *overrides* applied.

    ``{"traffic.rate": 100, "faults.overrides.mq_drop_rate": 0.1}``
    — the grid runner's config axis. Values land in the document form,
    so every override re-validates through :meth:`ScenarioSpec.from_dict`.
    """
    if not overrides:
        return spec
    document = spec.to_dict()
    for path, value in overrides.items():
        parts = str(path).split(".")
        node = document
        for part in parts[:-1]:
            _require(
                isinstance(node, dict),
                f"override path {path!r} walks through a non-table",
            )
            node = node.setdefault(part, {})
        _require(isinstance(node, dict), f"override path {path!r} is invalid")
        node[parts[-1]] = value
    return ScenarioSpec.from_dict(document)


def parse_override_args(pairs: List[str]) -> Dict[str, object]:
    """CLI ``key=value`` pairs into a typed overrides dict.

    Values parse as JSON when possible (numbers, booleans), else stay
    strings — so ``--set traffic.rate=100 --set traffic.diurnal=true``
    works without quoting ceremony.
    """
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        _require(bool(sep), f"override {pair!r} must look like key=value")
        try:
            overrides[key.strip()] = json.loads(raw)
        except ValueError:
            overrides[key.strip()] = raw
    return overrides
