"""The TSDB's unit of ingest: a measurement point.

Matches Influx's data model: a measurement name, indexed string tags,
unindexed numeric fields, and a nanosecond timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

FieldValue = Union[int, float]


@dataclass(frozen=True)
class Point:
    """One sample.

    Attributes:
        measurement: series family, e.g. ``"latency"``.
        tags: indexed dimensions, e.g. ``{"src_country": "NZ"}``.
        fields: the sampled values, e.g. ``{"total_ms": 148.2}``.
        timestamp_ns: sample time in nanoseconds.
    """

    measurement: str
    timestamp_ns: int
    tags: Dict[str, str] = field(default_factory=dict)
    fields: Dict[str, FieldValue] = field(default_factory=dict)

    def __post_init__(self):
        if not self.measurement:
            raise ValueError("measurement name cannot be empty")
        if not self.fields:
            raise ValueError("a point needs at least one field")
        for key, value in self.fields.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeError(f"field {key!r} must be numeric, got {type(value).__name__}")

    def series_key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        """The (measurement, sorted-tagset) identity of this point's series."""
        return (self.measurement, tuple(sorted(self.tags.items())))
