"""Aggregation functions for query windows.

The Grafana panels in the paper show "min, max, median, mean … for a
required time interval"; these are those reducers, plus the extras a
dashboard inevitably grows (count, stddev, percentiles, spread).
Every function takes a non-empty list of numbers; empty windows are
the query layer's concern and never reach here.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

Aggregator = Callable[[Sequence[float]], float]


def agg_count(values: Sequence[float]) -> float:
    return float(len(values))


def agg_sum(values: Sequence[float]) -> float:
    return float(sum(values))


def agg_min(values: Sequence[float]) -> float:
    return float(min(values))


def agg_max(values: Sequence[float]) -> float:
    return float(max(values))


def agg_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def agg_median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def agg_stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for a single sample)."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def agg_first(values: Sequence[float]) -> float:
    return float(values[0])


def agg_last(values: Sequence[float]) -> float:
    return float(values[-1])


def agg_spread(values: Sequence[float]) -> float:
    """max − min; Influx's SPREAD()."""
    return float(max(values) - min(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} out of [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return float(ordered[lower])
    fraction = rank - lower
    # The low + (high-low)*f form is exact when both neighbours are
    # equal, keeping results within [min, max] under floating point.
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def make_percentile(q: float) -> Aggregator:
    """An aggregator computing the q-th percentile."""
    def agg(values: Sequence[float]) -> float:
        return percentile(values, q)
    agg.__name__ = f"p{q:g}"
    return agg


AGGREGATORS: Dict[str, Aggregator] = {
    "count": agg_count,
    "sum": agg_sum,
    "min": agg_min,
    "max": agg_max,
    "mean": agg_mean,
    "median": agg_median,
    "stddev": agg_stddev,
    "first": agg_first,
    "last": agg_last,
    "spread": agg_spread,
    "p95": make_percentile(95.0),
    "p99": make_percentile(99.0),
}


def resolve(name: str) -> Aggregator:
    """Look up an aggregator by name.

    Accepts ``"pNN"`` / ``"pNN.N"`` for arbitrary percentiles.
    """
    aggregator = AGGREGATORS.get(name)
    if aggregator is not None:
        return aggregator
    if name.startswith("p"):
        try:
            q = float(name[1:])
        except ValueError:
            pass
        else:
            return make_percentile(q)
    raise KeyError(f"unknown aggregator {name!r}")
