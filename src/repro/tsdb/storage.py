"""The series map plus the inverted tag index.

The paper relies on "InfluxDB tak[ing] care of indexing data on
geo-location and AS information"; this is that index: for every
measurement, ``tag key → tag value → set of series``, so a dashboard
filter like ``src_country = 'NZ'`` touches only matching series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.tsdb.point import Point
from repro.tsdb.series import Series

SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class SeriesStorage:
    """All series of one database, with tag-index lookups."""

    def __init__(self):
        self._series: Dict[SeriesKey, Series] = {}
        # measurement -> tag key -> tag value -> series keys
        self._tag_index: Dict[str, Dict[str, Dict[str, Set[SeriesKey]]]] = {}
        self._by_measurement: Dict[str, Set[SeriesKey]] = {}
        self.points_written = 0

    def write(self, point: Point) -> Series:
        """Route a point to its series, creating and indexing it if new."""
        key = point.series_key()
        series = self._series.get(key)
        if series is None:
            series = Series(point.measurement, key[1])
            self._series[key] = series
            self._by_measurement.setdefault(point.measurement, set()).add(key)
            index = self._tag_index.setdefault(point.measurement, {})
            for tag_key, tag_value in key[1]:
                index.setdefault(tag_key, {}).setdefault(tag_value, set()).add(key)
        series.append(point)
        self.points_written += 1
        return series

    def measurements(self) -> List[str]:
        """All measurement names, sorted."""
        return sorted(self._by_measurement)

    def series_for(self, measurement: str) -> List[Series]:
        """Every series of a measurement."""
        keys = self._by_measurement.get(measurement, set())
        return [self._series[key] for key in sorted(keys)]

    def tag_values(self, measurement: str, tag_key: str) -> List[str]:
        """Distinct values of *tag_key* (``SHOW TAG VALUES``)."""
        index = self._tag_index.get(measurement, {})
        return sorted(index.get(tag_key, {}))

    def select_series(
        self, measurement: str, tag_filters: Optional[Dict[str, List[str]]] = None
    ) -> List[Series]:
        """Series matching every filter (each filter: key ∈ values).

        Uses the inverted index: intersect the per-(key, value) series
        sets rather than scanning all series.
        """
        all_keys = self._by_measurement.get(measurement)
        if not all_keys:
            return []
        if not tag_filters:
            return [self._series[key] for key in sorted(all_keys)]

        index = self._tag_index.get(measurement, {})
        candidate: Optional[Set[SeriesKey]] = None
        for tag_key, wanted_values in tag_filters.items():
            by_value = index.get(tag_key, {})
            matching: Set[SeriesKey] = set()
            for value in wanted_values:
                matching |= by_value.get(value, set())
            candidate = matching if candidate is None else candidate & matching
            if not candidate:
                return []
        assert candidate is not None
        return [self._series[key] for key in sorted(candidate)]

    def total_points(self) -> int:
        """Points across all series currently retained."""
        return sum(len(series) for series in self._series.values())

    def series_count(self) -> int:
        return len(self._series)

    def drop_empty(self) -> int:
        """Remove series emptied by retention; returns how many."""
        empty = [key for key, series in self._series.items() if not len(series)]
        for key in empty:
            measurement = key[0]
            del self._series[key]
            self._by_measurement[measurement].discard(key)
            index = self._tag_index.get(measurement, {})
            for tag_key, tag_value in key[1]:
                index.get(tag_key, {}).get(tag_value, set()).discard(key)
        return len(empty)
