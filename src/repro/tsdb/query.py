"""Query model and executor.

The shape mirrors the InfluxQL subset the paper's dashboards need::

    SELECT mean(total_ms) FROM latency
    WHERE src_country = 'NZ' AND time >= t0 AND time < t1
    GROUP BY dst_country, time(5m)

expressed as a :class:`Query` and executed against a
:class:`~repro.tsdb.storage.SeriesStorage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tsdb.functions import resolve
from repro.tsdb.storage import SeriesStorage

GroupKey = Tuple[Tuple[str, str], ...]


class QueryError(ValueError):
    """Raised for malformed queries."""


@dataclass
class Query:
    """A declarative aggregation query.

    Attributes:
        measurement: series family to read.
        field: which field to aggregate.
        aggregator: name resolved via :func:`repro.tsdb.functions.resolve`.
        start_ns / end_ns: half-open time range [start, end); None = open.
        tag_filters: ``{tag_key: [accepted values...]}`` — series must
            match every key (OR within a key, AND across keys).
        group_by_tags: split results by these tag values.
        group_by_time_ns: window width; None aggregates the whole range.
        fill: for empty time windows — ``"none"`` drops them (default),
            ``"zero"`` emits 0.0, ``"previous"`` carries forward.
    """

    measurement: str
    field: str
    aggregator: str = "mean"
    start_ns: Optional[int] = None
    end_ns: Optional[int] = None
    tag_filters: Dict[str, List[str]] = field(default_factory=dict)
    group_by_tags: List[str] = field(default_factory=list)
    group_by_time_ns: Optional[int] = None
    fill: str = "none"

    def validate(self) -> None:
        if not self.measurement or not self.field:
            raise QueryError("measurement and field are required")
        if self.group_by_time_ns is not None and self.group_by_time_ns <= 0:
            raise QueryError("group_by_time_ns must be positive")
        if self.fill not in ("none", "zero", "previous"):
            raise QueryError(f"unknown fill mode {self.fill!r}")
        if (
            self.start_ns is not None
            and self.end_ns is not None
            and self.end_ns < self.start_ns
        ):
            raise QueryError("query range ends before it starts")
        resolve(self.aggregator)  # raises KeyError for unknown names


@dataclass
class QueryResult:
    """Aggregates per group: ``{group_key: [(window_start_ns, value)]}``.

    For ungrouped/unwindowed queries the single group key is ``()`` and
    the single window start is the query start (or 0).
    """

    query: Query
    groups: Dict[GroupKey, List[Tuple[int, float]]] = field(default_factory=dict)

    def scalar(self) -> Optional[float]:
        """The single value of an ungrouped, unwindowed query."""
        if len(self.groups) != 1:
            return None
        rows = next(iter(self.groups.values()))
        if len(rows) != 1:
            return None
        return rows[0][1]

    def group(self, **tags: str) -> List[Tuple[int, float]]:
        """Rows for the group with exactly these tag values."""
        key = tuple(sorted(tags.items()))
        return self.groups.get(key, [])

    def group_keys(self) -> List[GroupKey]:
        return sorted(self.groups)

    def is_empty(self) -> bool:
        return not self.groups


def execute(storage: SeriesStorage, query: Query) -> QueryResult:
    """Run *query* against *storage*."""
    query.validate()
    aggregator = resolve(query.aggregator)
    series_list = storage.select_series(query.measurement, query.tag_filters)

    # Collect (timestamp, value) samples per group.
    samples: Dict[GroupKey, List[Tuple[int, float]]] = {}
    for series in series_list:
        group_key: GroupKey = tuple(
            (tag, series.tags.get(tag, "")) for tag in sorted(query.group_by_tags)
        )
        rows = series.values(query.field, query.start_ns, query.end_ns)
        if rows:
            samples.setdefault(group_key, []).extend(rows)

    result = QueryResult(query=query)
    for group_key, rows in samples.items():
        rows.sort(key=lambda r: r[0])
        if query.group_by_time_ns is None:
            values = [value for _, value in rows]
            window_start = query.start_ns if query.start_ns is not None else rows[0][0]
            result.groups[group_key] = [(window_start, aggregator(values))]
            continue
        result.groups[group_key] = _windowed(
            rows,
            query.group_by_time_ns,
            query.start_ns,
            query.end_ns,
            aggregator,
            query.fill,
        )
    return result


def _windowed(
    rows: List[Tuple[int, float]],
    interval_ns: int,
    start_ns: Optional[int],
    end_ns: Optional[int],
    aggregator,
    fill: str,
) -> List[Tuple[int, float]]:
    """Aggregate rows into aligned time windows."""
    origin = start_ns if start_ns is not None else (rows[0][0] // interval_ns) * interval_ns
    last_ts = rows[-1][0]
    horizon = end_ns if end_ns is not None else last_ts + 1

    buckets: Dict[int, List[float]] = {}
    for timestamp, value in rows:
        window = origin + ((timestamp - origin) // interval_ns) * interval_ns
        buckets.setdefault(window, []).append(value)

    out: List[Tuple[int, float]] = []
    previous: Optional[float] = None
    window = origin
    while window < horizon:
        values = buckets.get(window)
        if values:
            aggregate = aggregator(values)
            out.append((window, aggregate))
            previous = aggregate
        elif fill == "zero":
            out.append((window, 0.0))
        elif fill == "previous" and previous is not None:
            out.append((window, previous))
        window += interval_ns
    return out
