"""Retention policies and downsampling (continuous queries).

Ruru keeps full-resolution measurements only so long; InfluxDB's
retention policies age raw points out while continuous queries roll
them up into coarser measurements for "long-term storage". Both are
reproduced here and exercised by the TSDB tests and the dashboard
bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.tsdb.functions import resolve
from repro.tsdb.point import Point
from repro.tsdb.storage import SeriesStorage


@dataclass
class RetentionPolicy:
    """Drop points of *measurement* older than *duration_ns*.

    A None measurement applies to every measurement in the store.
    """

    duration_ns: int
    measurement: Optional[str] = None

    def __post_init__(self):
        if self.duration_ns <= 0:
            raise ValueError("retention duration must be positive")

    def enforce(self, storage: SeriesStorage, now_ns: int) -> int:
        """Apply the policy; returns points dropped."""
        cutoff = now_ns - self.duration_ns
        measurements = (
            [self.measurement] if self.measurement else storage.measurements()
        )
        dropped = 0
        for name in measurements:
            for series in storage.series_for(name):
                dropped += series.truncate_before(cutoff)
        storage.drop_empty()
        return dropped


@dataclass
class Downsampler:
    """Roll one measurement's field into a coarser measurement.

    Equivalent to an Influx continuous query::

        SELECT <aggregator>(<field>) INTO <target> FROM <source>
        GROUP BY time(<interval>), *

    Tags are preserved, so downsampled data stays queryable by the
    same geo/AS dimensions.
    """

    source: str
    target: str
    field: str
    aggregator: str = "mean"
    interval_ns: int = 300 * 1_000_000_000  # 5 minutes

    def __post_init__(self):
        if self.interval_ns <= 0:
            raise ValueError("downsample interval must be positive")
        if self.source == self.target:
            raise ValueError("downsampling into the source would recurse")
        resolve(self.aggregator)

    def run(
        self,
        storage: SeriesStorage,
        start_ns: int,
        end_ns: int,
    ) -> List[Point]:
        """Compute rollup points for [start, end) and write them.

        Returns the points written (for assertions in tests).
        """
        aggregator = resolve(self.aggregator)
        written: List[Point] = []
        for series in storage.series_for(self.source):
            rows = series.values(self.field, start_ns, end_ns)
            if not rows:
                continue
            buckets = {}
            for timestamp, value in rows:
                window = start_ns + ((timestamp - start_ns) // self.interval_ns) * self.interval_ns
                buckets.setdefault(window, []).append(value)
            for window in sorted(buckets):
                point = Point(
                    measurement=self.target,
                    timestamp_ns=window,
                    tags=dict(series.tags),
                    fields={self.field: aggregator(buckets[window])},
                )
                storage.write(point)
                written.append(point)
        return written
