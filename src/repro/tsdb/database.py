"""The database facade: what the analytics tier writes to and the
dashboards (and anomaly detectors) query.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.tsdb.line_protocol import format_point, parse_lines
from repro.tsdb.point import Point
from repro.tsdb.query import Query, QueryResult, execute
from repro.tsdb.retention import Downsampler, RetentionPolicy
from repro.tsdb.storage import SeriesStorage


class TimeSeriesDatabase:
    """An in-memory Influx-style database."""

    def __init__(self, name: str = "ruru"):
        self.name = name
        self.storage = SeriesStorage()
        self.retention_policies: List[RetentionPolicy] = []
        self.downsamplers: List[Downsampler] = []

    # -- writes --------------------------------------------------------------

    def write(self, point: Point) -> None:
        """Ingest one point."""
        self.storage.write(point)

    def write_batch(self, points: Iterable[Point]) -> int:
        """Ingest many points; returns the count."""
        count = 0
        for point in points:
            self.storage.write(point)
            count += 1
        return count

    # -- queries ---------------------------------------------------------------

    def query(self, query: Query) -> QueryResult:
        """Execute an aggregation query."""
        return execute(self.storage, query)

    def measurements(self) -> List[str]:
        return self.storage.measurements()

    def tag_values(self, measurement: str, tag_key: str) -> List[str]:
        return self.storage.tag_values(measurement, tag_key)

    def cardinality(self) -> Dict[str, int]:
        """Series counts per measurement (index-size diagnostics)."""
        return {
            name: len(self.storage.series_for(name))
            for name in self.storage.measurements()
        }

    def total_points(self) -> int:
        return self.storage.total_points()

    # -- lifecycle ---------------------------------------------------------------

    def add_retention_policy(self, policy: RetentionPolicy) -> None:
        self.retention_policies.append(policy)

    def add_downsampler(self, downsampler: Downsampler) -> None:
        self.downsamplers.append(downsampler)

    def enforce_retention(self, now_ns: int) -> int:
        """Apply all retention policies; returns points dropped."""
        return sum(policy.enforce(self.storage, now_ns) for policy in self.retention_policies)

    def run_downsamplers(self, start_ns: int, end_ns: int) -> int:
        """Run all continuous queries over [start, end); returns points written."""
        return sum(
            len(downsampler.run(self.storage, start_ns, end_ns))
            for downsampler in self.downsamplers
        )

    # -- import/export -------------------------------------------------------

    def dump_lines(self, measurement: Optional[str] = None) -> Iterable[str]:
        """Export as Influx line protocol (optionally one measurement)."""
        names = [measurement] if measurement else self.measurements()
        for name in names:
            for series in self.storage.series_for(name):
                for field_name in series.fields:
                    for timestamp, value in series.values(field_name):
                        yield format_point(
                            Point(
                                measurement=name,
                                timestamp_ns=timestamp,
                                tags=dict(series.tags),
                                fields={field_name: value},
                            )
                        )

    def load_lines(self, lines: Iterable[str]) -> int:
        """Import line protocol; returns points written."""
        return self.write_batch(parse_lines(lines))
