"""Columnar per-series storage.

One :class:`Series` holds every point of one (measurement, tagset):
a sorted timestamp column plus one value column per field. Range
queries bisect the timestamp column, so a window slice is O(log n +
window) regardless of series length.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.tsdb.point import FieldValue, Point


class Series:
    """Time-ordered samples of one tagset."""

    def __init__(self, measurement: str, tags: Tuple[Tuple[str, str], ...]):
        self.measurement = measurement
        self.tags = dict(tags)
        self._timestamps: List[int] = []
        self._columns: Dict[str, List[Optional[FieldValue]]] = {}

    def __len__(self) -> int:
        return len(self._timestamps)

    @property
    def fields(self) -> List[str]:
        """Field names this series has seen."""
        return list(self._columns)

    def append(self, point: Point) -> None:
        """Add a point; out-of-order timestamps are insert-sorted.

        Fields absent from a given point are padded with None so all
        columns stay aligned with the timestamp column.
        """
        for key in point.fields:
            if key not in self._columns:
                # Backfill a new field for all existing rows.
                self._columns[key] = [None] * len(self._timestamps)

        if not self._timestamps or point.timestamp_ns >= self._timestamps[-1]:
            index = len(self._timestamps)
            self._timestamps.append(point.timestamp_ns)
            for key, column in self._columns.items():
                column.append(point.fields.get(key))
            return

        index = bisect.bisect_right(self._timestamps, point.timestamp_ns)
        self._timestamps.insert(index, point.timestamp_ns)
        for key, column in self._columns.items():
            column.insert(index, point.fields.get(key))

    def window(
        self, start_ns: Optional[int], end_ns: Optional[int]
    ) -> Tuple[int, int]:
        """Index range [lo, hi) of samples with start ≤ t < end."""
        lo = 0 if start_ns is None else bisect.bisect_left(self._timestamps, start_ns)
        hi = (
            len(self._timestamps)
            if end_ns is None
            else bisect.bisect_left(self._timestamps, end_ns)
        )
        return lo, hi

    def values(
        self,
        field: str,
        start_ns: Optional[int] = None,
        end_ns: Optional[int] = None,
    ) -> List[Tuple[int, FieldValue]]:
        """(timestamp, value) pairs of *field* within the window,
        skipping rows where the field is absent.
        """
        column = self._columns.get(field)
        if column is None:
            return []
        lo, hi = self.window(start_ns, end_ns)
        return [
            (self._timestamps[i], column[i])
            for i in range(lo, hi)
            if column[i] is not None
        ]

    def truncate_before(self, cutoff_ns: int) -> int:
        """Drop samples older than *cutoff_ns*; returns how many."""
        index = bisect.bisect_left(self._timestamps, cutoff_ns)
        if not index:
            return 0
        del self._timestamps[:index]
        for column in self._columns.values():
            del column[:index]
        return index

    @property
    def first_timestamp(self) -> Optional[int]:
        return self._timestamps[0] if self._timestamps else None

    @property
    def last_timestamp(self) -> Optional[int]:
        return self._timestamps[-1] if self._timestamps else None
