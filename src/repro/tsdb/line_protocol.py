"""Influx line protocol: ``measurement,tag=v field=1.5 1465839830100400200``.

Implemented for interoperability (dumping a run to a file a real
Influx instance could ingest) and as the TSDB's text serialization in
the CLI. Escaping rules follow the Influx reference: commas, spaces
and equals signs are backslash-escaped in measurement names, tag keys,
tag values, and field keys; integers carry an ``i`` suffix.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.tsdb.point import Point


class LineProtocolError(ValueError):
    """Raised when a line fails to parse."""


_ESCAPES = [("\\", "\\\\"), (",", "\\,"), (" ", "\\ "), ("=", "\\=")]


def _escape(text: str) -> str:
    for raw, escaped in _ESCAPES:
        text = text.replace(raw, escaped)
    return text


def _unescape_split(text: str, separators: str) -> List[str]:
    """Split on unescaped separators, then strip the backslashes."""
    parts: List[str] = []
    current: List[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            current.append(text[i + 1])
            i += 2
            continue
        if char in separators:
            parts.append("".join(current))
            current = []
            i += 1
            continue
        current.append(char)
        i += 1
    parts.append("".join(current))
    return parts


def _split_top(text: str, separator: str) -> List[str]:
    """Split on unescaped *separator*, keeping escapes intact."""
    parts: List[str] = []
    current: List[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            current.append(char)
            current.append(text[i + 1])
            i += 2
            continue
        if char == separator:
            parts.append("".join(current))
            current = []
            i += 1
            continue
        current.append(char)
        i += 1
    parts.append("".join(current))
    return parts


def format_point(point: Point) -> str:
    """Serialize one point to a line."""
    head = _escape(point.measurement)
    for key in sorted(point.tags):
        head += f",{_escape(key)}={_escape(point.tags[key])}"
    field_parts = []
    for key in sorted(point.fields):
        value = point.fields[key]
        if isinstance(value, int):
            field_parts.append(f"{_escape(key)}={value}i")
        else:
            field_parts.append(f"{_escape(key)}={value!r}")
    return f"{head} {','.join(field_parts)} {point.timestamp_ns}"


def parse_line(line: str) -> Point:
    """Parse one line back into a :class:`Point`."""
    line = line.strip()
    if not line or line.startswith("#"):
        raise LineProtocolError("empty or comment line")
    sections = _split_top(line, " ")
    sections = [s for s in sections if s]
    if len(sections) < 2:
        raise LineProtocolError(f"need measurement and fields: {line!r}")
    if len(sections) > 3:
        raise LineProtocolError(f"too many sections: {line!r}")

    head_parts = _split_top(sections[0], ",")
    measurement = _unescape_split(head_parts[0], "")[0]
    tags = {}
    for tag_text in head_parts[1:]:
        pieces = _unescape_split(tag_text, "=")
        if len(pieces) != 2:
            raise LineProtocolError(f"bad tag {tag_text!r}")
        tags[pieces[0]] = pieces[1]

    fields = {}
    for field_text in _split_top(sections[1], ","):
        pieces = _split_top(field_text, "=")
        if len(pieces) != 2:
            raise LineProtocolError(f"bad field {field_text!r}")
        key = _unescape_split(pieces[0], "")[0]
        raw_value = pieces[1]
        try:
            if raw_value.endswith("i"):
                fields[key] = int(raw_value[:-1])
            else:
                fields[key] = float(raw_value)
        except ValueError as exc:
            raise LineProtocolError(f"bad field value {raw_value!r}") from exc

    if len(sections) == 3:
        try:
            timestamp_ns = int(sections[2])
        except ValueError as exc:
            raise LineProtocolError(f"bad timestamp {sections[2]!r}") from exc
    else:
        timestamp_ns = 0

    return Point(
        measurement=measurement, timestamp_ns=timestamp_ns, tags=tags, fields=fields
    )


def parse_lines(lines: Iterable[str]) -> Iterator[Point]:
    """Parse many lines, skipping blanks and ``#`` comments."""
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_line(stripped)
