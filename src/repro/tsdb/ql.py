"""A text query language — the InfluxQL subset Grafana panels emit.

Grafana talks to InfluxDB in InfluxQL; reproducing that surface makes
the dashboard layer scriptable the way the paper's was::

    SELECT mean(total_ms) FROM latency
    WHERE src_country = 'NZ' AND time >= 0s AND time < 15m
    GROUP BY dst_country, time(10s) FILL(zero)

:func:`parse_query` compiles such text into a
:class:`repro.tsdb.query.Query`. Supported grammar:

* ``SELECT <agg>(<field>) FROM <measurement>`` — any aggregator
  :func:`repro.tsdb.functions.resolve` accepts (including ``pNN``).
* ``WHERE`` conjunctions of: ``tag = 'value'``,
  ``tag IN ('a', 'b')``, ``time >= <t>``, ``time < <t>`` where
  ``<t>`` is a bare integer (nanoseconds) or a duration literal
  (``10s``, ``5m``, ``2h``, ``250ms``, ``100us``, ``7ns``).
* ``GROUP BY`` a comma list of tag names and/or ``time(<dur>)``.
* ``FILL(none|zero|previous)``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.tsdb.query import Query, QueryError

_DURATION_UNITS = {
    "ns": 1,
    "us": 1_000,
    "ms": 1_000_000,
    "s": 1_000_000_000,
    "m": 60 * 1_000_000_000,
    "h": 3600 * 1_000_000_000,
    "d": 24 * 3600 * 1_000_000_000,
}

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']*)'            # single-quoted string
      | [A-Za-z_][A-Za-z0-9_.]*  # identifier / keyword
      | \d+[a-z]*              # number with optional unit suffix
      | !=|>=|<=|=|<|>|\(|\)|,|\*
    )
    """,
    re.VERBOSE,
)


class QLError(QueryError):
    """Raised when the query text cannot be parsed."""


def tokenize(text: str) -> List[str]:
    """Split query text into tokens; raises QLError on junk."""
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].lstrip()
            if not remainder:
                break
            raise QLError(f"cannot tokenize at: {remainder[:20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


def parse_duration(token: str) -> int:
    """``10s`` / ``5m`` / ``250ms`` / bare-int nanoseconds → ns."""
    if token.isdigit():
        return int(token)
    match = re.fullmatch(r"(\d+)([a-z]+)", token)
    if match is None:
        raise QLError(f"bad duration {token!r}")
    value, unit = match.groups()
    scale = _DURATION_UNITS.get(unit)
    if scale is None:
        raise QLError(f"unknown time unit {unit!r} in {token!r}")
    return int(value) * scale


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing --------------------------------------------------

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None:
            raise QLError(
                f"unexpected end of query (wanted {expected or 'more input'})"
            )
        if expected is not None and token.lower() != expected.lower():
            raise QLError(f"expected {expected!r}, got {token!r}")
        self.position += 1
        return token

    def accept(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == keyword.lower():
            self.position += 1
            return True
        return False

    @staticmethod
    def _string(token: str) -> str:
        if len(token) >= 2 and token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        raise QLError(f"expected quoted string, got {token!r}")

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Query:
        self.next("SELECT")
        aggregator = self.next()
        self.next("(")
        field = self.next()
        self.next(")")
        self.next("FROM")
        measurement = self.next()

        query = Query(measurement=measurement, field=field, aggregator=aggregator)

        if self.accept("WHERE"):
            self._parse_where(query)
        if self.accept("GROUP"):
            self.next("BY")
            self._parse_group_by(query)
        if self.accept("FILL"):
            self.next("(")
            query.fill = self.next().lower()
            self.next(")")
        if self.peek() is not None:
            raise QLError(f"trailing input from {self.peek()!r}")
        query.validate()
        return query

    def _parse_where(self, query: Query) -> None:
        while True:
            self._parse_condition(query)
            if not self.accept("AND"):
                break

    def _parse_condition(self, query: Query) -> None:
        name = self.next()
        if name.lower() == "time":
            operator = self.next()
            value = parse_duration(self.next())
            if operator == ">=":
                query.start_ns = value
            elif operator == "<":
                query.end_ns = value
            elif operator == ">":
                query.start_ns = value + 1
            elif operator == "<=":
                query.end_ns = value + 1
            else:
                raise QLError(f"unsupported time operator {operator!r}")
            return
        operator = self.next()
        if operator == "=":
            value = self._string(self.next())
            query.tag_filters.setdefault(name, []).append(value)
        elif operator.lower() == "in":
            self.next("(")
            values = [self._string(self.next())]
            while self.accept(","):
                values.append(self._string(self.next()))
            self.next(")")
            query.tag_filters.setdefault(name, []).extend(values)
        else:
            raise QLError(f"unsupported operator {operator!r} on tag {name!r}")

    def _parse_group_by(self, query: Query) -> None:
        while True:
            term = self.next()
            if term.lower() == "time":
                self.next("(")
                query.group_by_time_ns = parse_duration(self.next())
                self.next(")")
            elif term == "*":
                raise QLError("GROUP BY * is not supported; name the tags")
            else:
                query.group_by_tags.append(term)
            if not self.accept(","):
                break


def parse_query(text: str) -> Query:
    """Compile InfluxQL-subset *text* into a validated :class:`Query`."""
    tokens = tokenize(text)
    if not tokens:
        raise QLError("empty query")
    return _Parser(tokens).parse()


def execute_statement(database, text: str):
    """Execute a statement against a TimeSeriesDatabase.

    Supports the Grafana-facing statement set:

    * ``SELECT ...`` — returns a :class:`~repro.tsdb.query.QueryResult`;
    * ``SHOW MEASUREMENTS`` — returns a list of names;
    * ``SHOW TAG VALUES FROM <m> WITH KEY = <k>`` — returns a list of
      values (what populates dashboard template dropdowns).
    """
    tokens = tokenize(text)
    if not tokens:
        raise QLError("empty statement")
    head = tokens[0].lower()
    if head == "select":
        return database.query(_Parser(tokens).parse())
    if head == "show":
        parser = _Parser(tokens)
        parser.next("SHOW")
        what = parser.next().lower()
        if what == "measurements":
            if parser.peek() is not None:
                raise QLError("SHOW MEASUREMENTS takes no arguments")
            return database.measurements()
        if what == "tag":
            parser.next("VALUES")
            parser.next("FROM")
            measurement = parser.next()
            parser.next("WITH")
            parser.next("KEY")
            parser.next("=")
            key = parser.next()
            if parser.peek() is not None:
                raise QLError(f"trailing input from {parser.peek()!r}")
            return database.tag_values(measurement, key)
        raise QLError(f"unsupported SHOW {what!r}")
    raise QLError(f"unsupported statement {tokens[0]!r}")


def format_duration(ns: int) -> str:
    """Render *ns* with the largest exact unit (``600000000000`` → ``10m``)."""
    if ns == 0:
        return "0"
    for unit in ("d", "h", "m", "s", "ms", "us", "ns"):
        scale = _DURATION_UNITS[unit]
        if ns % scale == 0:
            return f"{ns // scale}{unit}"
    return str(ns)


def format_query(query: Query) -> str:
    """Render a :class:`Query` back to text; inverse of :func:`parse_query`.

    ``parse_query(format_query(q))`` reproduces *q* for any valid
    query (the property tests assert this).
    """
    parts = [f"SELECT {query.aggregator}({query.field}) FROM {query.measurement}"]
    conditions = []
    for tag in sorted(query.tag_filters):
        values = query.tag_filters[tag]
        if len(values) == 1:
            conditions.append(f"{tag} = '{values[0]}'")
        else:
            joined = ", ".join(f"'{value}'" for value in values)
            conditions.append(f"{tag} IN ({joined})")
    if query.start_ns is not None:
        conditions.append(f"time >= {format_duration(query.start_ns)}")
    if query.end_ns is not None:
        conditions.append(f"time < {format_duration(query.end_ns)}")
    if conditions:
        parts.append("WHERE " + " AND ".join(conditions))
    group_terms = list(query.group_by_tags)
    if query.group_by_time_ns is not None:
        group_terms.append(f"time({format_duration(query.group_by_time_ns)})")
    if group_terms:
        parts.append("GROUP BY " + ", ".join(group_terms))
    if query.fill != "none":
        parts.append(f"FILL({query.fill})")
    return " ".join(parts)
