"""In-memory time-series database — the InfluxDB substitute.

Ruru stores geo-enriched measurements in InfluxDB "for long-term
storage", with the Grafana UI issuing aggregation queries (min, max,
median, mean over a required time interval) and "InfluxDB tak[ing]
care of indexing data on geo-location and AS information". This
package reproduces that surface:

* :mod:`repro.tsdb.point` — tagged, timestamped points.
* :mod:`repro.tsdb.line_protocol` — the Influx text wire format.
* :mod:`repro.tsdb.series` — columnar per-series storage with
  time-indexed slicing.
* :mod:`repro.tsdb.storage` — the series map plus an inverted tag
  index (the "indexing on geo-location and AS information").
* :mod:`repro.tsdb.functions` — aggregation functions.
* :mod:`repro.tsdb.query` — a query builder/executor with tag
  filters, group-by-tag, and group-by-time windows.
* :mod:`repro.tsdb.retention` — retention policies and downsampling.
* :mod:`repro.tsdb.database` — the facade the analytics tier writes
  to and dashboards read from.
"""

from repro.tsdb.point import Point
from repro.tsdb.line_protocol import (
    LineProtocolError,
    format_point,
    parse_line,
    parse_lines,
)
from repro.tsdb.series import Series
from repro.tsdb.storage import SeriesStorage
from repro.tsdb.functions import AGGREGATORS, percentile
from repro.tsdb.query import Query, QueryError, QueryResult
from repro.tsdb.ql import QLError, parse_query
from repro.tsdb.retention import RetentionPolicy, Downsampler
from repro.tsdb.database import TimeSeriesDatabase

__all__ = [
    "Point",
    "LineProtocolError",
    "format_point",
    "parse_line",
    "parse_lines",
    "Series",
    "SeriesStorage",
    "AGGREGATORS",
    "percentile",
    "Query",
    "QueryError",
    "QueryResult",
    "QLError",
    "parse_query",
    "RetentionPolicy",
    "Downsampler",
    "TimeSeriesDatabase",
]
