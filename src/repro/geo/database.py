"""Range-based geo database: IP → (country, city, coordinates).

IP2Location ships contiguous, non-overlapping ``[first, last]`` rows;
lookups are a binary search on the sorted range starts. The database
is append-then-freeze: :meth:`GeoDatabase.add_range` collects rows,
the first lookup sorts and validates them.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class GeoRecord:
    """One geo row: where an address range is located."""

    country_code: str
    country: str
    city: str
    lat: float
    lon: float


class RangeOverlapError(ValueError):
    """Raised at freeze time when two ranges overlap."""


class GeoDatabase:
    """Sorted-range IP→geo lookup (one instance per address family).

    >>> db = GeoDatabase()
    >>> db.add_range(ip_to_int("1.0.0.0"), ip_to_int("1.0.0.255"), record)
    >>> db.lookup(ip_to_int("1.0.0.7")) is record
    True
    """

    def __init__(self, name: str = "geo"):
        self.name = name
        self._rows: List[Tuple[int, int, GeoRecord]] = []
        self._starts: List[int] = []
        self._frozen = False
        self.lookups = 0
        self.misses = 0

    def add_range(self, first: int, last: int, record: GeoRecord) -> None:
        """Register ``[first, last]`` (inclusive) as *record*."""
        if self._frozen:
            raise RuntimeError("database is frozen; ranges can no longer be added")
        if last < first:
            raise ValueError(f"range end {last} before start {first}")
        self._rows.append((first, last, record))

    def freeze(self) -> None:
        """Sort and validate; called implicitly by the first lookup."""
        if self._frozen:
            return
        self._rows.sort(key=lambda row: row[0])
        previous_end = -1
        for first, last, _record in self._rows:
            if first <= previous_end:
                raise RangeOverlapError(
                    f"{self.name}: range starting at {first} overlaps previous"
                )
            previous_end = last
        self._starts = [row[0] for row in self._rows]
        self._frozen = True

    def lookup(self, address: int) -> Optional[GeoRecord]:
        """Find the record covering *address*; None when uncovered."""
        if not self._frozen:
            self.freeze()
        self.lookups += 1
        index = bisect.bisect_right(self._starts, address) - 1
        if index >= 0:
            first, last, record = self._rows[index]
            if first <= address <= last:
                return record
        self.misses += 1
        return None

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that found a covering range."""
        if not self.lookups:
            return 0.0
        return 1.0 - self.misses / self.lookups
