"""AS-number database: IP → origin AS, via longest-prefix match.

BGP-derived AS data is prefix-shaped (a /24 carve-out must beat the
covering /16), so this database sits on the radix trie rather than
the geo database's flat ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geo.trie import RadixTrie


@dataclass(frozen=True)
class AsRecord:
    """One origin AS: number and holder name."""

    asn: int
    name: str


class AsnDatabase:
    """LPM IP→AS lookup (one instance per address family)."""

    def __init__(self, width: int = 32):
        self._trie: RadixTrie[AsRecord] = RadixTrie(width=width)
        self.lookups = 0
        self.misses = 0

    def add_prefix(self, prefix: int, prefix_len: int, record: AsRecord) -> None:
        """Announce *prefix*/*prefix_len* as originated by *record*."""
        self._trie.insert(prefix, prefix_len, record)

    def lookup(self, address: int) -> Optional[AsRecord]:
        """Most-specific covering announcement; None if unannounced."""
        self.lookups += 1
        record = self._trie.lookup(address)
        if record is None:
            self.misses += 1
        return record

    def __len__(self) -> int:
        return len(self._trie)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched an announcement."""
        if not self.lookups:
            return 0.0
        return 1.0 - self.misses / self.lookups
