"""Binary radix trie for longest-prefix matching.

The AS database (BGP-table shaped) needs LPM: a /24 announcement must
win over the covering /16. A path-compressed binary trie gives O(W)
lookups (W = address width) independent of table size.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "value", "has_value")

    def __init__(self):
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.value: Optional[V] = None
        self.has_value = False


class RadixTrie(Generic[V]):
    """LPM trie over fixed-width integer keys.

    Args:
        width: address width in bits (32 for IPv4, 128 for IPv6).
    """

    def __init__(self, width: int = 32):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _check_prefix(self, prefix: int, prefix_len: int) -> None:
        if not 0 <= prefix_len <= self.width:
            raise ValueError(f"prefix length {prefix_len} out of [0, {self.width}]")
        if prefix >> self.width:
            raise ValueError(f"prefix wider than {self.width} bits")
        host_bits = self.width - prefix_len
        if host_bits and prefix & ((1 << host_bits) - 1):
            raise ValueError("prefix has bits set below the prefix length")

    def insert(self, prefix: int, prefix_len: int, value: V) -> None:
        """Insert or replace the value at *prefix*/*prefix_len*."""
        self._check_prefix(prefix, prefix_len)
        node = self._root
        for depth in range(prefix_len):
            bit = (prefix >> (self.width - 1 - depth)) & 1
            if bit:
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> Optional[V]:
        """Longest-prefix match for *address*; None if nothing covers it."""
        if address >> self.width:
            raise ValueError(f"address wider than {self.width} bits")
        node = self._root
        best: Optional[V] = node.value if node.has_value else None
        for depth in range(self.width):
            bit = (address >> (self.width - 1 - depth)) & 1
            node = node.one if bit else node.zero
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def lookup_exact(self, prefix: int, prefix_len: int) -> Optional[V]:
        """Value stored at exactly *prefix*/*prefix_len*, or None."""
        self._check_prefix(prefix, prefix_len)
        node = self._root
        for depth in range(prefix_len):
            bit = (prefix >> (self.width - 1 - depth)) & 1
            node = node.one if bit else node.zero
            if node is None:
                return None
        return node.value if node.has_value else None

    def items(self) -> Iterator[Tuple[int, int, V]]:
        """Iterate (prefix, prefix_len, value) in DFS order."""
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, prefix, depth = stack.pop()
            if node.has_value:
                yield (prefix << (self.width - depth), depth, node.value)  # type: ignore[misc]
            if node.one is not None:
                stack.append((node.one, (prefix << 1) | 1, depth + 1))
            if node.zero is not None:
                stack.append((node.zero, prefix << 1, depth + 1))
