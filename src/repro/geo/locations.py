"""City catalog: the coordinate ground truth for geo databases and
traffic endpoints.

The list is weighted toward the paper's deployment — New Zealand
(REANNZ's users) and the US west coast (the far end of the
Auckland–Los Angeles link) — plus enough world cities for the live
map to look like the demo's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class City:
    """A named place with coordinates.

    Attributes:
        name: city name ("Auckland").
        country_code: ISO 3166-1 alpha-2 ("NZ").
        country: full country name.
        lat / lon: decimal degrees.
    """

    name: str
    country_code: str
    country: str
    lat: float
    lon: float


WORLD_CITIES: List[City] = [
    # New Zealand — the internal side of the REANNZ tap.
    City("Auckland", "NZ", "New Zealand", -36.8485, 174.7633),
    City("Wellington", "NZ", "New Zealand", -41.2866, 174.7756),
    City("Christchurch", "NZ", "New Zealand", -43.5321, 172.6362),
    City("Hamilton", "NZ", "New Zealand", -37.7870, 175.2793),
    City("Dunedin", "NZ", "New Zealand", -45.8788, 170.5028),
    City("Palmerston North", "NZ", "New Zealand", -40.3523, 175.6082),
    # United States — the external side (LA is the link's far end).
    City("Los Angeles", "US", "United States", 34.0522, -118.2437),
    City("San Francisco", "US", "United States", 37.7749, -122.4194),
    City("Seattle", "US", "United States", 47.6062, -122.3321),
    City("Denver", "US", "United States", 39.7392, -104.9903),
    City("Chicago", "US", "United States", 41.8781, -87.6298),
    City("Dallas", "US", "United States", 32.7767, -96.7970),
    City("New York", "US", "United States", 40.7128, -74.0060),
    City("Washington", "US", "United States", 38.9072, -77.0369),
    City("Ashburn", "US", "United States", 39.0438, -77.4874),
    City("Miami", "US", "United States", 25.7617, -80.1918),
    # Asia-Pacific transit and peers.
    City("Sydney", "AU", "Australia", -33.8688, 151.2093),
    City("Melbourne", "AU", "Australia", -37.8136, 144.9631),
    City("Brisbane", "AU", "Australia", -27.4698, 153.0251),
    City("Tokyo", "JP", "Japan", 35.6762, 139.6503),
    City("Osaka", "JP", "Japan", 34.6937, 135.5023),
    City("Singapore", "SG", "Singapore", 1.3521, 103.8198),
    City("Hong Kong", "HK", "Hong Kong", 22.3193, 114.1694),
    City("Seoul", "KR", "South Korea", 37.5665, 126.9780),
    City("Taipei", "TW", "Taiwan", 25.0330, 121.5654),
    City("Mumbai", "IN", "India", 19.0760, 72.8777),
    City("Beijing", "CN", "China", 39.9042, 116.4074),
    City("Shanghai", "CN", "China", 31.2304, 121.4737),
    # Europe.
    City("London", "GB", "United Kingdom", 51.5074, -0.1278),
    City("Glasgow", "GB", "United Kingdom", 55.8642, -4.2518),
    City("Amsterdam", "NL", "Netherlands", 52.3676, 4.9041),
    City("Frankfurt", "DE", "Germany", 50.1109, 8.6821),
    City("Paris", "FR", "France", 48.8566, 2.3522),
    City("Stockholm", "SE", "Sweden", 59.3293, 18.0686),
    City("Madrid", "ES", "Spain", 40.4168, -3.7038),
    City("Dublin", "IE", "Ireland", 53.3498, -6.2603),
    # Americas and rest of world.
    City("Toronto", "CA", "Canada", 43.6532, -79.3832),
    City("Vancouver", "CA", "Canada", 49.2827, -123.1207),
    City("Sao Paulo", "BR", "Brazil", -23.5505, -46.6333),
    City("Santiago", "CL", "Chile", -33.4489, -70.6693),
    City("Johannesburg", "ZA", "South Africa", -26.2041, 28.0473),
    City("Suva", "FJ", "Fiji", -18.1248, 178.4501),
]

_BY_NAME: Dict[str, City] = {city.name.lower(): city for city in WORLD_CITIES}


def city_by_name(name: str) -> Optional[City]:
    """Case-insensitive catalog lookup; None when unknown."""
    return _BY_NAME.get(name.lower())


def cities_in_country(country_code: str) -> List[City]:
    """All catalog cities in *country_code*."""
    code = country_code.upper()
    return [city for city in WORLD_CITIES if city.country_code == code]
