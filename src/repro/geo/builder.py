"""Deterministic synthetic geo/AS databases — the IP2Location stand-in.

The builder owns the **address plan** shared by the whole
reproduction: every catalog city gets its own IPv4 /16, carved into
geo rows and AS announcements. The traffic generator draws host
addresses from the same plan, so enrichment in the analytics tier
resolves generated traffic exactly the way IP2Location resolved
REANNZ's real traffic.

The paper quotes "98% country-level accuracy" for IP2Location. That
becomes a knob here: ``country_accuracy`` controls the fraction of geo
rows whose country is deliberately mislabelled (deterministically, by
seed), and experiment E6 measures the achieved accuracy against the
plan's ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.geo.asn import AsnDatabase, AsRecord
from repro.geo.database import GeoDatabase, GeoRecord
from repro.geo.locations import City, WORLD_CITIES
from repro.net.addresses import ip_to_int

DEFAULT_BASE_NETWORK = "20.0.0.0"
DEFAULT_RANGES_PER_CITY = 8


@dataclass
class SyntheticGeoPlan:
    """The address plan: city *i* owns the /16 at ``base + (i << 16)``.

    Each city also gets two provider ASes: the "incumbent" announcing
    the whole /16 and a "carve-out" provider announcing the top /18 —
    which doubles as an LPM-specificity test in the AS database.

    IPv6: city *i* additionally owns the /48 at
    ``ipv6_base | (i << 80)``; hosts are drawn from its low 64 bits.
    """

    cities: Sequence[City] = field(default_factory=lambda: list(WORLD_CITIES))
    base_network: str = DEFAULT_BASE_NETWORK
    asn_base: int = 64500
    ipv6_base: int = 0x20010DB8 << 96  # 2001:db8::/32, carved into /48s

    def __post_init__(self):
        if not self.cities:
            raise ValueError("plan needs at least one city")
        self._base_int = ip_to_int(self.base_network)
        if self._base_int & 0xFFFF:
            raise ValueError("base network must be /16-aligned")
        if self._base_int + (len(self.cities) << 16) > 1 << 32:
            raise ValueError("address plan overflows IPv4 space")
        if self.ipv6_base & ((1 << 96) - 1):
            raise ValueError("ipv6 base must be /32-aligned")

    def city_index(self, city_name: str) -> int:
        """Plan index of *city_name* (exact match)."""
        for index, city in enumerate(self.cities):
            if city.name == city_name:
                return index
        raise KeyError(f"city not in plan: {city_name}")

    def block_start(self, city_index: int) -> int:
        """First address of the city's /16."""
        if not 0 <= city_index < len(self.cities):
            raise IndexError(f"city index {city_index} out of range")
        return self._base_int + (city_index << 16)

    def block_end(self, city_index: int) -> int:
        """Last address of the city's /16."""
        return self.block_start(city_index) + 0xFFFF

    def incumbent_asn(self, city_index: int) -> int:
        """The AS announcing the city's whole /16."""
        return self.asn_base + city_index * 2

    def carveout_asn(self, city_index: int) -> int:
        """The AS announcing the more-specific top /18."""
        return self.asn_base + city_index * 2 + 1

    def random_host(self, city_index: int, rng: random.Random) -> int:
        """Draw a host address inside the city's block (never .0)."""
        return self.block_start(city_index) + rng.randint(1, 0xFFFE)

    def city_of(self, address: int) -> Optional[City]:
        """Ground-truth city for *address*; None if outside the plan."""
        offset = address - self._base_int
        if offset < 0:
            return None
        index = offset >> 16
        if index >= len(self.cities):
            return None
        return self.cities[index]

    def asn_of(self, address: int) -> Optional[int]:
        """Ground-truth origin AS (respecting the /18 carve-out)."""
        city = self.city_of(address)
        if city is None:
            return None
        index = (address - self._base_int) >> 16
        # The top /18 of each /16 (host bits 0xC000..0xFFFF) belongs to
        # the carve-out provider.
        if (address & 0xFFFF) >= 0xC000:
            return self.carveout_asn(index)
        return self.incumbent_asn(index)

    # -- IPv6 side of the plan ---------------------------------------------

    def block6_start(self, city_index: int) -> int:
        """First address of the city's /48."""
        if not 0 <= city_index < len(self.cities):
            raise IndexError(f"city index {city_index} out of range")
        return self.ipv6_base | (city_index << 80)

    def block6_end(self, city_index: int) -> int:
        """Last address of the city's /48."""
        return self.block6_start(city_index) | ((1 << 80) - 1)

    def random_host6(self, city_index: int, rng: random.Random) -> int:
        """A host inside the city's /48 (random low 64 bits, never 0)."""
        return self.block6_start(city_index) | rng.randint(1, (1 << 64) - 1)

    def city_of6(self, address: int) -> Optional[City]:
        """Ground-truth city for an IPv6 *address*."""
        if address >> 96 != self.ipv6_base >> 96:
            return None
        index = (address >> 80) & 0xFFFF
        if index >= len(self.cities):
            return None
        return self.cities[index]

    def asn_of6(self, address: int) -> Optional[int]:
        """Ground-truth origin AS for IPv6 (incumbent owns the /48)."""
        city = self.city_of6(address)
        if city is None:
            return None
        return self.incumbent_asn((address >> 80) & 0xFFFF)


class GeoDbBuilder:
    """Builds (GeoDatabase, AsnDatabase) pairs from a plan.

    Args:
        plan: address plan (a default world plan if omitted).
        country_accuracy: fraction of geo rows with the *correct*
            country; the remainder are mislabelled with another plan
            city's record, modelling IP2Location's 98 % figure.
        ranges_per_city: geo rows per city /16 (real databases split
            blocks finely; more rows also stresses the range index).
        seed: drives which rows get mislabelled.
    """

    def __init__(
        self,
        plan: Optional[SyntheticGeoPlan] = None,
        country_accuracy: float = 0.98,
        ranges_per_city: int = DEFAULT_RANGES_PER_CITY,
        seed: int = 42,
    ):
        if not 0.0 <= country_accuracy <= 1.0:
            raise ValueError("country_accuracy must be within [0, 1]")
        if ranges_per_city <= 0 or 0x10000 % ranges_per_city:
            raise ValueError("ranges_per_city must divide 65536")
        self.plan = plan or SyntheticGeoPlan()
        self.country_accuracy = country_accuracy
        self.ranges_per_city = ranges_per_city
        self.seed = seed
        self.mislabelled_rows = 0

    @staticmethod
    def _record_for(city: City) -> GeoRecord:
        return GeoRecord(
            country_code=city.country_code,
            country=city.country,
            city=city.name,
            lat=city.lat,
            lon=city.lon,
        )

    def build_geo(self) -> GeoDatabase:
        """Construct the range-based geo database."""
        rng = random.Random(self.seed)
        cities = list(self.plan.cities)
        database = GeoDatabase(name="synthetic-geo")
        range_size = 0x10000 // self.ranges_per_city
        self.mislabelled_rows = 0
        for index, city in enumerate(cities):
            start = self.plan.block_start(index)
            for row in range(self.ranges_per_city):
                first = start + row * range_size
                last = first + range_size - 1
                if rng.random() < self.country_accuracy or len(cities) == 1:
                    record = self._record_for(city)
                else:
                    # Mislabel with a different city — crucially one in
                    # a different country where possible, so the error
                    # is visible at country granularity.
                    others = [
                        c for c in cities if c.country_code != city.country_code
                    ] or [c for c in cities if c is not city]
                    record = self._record_for(rng.choice(others))
                    self.mislabelled_rows += 1
                database.add_range(first, last, record)
        database.freeze()
        return database

    def build_asn(self) -> AsnDatabase:
        """Construct the prefix-based AS database."""
        database = AsnDatabase(width=32)
        for index, city in enumerate(self.plan.cities):
            start = self.plan.block_start(index)
            incumbent = AsRecord(
                asn=self.plan.incumbent_asn(index),
                name=f"{city.name} Broadband (AS{self.plan.incumbent_asn(index)})",
            )
            carveout = AsRecord(
                asn=self.plan.carveout_asn(index),
                name=f"{city.name} Research (AS{self.plan.carveout_asn(index)})",
            )
            database.add_prefix(start, 16, incumbent)
            # Top /18 of the block: more specific, must win LPM.
            database.add_prefix(start + 0xC000, 18, carveout)
        return database

    def build(self):
        """Build both IPv4 databases; returns (geo, asn)."""
        return self.build_geo(), self.build_asn()

    def build_geo6(self) -> GeoDatabase:
        """The IPv6 geo database: one range row per city /48.

        The mislabelling knob applies per /48 (coarser than IPv4's
        per-row perturbation, as real v6 geo data also is).
        """
        rng = random.Random(self.seed ^ 0x6666)
        cities = list(self.plan.cities)
        database = GeoDatabase(name="synthetic-geo6")
        for index, city in enumerate(cities):
            if rng.random() < self.country_accuracy or len(cities) == 1:
                record = self._record_for(city)
            else:
                others = [
                    c for c in cities if c.country_code != city.country_code
                ] or [c for c in cities if c is not city]
                record = self._record_for(rng.choice(others))
            database.add_range(
                self.plan.block6_start(index), self.plan.block6_end(index), record
            )
        database.freeze()
        return database

    def build_asn6(self) -> AsnDatabase:
        """The IPv6 AS database: the incumbent announces each /48."""
        database = AsnDatabase(width=128)
        for index, city in enumerate(self.plan.cities):
            record = AsRecord(
                asn=self.plan.incumbent_asn(index),
                name=f"{city.name} Broadband (AS{self.plan.incumbent_asn(index)})",
            )
            database.add_prefix(self.plan.block6_start(index), 48, record)
        return database

    def build6(self):
        """Build both IPv6 databases; returns (geo6, asn6)."""
        return self.build_geo6(), self.build_asn6()
