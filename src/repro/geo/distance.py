"""Great-circle geometry: distances and propagation-delay floors.

Used in two places: the traffic generator derives realistic base RTTs
from endpoint geography, and the network-planning example compares
measured latency against the speed-of-light-in-fibre floor — the
analysis an operator would run from Ruru's data.
"""

from __future__ import annotations

import math

EARTH_RADIUS_KM = 6371.0

# Light in fibre travels at roughly 2/3 c ≈ 200 km/ms, and real paths
# are longer than great circles; 1.3 is a conventional path-stretch
# factor for back-of-envelope planning.
FIBRE_KM_PER_MS = 200.0
DEFAULT_PATH_STRETCH = 1.3


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) points, in km."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    )
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def propagation_delay_ms(
    distance_km: float, path_stretch: float = DEFAULT_PATH_STRETCH
) -> float:
    """One-way fibre propagation delay for *distance_km*, in ms."""
    if distance_km < 0:
        raise ValueError("distance cannot be negative")
    if path_stretch < 1.0:
        raise ValueError("path stretch cannot shorten the path")
    return distance_km * path_stretch / FIBRE_KM_PER_MS


def rtt_floor_ms(
    lat1: float,
    lon1: float,
    lat2: float,
    lon2: float,
    path_stretch: float = DEFAULT_PATH_STRETCH,
) -> float:
    """Round-trip fibre floor between two coordinates, in ms."""
    distance = haversine_km(lat1, lon1, lat2, lon2)
    return 2 * propagation_delay_ms(distance, path_stretch)
