"""Geo-location and AS databases — the IP2Location substitute.

Ruru "maps the source and destination IP addresses of each flow to
geographical locations as well as to AS numbers" using IP2Location
databases with "98% country-level accuracy". We reproduce the lookup
surface with two structures a real enrichment path would use:

* a sorted **range index** for IP→(country, city, lat, lon), the shape
  IP2Location ships (:mod:`repro.geo.database`);
* a binary **radix trie** doing longest-prefix match for IP→ASN, the
  shape BGP-derived AS databases ship (:mod:`repro.geo.asn`,
  :mod:`repro.geo.trie`).

:mod:`repro.geo.builder` constructs deterministic synthetic databases
aligned with the traffic generator's address plan, including a
configurable country-accuracy knob (default 0.98) so the paper's
accuracy figure becomes a measurable property (experiment E6).
"""

from repro.geo.locations import City, WORLD_CITIES, city_by_name
from repro.geo.trie import RadixTrie
from repro.geo.database import GeoDatabase, GeoRecord, RangeOverlapError
from repro.geo.asn import AsnDatabase, AsRecord
from repro.geo.builder import GeoDbBuilder, SyntheticGeoPlan
from repro.geo.distance import haversine_km, propagation_delay_ms

__all__ = [
    "City",
    "WORLD_CITIES",
    "city_by_name",
    "RadixTrie",
    "GeoDatabase",
    "GeoRecord",
    "RangeOverlapError",
    "AsnDatabase",
    "AsRecord",
    "GeoDbBuilder",
    "SyntheticGeoPlan",
    "haversine_km",
    "propagation_delay_ms",
]
