"""Span-based stage tracing over the virtual clock.

A :class:`Span` brackets one unit of stage work — a worker poll, a
flow-table sweep, an analytics enrich — and records its start/end on
the pipeline's :class:`~repro.dpdk.clock.VirtualClock`. Because the
virtual clock only advances when replayed packets carry it forward,
span timings are fully deterministic: the same trace replayed twice
produces byte-identical spans, which is what lets tests assert exact
stage latencies instead of eyeballing wall-clock noise.

Completed root spans land in a bounded ring buffer (most recent
first out of :meth:`Tracer.recent`), so a long run keeps only the
tail — the "flight recorder" shape operators actually use. When a
:class:`~repro.obs.registry.MetricsRegistry` is attached, every span
additionally feeds a ``ruru_stage_duration_ns`` histogram labelled by
stage, tying the trace view and the metric view together.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.registry import DEFAULT_DURATION_BUCKETS_NS, MetricsRegistry

__all__ = ["Span", "Tracer"]


class Span:
    """One timed stage; usable as a context manager via the tracer.

    Attribute and child storage is lazy (``None`` until first use):
    spans are created on the packet path, so the common leaf span must
    not pay for two empty container allocations.
    """

    __slots__ = ("name", "_attrs", "start_ns", "end_ns", "_children", "_tracer")

    def __init__(self, name: str, start_ns: int, attrs: Optional[dict], tracer: "Tracer"):
        self.name = name
        self._attrs = attrs
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self._children: Optional[List["Span"]] = None
        self._tracer = tracer

    @property
    def attrs(self) -> Dict[str, object]:
        """Span attributes (empty dict when none were set)."""
        return self._attrs if self._attrs is not None else {}

    @property
    def children(self) -> List["Span"]:
        """Child spans, in start order."""
        return self._children if self._children is not None else []

    @property
    def duration_ns(self) -> int:
        """Span length on the virtual clock (0 until finished)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def finish(self) -> "Span":
        """Close the span at the tracer's current clock reading."""
        self._tracer._finish(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def walk(self):
        """Yield this span and all descendants, depth-first."""
        yield self
        for child in self._children or ():
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, start={self.start_ns}, "
            f"duration_ns={self.duration_ns}, children={len(self._children or ())})"
        )


class Tracer:
    """Builds nested spans against a clock; keeps recent root traces.

    Args:
        clock: anything with a ``now_ns`` attribute (normally the
            pipeline's :class:`~repro.dpdk.clock.VirtualClock`).
        max_traces: ring-buffer capacity for completed root spans.
        registry: when given, span durations also feed the
            ``ruru_stage_duration_ns`` histogram, labelled by stage.
        detail_sample: per-packet span sampling — instrumented loops
            (the worker's parse/track spans) emit detailed child spans
            on every Nth poll only, keeping hot-path overhead inside
            the ~5% budget. 1 traces every poll in detail, 0 disables
            per-packet spans entirely. Sampling is by deterministic
            poll count, so traces stay reproducible.
    """

    def __init__(
        self,
        clock=None,
        max_traces: int = 256,
        registry: Optional[MetricsRegistry] = None,
        detail_sample: int = 32,
    ):
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        if detail_sample < 0:
            raise ValueError("detail_sample cannot be negative")
        self.clock = clock
        self.detail_sample = detail_sample
        self._ring: Deque[Span] = deque(maxlen=max_traces)
        self._stack: List[Span] = []
        self.spans_started = 0
        self.spans_dropped = 0
        self._duration_family = None
        self._duration_children: dict = {}
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Start mirroring span durations into *registry*."""
        self._duration_family = registry.histogram(
            "ruru_stage_duration_ns",
            help="Stage span durations on the virtual clock.",
            labels=("stage",),
            buckets=DEFAULT_DURATION_BUCKETS_NS,
        )
        self._duration_children.clear()
        # Ring-buffer eviction is sampling loss: spans that fell out
        # of the flight recorder before anyone read them. Publishing
        # the count makes that loss visible instead of silent.
        started = registry.counter(
            "ruru_trace_spans_started_total",
            help="Spans opened by the tracer.",
        )
        dropped = registry.counter(
            "ruru_trace_spans_dropped_total",
            help="Root spans evicted from the trace ring before read-out.",
        )

        def collect() -> None:
            started.value = self.spans_started
            dropped.value = self.spans_dropped

        registry.register_collector(collect)

    def bind_clock(self, clock) -> None:
        """Adopt *clock* as the time source (pipeline construction)."""
        self.clock = clock

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a span; nests under the currently open span, if any."""
        clock = self.clock
        if clock is None:
            raise RuntimeError("tracer has no clock bound")
        span = Span(name, clock.now_ns, attrs or None, self)
        stack = self._stack
        if stack:
            parent = stack[-1]
            if parent._children is None:
                parent._children = [span]
            else:
                parent._children.append(span)
        stack.append(span)
        self.spans_started += 1
        return span

    def _finish(self, span: Span) -> None:
        if span.end_ns is not None:
            return
        end_ns = self.clock.now_ns
        span.end_ns = end_ns
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:
            # Unwind to this span: abandoned children close with it.
            while stack:
                top = stack.pop()
                if top is span:
                    break
                top.end_ns = end_ns
        if not stack:
            ring = self._ring
            if len(ring) == ring.maxlen:
                self.spans_dropped += 1
            ring.append(span)
        if self._duration_family is not None:
            child = self._duration_children.get(span.name)
            if child is None:
                child = self._duration_family.labels(span.name)
                self._duration_children[span.name] = child
            child.observe(end_ns - span.start_ns)

    # -- read-out -----------------------------------------------------------

    def recent(self, limit: Optional[int] = None) -> List[Span]:
        """Completed root spans, most recent last."""
        traces = list(self._ring)
        if limit is not None:
            traces = traces[-limit:]
        return traces

    def stage_names(self) -> List[str]:
        """Distinct stage names seen across retained traces, sorted."""
        names = set()
        for root in self._ring:
            for span in root.walk():
                names.add(span.name)
        return sorted(names)

    def clear(self) -> None:
        """Drop retained traces (open spans are unaffected)."""
        self._ring.clear()
