"""Self-monitoring export: registry snapshots into the TSDB.

The paper's operators watched the pipeline watch the network: drop
counters and stage throughput lived in the same Grafana as the latency
measurements. :class:`TelemetryExporter` reproduces that loop — on a
configurable (virtual-time) interval it snapshots the metrics registry
and writes each sample into the in-repo TSDB as its own measurement,
named after the metric. Self-monitoring series therefore sit alongside
the ``latency`` series but never mix with them: a metric named
``ruru_nic_imissed_total`` becomes the measurement of the same name,
tagged with its labels, with a single ``value`` field (histograms
export ``sum`` and ``count`` fields instead).
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.registry import MetricsRegistry
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point

__all__ = ["TelemetryExporter", "DEFAULT_EXPORT_INTERVAL_NS"]

DEFAULT_EXPORT_INTERVAL_NS = 1_000_000_000  # one virtual second


class TelemetryExporter:
    """Periodically snapshot a registry into a time-series database.

    Args:
        registry: the metrics source.
        tsdb: destination database (shared with the latency series or
            dedicated — measurement names keep them distinct either way).
        interval_ns: minimum virtual time between exports.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tsdb: TimeSeriesDatabase,
        interval_ns: int = DEFAULT_EXPORT_INTERVAL_NS,
    ):
        if interval_ns <= 0:
            raise ValueError("export interval must be positive")
        self.registry = registry
        self.tsdb = tsdb
        self.interval_ns = interval_ns
        self.exports = 0
        self.points_written = 0
        self._last_export_ns: Optional[int] = None
        # (family count, total children) the cached row layout was
        # built against; new families/label sets trigger a rebuild.
        self._layout_version: Optional[tuple] = None
        self._rows: List[tuple] = []

    def maybe_export(self, now_ns: int) -> int:
        """Export if at least one interval elapsed; returns points written."""
        if (
            self._last_export_ns is not None
            and now_ns - self._last_export_ns < self.interval_ns
        ):
            return 0
        return self.export(now_ns)

    def export(self, now_ns: int) -> int:
        """Unconditionally snapshot the registry at *now_ns*."""
        self._last_export_ns = now_ns
        points = self._points(now_ns)
        written = self.tsdb.write_batch(points)
        self.exports += 1
        self.points_written += written
        return written

    def _points(self, now_ns: int) -> List[Point]:
        # Exports run inside the pipeline's feed loop, so the row layout
        # (measurement name, tags dict, child) is cached across exports
        # and only rebuilt when a family or label set appears. The tags
        # dict is shared between successive Points of one series, which
        # is safe because the storage layer treats tags as read-only.
        self.registry.collect()
        families = self.registry.families()
        version = (len(families), sum(f.cardinality() for f in families))
        if version != self._layout_version:
            rows: List[tuple] = []
            for family in families:
                histogram = family.kind == "histogram"
                label_names = family.label_names
                for label_values, child in family.samples():
                    rows.append(
                        (
                            family.name,
                            dict(zip(label_names, label_values)),
                            child,
                            histogram,
                        )
                    )
            self._rows = rows
            self._layout_version = version
        points: List[Point] = []
        for measurement, tags, child, histogram in self._rows:
            if histogram:
                fields = {"sum": float(child.sum), "count": child.count}
            else:
                fields = {"value": float(child.value)}
            points.append(
                Point(
                    measurement=measurement,
                    timestamp_ns=now_ns,
                    tags=tags,
                    fields=fields,
                )
            )
        return points

    def series_names(self) -> List[str]:
        """Measurement names this exporter has written so far."""
        return [
            name for name in self.tsdb.measurements() if name.startswith("ruru_")
        ]
