"""Declarative service-level objectives over the telemetry registry.

An :class:`Slo` names one objective — a drop-rate ceiling, a latency
quantile bound, a throughput floor — as *data*, evaluated against the
shared :class:`~repro.obs.registry.MetricsRegistry` at drain time.
Evaluation never reaches into component objects: everything it reads
is already bridged into the registry by the scrape-time collectors, so
an SLO holds for any assembly (measure, live, chaos, durable) that
publishes the underlying series.

Sources:

* ``("sum", metric)`` — the summed value of a counter/gauge family's
  children; an optional trailing ``{label: value}`` dict restricts the
  sum to children matching those labels;
* ``("ratio", numerator, denominator)`` — two summed families divided
  (drop rates, loss rates);
* ``("quantile", metric, q)`` — a bucket-interpolated quantile over a
  histogram family, children merged.

An SLO whose series does not exist in the registry is *skipped*, not
violated — objectives over optional subsystems (the profiler's
throughput gauges, the MQ loss counters) only bind when the subsystem
is assembled.

Results surface in ``PipelineStats.summary()`` (``slo.<name>`` keys),
``ruru metrics --slo`` and ``RuruStack.drain()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Slo",
    "SloResult",
    "DEFAULT_SLOS",
    "evaluate_slos",
    "slos_from_dict",
    "summarize_slos",
]


@dataclass(frozen=True)
class Slo:
    """One declarative objective.

    Attributes:
        name: stable identifier (also the summary key suffix).
        description: operator-facing sentence.
        source: where the observed value comes from (see module doc).
        bound: the objective's threshold.
        kind: ``"max"`` (observed must stay at or under *bound*) or
            ``"min"`` (observed must stay at or over *bound*).
        unit: display unit for rendering.
    """

    name: str
    description: str
    source: Tuple
    bound: float
    kind: str = "max"
    unit: str = ""

    def __post_init__(self):
        if self.kind not in ("max", "min"):
            raise ValueError(f"slo kind must be 'max' or 'min', got {self.kind!r}")
        if self.source[0] not in ("sum", "ratio", "quantile"):
            raise ValueError(f"unknown slo source {self.source[0]!r}")


@dataclass
class SloResult:
    """One evaluated objective."""

    slo: Slo
    observed: Optional[float]
    status: str  # "ok" | "violated" | "skipped"

    @property
    def ok(self) -> bool:
        return self.status != "violated"

    def render(self) -> str:
        slo = self.slo
        op = "<=" if slo.kind == "max" else ">="
        if self.observed is None:
            return f"{slo.name}: skipped (series absent)"
        return (
            f"{slo.name}: {self.status} "
            f"(observed {self.observed:.6g} {op} bound {slo.bound:.6g}"
            f"{' ' + slo.unit if slo.unit else ''})"
        )


#: Objectives every full assembly should hold. Bounds are deliberately
#: operational (what the paper's deployment would page on), not
#: aspirational — chaos profiles are expected to violate some.
DEFAULT_SLOS: Tuple[Slo, ...] = (
    Slo(
        name="nic-drop-rate",
        description="Frames dropped at the NIC per frame offered.",
        source=("ratio", "ruru_nic_drops_total", "ruru_packets_offered_total"),
        bound=0.01,
    ),
    Slo(
        name="parse-error-rate",
        description="Frames rejected by the parser per frame offered.",
        source=("ratio", "ruru_parse_errors_total", "ruru_packets_offered_total"),
        bound=0.05,
    ),
    Slo(
        name="mq-loss-rate",
        description="Messages dropped on the PUSH/PULL bus per message sent.",
        source=("ratio", "ruru_mq_push_dropped_total", "ruru_mq_push_sent_total"),
        bound=0.05,
    ),
    Slo(
        name="stage-latency-p99",
        description="99th percentile stage span duration on the virtual clock.",
        source=("quantile", "ruru_stage_duration_ns", 0.99),
        bound=5e9,
        unit="ns",
    ),
    Slo(
        name="worker-throughput",
        description="Worker-stage processing rate (needs the profiler).",
        source=("sum", "ruru_stage_packets_per_s", {"stage": "workers"}),
        bound=1.0,
        kind="min",
        unit="packets/s",
    ),
)


def slos_from_dict(spec: Dict[str, dict]) -> List[Slo]:
    """Build objectives from a JSON-shaped mapping.

    .. code-block:: json

        {"nic-drop-rate": {"ratio": ["ruru_nic_drops_total",
                                     "ruru_packets_offered_total"],
                           "max": 0.01}}

    Exactly one of ``sum``/``ratio``/``quantile`` and one of
    ``max``/``min`` per entry.
    """
    slos: List[Slo] = []
    for name, body in spec.items():
        sources = [key for key in ("sum", "ratio", "quantile") if key in body]
        bounds = [key for key in ("max", "min") if key in body]
        if len(sources) != 1 or len(bounds) != 1:
            raise ValueError(
                f"slo {name!r} needs exactly one source "
                f"(sum/ratio/quantile) and one bound (max/min)"
            )
        source_kind = sources[0]
        raw = body[source_kind]
        if source_kind == "sum":
            if isinstance(raw, str):
                source: Tuple = ("sum", raw)
            else:  # ["metric", {"label": "value"}]
                source = ("sum", str(raw[0]), dict(raw[1]))
        elif source_kind == "ratio":
            source = ("ratio", str(raw[0]), str(raw[1]))
        else:
            source = ("quantile", str(raw[0]), float(raw[1]))
        slos.append(
            Slo(
                name=name,
                description=str(body.get("description", "")),
                source=source,
                bound=float(body[bounds[0]]),
                kind=bounds[0],
                unit=str(body.get("unit", "")),
            )
        )
    return slos


def evaluate_slos(
    registry, slos: Sequence[Slo] = DEFAULT_SLOS
) -> List[SloResult]:
    """Evaluate *slos* against *registry* (collectors run first)."""
    registry.collect()
    results: List[SloResult] = []
    for slo in slos:
        observed = _observe(registry, slo.source)
        if observed is None:
            results.append(SloResult(slo, None, "skipped"))
            continue
        if slo.kind == "max":
            ok = observed <= slo.bound
        else:
            ok = observed >= slo.bound
        results.append(SloResult(slo, observed, "ok" if ok else "violated"))
    return results


def summarize_slos(results: Sequence[SloResult]) -> Dict[str, str]:
    """Flat ``slo.<name>`` keys for ``PipelineStats.summary()``."""
    out: Dict[str, str] = {}
    for result in results:
        if result.observed is None:
            out[f"slo.{result.slo.name}"] = "skipped"
        else:
            out[f"slo.{result.slo.name}"] = (
                f"{result.status} ({result.observed:.6g})"
            )
    return out


# -- registry readers --------------------------------------------------------


def _family(registry, name: str):
    try:
        return registry.family(name)
    except KeyError:
        return None


def _family_sum(registry, name: str, labels: Optional[dict] = None) -> Optional[float]:
    family = _family(registry, name)
    if family is None:
        return None
    total = 0.0
    matched = False
    for label_values, child in family.samples():
        if labels is not None:
            sample_labels = dict(zip(family.label_names, label_values))
            if any(sample_labels.get(k) != str(v) for k, v in labels.items()):
                continue
        matched = True
        total += child.value
    if labels is not None and not matched:
        return None  # the restricted series never appeared: skip, not 0
    return float(total)


def _observe(registry, source: Tuple) -> Optional[float]:
    if source[0] == "sum":
        labels = source[2] if len(source) > 2 else None
        return _family_sum(registry, source[1], labels)
    if source[0] == "ratio":
        numerator = _family_sum(registry, source[1])
        denominator = _family_sum(registry, source[2])
        if numerator is None or denominator is None:
            return None
        if denominator == 0:
            return 0.0
        return numerator / denominator
    # quantile: merge every child histogram's buckets, interpolate.
    family = _family(registry, source[1])
    if family is None or family.kind != "histogram":
        return None
    bounds: Optional[Tuple[float, ...]] = None
    merged: List[int] = []
    total = 0
    for _, child in family.samples():
        if bounds is None:
            bounds = child.bounds
            merged = [0] * (len(bounds) + 1)
        if child.bounds != bounds:
            continue  # mixed bucket layouts never merge
        for index, count in enumerate(child.bucket_counts):
            merged[index] += count
        total += child.count
    if not total or bounds is None:
        return None
    return _bucket_quantile(bounds, merged, total, float(source[2]))


def _bucket_quantile(
    bounds: Tuple[float, ...], counts: List[int], total: int, q: float
) -> float:
    """Linear interpolation inside the bucket holding rank q·total
    (the Prometheus ``histogram_quantile`` estimator)."""
    rank = q * total
    running = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if running + count >= rank:
            upper = bounds[index] if index < len(bounds) else bounds[-1]
            lower = bounds[index - 1] if index > 0 else 0.0
            if index >= len(bounds):
                return float(bounds[-1])
            inside = (rank - running) / count
            return float(lower + (upper - lower) * inside)
        running += count
    return float(bounds[-1])
