"""Benchmark resultsets: archived, metadata-stamped, comparable.

Modeled on flent's resultset archive (and the reproducible
flow-control benchmarking argument of arXiv 1609.00653): a benchmark
run is only evidence if it survives the run — stamped with the git
revision, platform, seed and configuration that produced it — and can
be *compared* against another run with thresholds that respect
measurement noise.

A resultset is one schema-versioned JSON document:

.. code-block:: json

    {
      "schema": 1,
      "name": "bench",
      "meta": {"git_rev": "…", "platform": "…", "seed": 17, …},
      "metrics": {
        "pipeline.fast_path.packets_per_s":
          {"value": 120000.0, "unit": "packets/s",
           "higher_is_better": true, "noise": 0.15}
      },
      "stage_profile": {"nic": {"wall_ns": …, "ns_per_packet": …}, …}
    }

``ruru perf compare baseline.json current.json`` diffs two of them;
``benchmarks/conftest.py`` emits one per bench session; the committed
``benchmarks/baselines/`` seed turns the bench trajectory into a
tracked series the CI perf-regression gate can hold the line on.

Comparison is noise-aware on two axes: each metric carries its own
tolerated noise fraction (defaulting to the compare threshold), and
absolute metrics are downgraded to advisory when the two resultsets
were recorded on different platforms — cross-machine absolute
packets/s is weather, not signal. Per-stage *share* metrics (each
stage's fraction of total wall cost) stay comparable across machines,
which is what lets the CI gate catch a stage-local regression without
chasing runner hardware.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional

__all__ = [
    "RESULTSET_SCHEMA",
    "Resultset",
    "CompareReport",
    "collect_meta",
    "compare",
    "load_resultset",
    "stage_profile_metrics",
    "try_load_resultset",
]

RESULTSET_SCHEMA = 1

#: Default tolerated fraction of change before a delta counts as real.
DEFAULT_THRESHOLD = 0.15


def collect_meta(
    seed: Optional[int] = None, config: Optional[dict] = None
) -> Dict[str, object]:
    """Environment stamp for a resultset: git rev, platform, seed."""
    return {
        "git_rev": _git_rev(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "created_unix": round(time.time(), 3),
        "seed": seed,
        "config": config or {},
    }


def _git_rev() -> str:
    env_rev = os.environ.get("RURU_GIT_REV")
    if env_rev:
        return env_rev
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


class Resultset:
    """One archived benchmark run."""

    def __init__(
        self,
        name: str,
        meta: Optional[Dict[str, object]] = None,
        seed: Optional[int] = None,
        config: Optional[dict] = None,
    ):
        self.name = name
        self.meta = meta if meta is not None else collect_meta(seed, config)
        self.metrics: Dict[str, dict] = {}
        self.stage_profile: Dict[str, dict] = {}
        #: The schema this document was read from (this build's own
        #: number for fresh instances; kept verbatim by lenient loads).
        self.schema = RESULTSET_SCHEMA

    def record(
        self,
        name: str,
        value: float,
        unit: str = "",
        higher_is_better: bool = True,
        noise: Optional[float] = None,
        exact: bool = False,
        portable: bool = False,
    ) -> None:
        """Record one named metric (re-recording overwrites).

        ``exact`` marks a deterministic invariant — event counts,
        conservation ledger entries — which :func:`compare` then gates
        with zero tolerance in *either* direction. ``portable`` keeps
        the metric gating across platforms (the default downgrades
        absolute metrics from a different machine to advisory).
        """
        entry = {
            "value": float(value),
            "unit": unit,
            "higher_is_better": bool(higher_is_better),
        }
        if noise is not None:
            entry["noise"] = float(noise)
        if exact:
            entry["exact"] = True
        if portable:
            entry["portable"] = True
        self.metrics[name] = entry

    def record_stage_profile(self, summary: Dict[str, dict]) -> None:
        """Attach a :meth:`StageProfiler.summary` and derive per-stage
        comparison metrics (cost + machine-portable share)."""
        self.stage_profile = dict(summary)
        for name, entry in stage_profile_metrics(summary).items():
            self.metrics[name] = entry

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": RESULTSET_SCHEMA,
            "name": self.name,
            "meta": self.meta,
            "metrics": self.metrics,
            "stage_profile": self.stage_profile,
        }

    def write(self, path: str) -> str:
        """Serialize to *path* (parent directories created)."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def from_dict(
        cls, data: Dict[str, object], lenient: bool = False
    ) -> "Resultset":
        """Deserialize one archived document.

        Strict mode (the default) rejects any schema other than this
        build's :data:`RESULTSET_SCHEMA`. Lenient mode is for readers
        that scan archives written by *other* revisions — the batch
        runner resuming a grid, ``ruru perf show`` over an old results
        directory: an unknown (older or future) schema, a missing
        ``meta``/``metrics`` key, or a malformed metric entry degrades
        to "whatever was readable", never a KeyError. Metric entries
        without a numeric ``value`` are dropped; the original schema
        number is kept on :attr:`schema` so callers can tell.
        """
        if not isinstance(data, dict):
            if lenient:
                data = {}
            else:
                raise ValueError("resultset document must be a JSON object")
        try:
            schema = int(data.get("schema", 0))
        except (TypeError, ValueError):
            schema = -1
        if schema != RESULTSET_SCHEMA and not lenient:
            raise ValueError(
                f"unsupported resultset schema {schema} "
                f"(this build reads schema {RESULTSET_SCHEMA})"
            )
        meta = data.get("meta")
        out = cls(
            str(data.get("name", "bench")),
            meta=dict(meta) if isinstance(meta, dict) else {},
        )
        out.schema = schema
        metrics = data.get("metrics")
        for key, entry in (metrics.items() if isinstance(metrics, dict) else ()):
            if not isinstance(entry, dict):
                if lenient:
                    continue
                raise ValueError(f"metric {key!r} is not an object")
            try:
                entry = dict(entry)
                entry["value"] = float(entry["value"])
            except (KeyError, TypeError, ValueError):
                if lenient:
                    continue
                raise ValueError(f"metric {key!r} has no numeric value")
            out.metrics[str(key)] = entry
        profile = data.get("stage_profile")
        if isinstance(profile, dict):
            out.stage_profile = {
                str(k): dict(v)
                for k, v in profile.items()
                if isinstance(v, dict)
            }
        return out


def load_resultset(path: str, lenient: bool = False) -> Resultset:
    with open(path, "r", encoding="utf-8") as handle:
        return Resultset.from_dict(json.load(handle), lenient=lenient)


def try_load_resultset(path: str) -> Optional[Resultset]:
    """A resultset if *path* holds a readable one, else None.

    The resumable grid runner's probe: a missing file, torn/non-JSON
    bytes, or an alien schema all mean "this cell is not archived" —
    the caller re-runs the cell rather than crashing the whole grid.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    try:
        return Resultset.from_dict(data, lenient=True)
    except ValueError:  # pragma: no cover - lenient mode swallows these
        return None


def stage_profile_metrics(summary: Dict[str, dict]) -> Dict[str, dict]:
    """Flatten a stage-profile summary into comparable metrics.

    Per stage: ``stage.<name>.ns_per_packet`` (absolute, lower is
    better) and ``stage.<name>.wall_share`` (fraction of total wall
    cost — portable across machines, the CI gate's signal).
    """
    metrics: Dict[str, dict] = {}
    total_wall = sum(float(entry.get("wall_ns", 0)) for entry in summary.values())
    for name, entry in summary.items():
        cost = float(entry.get("ns_per_packet", 0.0))
        if cost > 0:
            metric = {
                "value": cost,
                "unit": "ns/packet",
                "higher_is_better": False,
            }
            if cost < 100:
                # Sub-100ns stages sit at timer granularity; their
                # relative jitter is noise, not signal.
                metric["noise"] = 0.5
            metrics[f"stage.{name}.ns_per_packet"] = metric
        if total_wall > 0:
            share = round(float(entry.get("wall_ns", 0)) / total_wall, 6)
            metric = {
                "value": share,
                "unit": "fraction",
                "higher_is_better": False,
                "portable": True,
            }
            if share > 0:
                # Tolerate ±2 percentage points of share *absolutely*:
                # a stage at 0.02% of wall cost can triple on scheduler
                # jitter alone, while a real stage-local regression
                # moves whole points. (Noise is a relative fraction, so
                # the absolute floor divides by the share.)
                metric["noise"] = round(min(100.0, 0.02 / share), 6)
            metrics[f"stage.{name}.wall_share"] = metric
    return metrics


class CompareReport:
    """The diff of two resultsets, with a pass/fail verdict."""

    def __init__(self, baseline: Resultset, current: Resultset, threshold: float):
        self.baseline = baseline
        self.current = current
        self.threshold = threshold
        self.same_platform = baseline.meta.get("platform") == current.meta.get(
            "platform"
        )
        # (metric, base, cur, delta_frac, status) — status one of
        # "ok", "improved", "regressed", "advisory", "added", "removed".
        self.rows: List[tuple] = []
        self.regressions: List[str] = []
        self.improvements: List[str] = []
        self.advisories: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        base_meta, cur_meta = self.baseline.meta, self.current.meta
        lines = [
            f"baseline: {self.baseline.name} "
            f"@ {str(base_meta.get('git_rev', '?'))[:12]} "
            f"({base_meta.get('platform', '?')})",
            f"current:  {self.current.name} "
            f"@ {str(cur_meta.get('git_rev', '?'))[:12]} "
            f"({cur_meta.get('platform', '?')})",
            f"threshold: {self.threshold:.0%}"
            + (
                ""
                if self.same_platform
                else "  [platforms differ: absolute metrics advisory only]"
            ),
            "",
            f"{'metric':<42} {'baseline':>14} {'current':>14} {'delta':>9}  status",
        ]
        for metric, base, cur, delta, status in self.rows:
            base_text = "-" if base is None else f"{base:,.3f}"
            cur_text = "-" if cur is None else f"{cur:,.3f}"
            delta_text = "-" if delta is None else f"{delta:+.1%}"
            lines.append(
                f"{metric:<42} {base_text:>14} {cur_text:>14} {delta_text:>9}  {status}"
            )
        lines.append("")
        verdict = "OK" if self.ok else "REGRESSED"
        lines.append(
            f"{verdict}: {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.advisories)} advisory"
        )
        return "\n".join(lines)


def compare(
    baseline: Resultset,
    current: Resultset,
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareReport:
    """Diff *current* against *baseline* with noise-aware thresholds.

    A metric regresses when it moves in its *worse* direction by more
    than ``max(threshold, metric noise)``. Absolute metrics from a
    different platform never regress the verdict — they surface as
    advisories instead (share metrics, marked ``portable``, still
    gate). Metrics marked ``exact`` are deterministic invariants: any
    change at all, in either direction, is a regression ("improved"
    does not exist for an anomaly-event count).
    """
    report = CompareReport(baseline, current, threshold)
    names = list(baseline.metrics)
    names += [name for name in current.metrics if name not in baseline.metrics]
    for name in names:
        base_entry = baseline.metrics.get(name)
        cur_entry = current.metrics.get(name)
        if base_entry is None:
            report.rows.append(
                (name, None, cur_entry.get("value"), None, "added")
            )
            continue
        if cur_entry is None:
            report.rows.append(
                (name, base_entry.get("value"), None, None, "removed")
            )
            continue
        base = float(base_entry["value"])
        cur = float(cur_entry["value"])
        higher_is_better = bool(base_entry.get("higher_is_better", True))
        tolerance = max(threshold, float(base_entry.get("noise", 0.0)))
        if base == 0:
            delta = 0.0 if cur == 0 else float("inf")
        else:
            delta = (cur - base) / abs(base)
        worse = -delta if higher_is_better else delta
        portable = bool(base_entry.get("portable", False))
        if bool(base_entry.get("exact", False)):
            if cur != base:
                status = "regressed"
                report.regressions.append(name)
            else:
                status = "ok"
            report.rows.append((name, base, cur, delta, status))
            continue
        if worse > tolerance:
            if report.same_platform or portable:
                status = "regressed"
                report.regressions.append(name)
            else:
                status = "advisory"
                report.advisories.append(name)
        elif -worse > tolerance:
            status = "improved"
            report.improvements.append(name)
        else:
            status = "ok"
        report.rows.append((name, base, cur, delta, status))
    return report
