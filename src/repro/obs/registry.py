"""Metrics registry: counters, gauges and histograms with labels.

The deployment story of the paper (Sec. 3) rests on the operators
being able to see the measurement pipeline's own health — ``imissed``
on the NIC, per-stage throughput, parse-drop reasons. This module is
the one place those numbers live: hot-path code increments cheap
primitives (or keeps its existing plain-int counters and bridges them
in through a *collector* run at scrape time), and everything is read
back out through two views:

* :meth:`MetricsRegistry.exposition` — Prometheus text format, what
  ``ruru metrics`` prints and what a real scrape endpoint would serve;
* :meth:`MetricsRegistry.snapshot` — a JSON-able dict, what the
  :class:`~repro.obs.exporter.TelemetryExporter` writes into the
  in-repo TSDB as self-monitoring series.

Primitives follow the Prometheus data model: a metric *family* has a
name, a help string and a fixed set of label names; ``labels(...)``
resolves one labelled child, which is the object hot paths hold on to
and increment. Families with no labels collapse to a single child
returned directly from the registry, so the common case stays one
attribute store per increment.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS_NS",
]

# Nanosecond latency buckets spanning 1 us .. 1 s — the range a pipeline
# stage can plausibly occupy under the virtual clock.
DEFAULT_DURATION_BUCKETS_NS: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)


class Counter:
    """A monotonically increasing count.

    ``value`` is a plain attribute so bridged collectors can assign the
    authoritative total directly; instrumented code uses :meth:`inc`.
    """

    __slots__ = ("value",)

    def __init__(self):
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (occupancy, ring depth)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    Args:
        bounds: ascending upper bucket bounds; an implicit ``+Inf``
            bucket is always appended. A sample equal to a bound lands
            in that bound's bucket (``le`` is inclusive).
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Counts per bucket, cumulative as Prometheus expects."""
        out, running = [], 0
        for bucket in self.bucket_counts:
            running += bucket
            out.append(running)
        return out


_KIND_TO_CLASS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labelled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        _validate_metric_name(name)
        for label in label_names:
            _validate_label_name(label)
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            # Unlabelled family: materialize the single child up front.
            self._children[()] = self._new_child()

    def _new_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_DURATION_BUCKETS_NS)
        return _KIND_TO_CLASS[self.kind]()

    def labels(self, *values, **kwargs):
        """Resolve (creating on first use) the child for a label set.

        Accepts positional values in ``label_names`` order, or keyword
        values; mixing is rejected.
        """
        if values and kwargs:
            raise ValueError("pass label values positionally or by name, not both")
        if kwargs:
            try:
                values = tuple(kwargs.pop(name) for name in self.label_names)
            except KeyError as exc:
                raise ValueError(f"missing label {exc.args[0]!r} for {self.name}")
            if kwargs:
                raise ValueError(
                    f"unknown labels {sorted(kwargs)} for {self.name} "
                    f"(expects {list(self.label_names)})"
                )
        values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects {len(self.label_names)} label values, "
                f"got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._new_child()
        return child

    @property
    def unlabeled(self):
        """The single child of a label-less family."""
        return self._children[()]

    def samples(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """All (label_values, child) pairs, in creation order."""
        return self._children.items()

    def cardinality(self) -> int:
        """How many labelled children exist."""
        return len(self._children)


class MetricsRegistry:
    """The process-wide metric namespace.

    Families are created idempotently: asking for an existing name with
    a matching (kind, labels) signature returns the existing family, so
    independent components can share series; a conflicting signature is
    an error rather than a silent split-brain.
    """

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- family factories ---------------------------------------------------

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """A counter family; returns the child directly when unlabelled."""
        return self._get_or_create(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """A gauge family; returns the child directly when unlabelled."""
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        """A histogram family; returns the child directly when unlabelled."""
        return self._get_or_create(name, "histogram", help, labels, buckets=buckets)

    def _get_or_create(self, name, kind, help, labels, buckets=None):
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, labels, buckets=buckets)
            self._families[name] = family
        else:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            if family.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{list(family.label_names)}"
                )
        return family.unlabeled if not family.label_names else family

    def family(self, name: str) -> MetricFamily:
        """Look up a family by name (KeyError if absent)."""
        return self._families[name]

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    # -- collectors ---------------------------------------------------------

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a zero-arg callable run before every read-out.

        Collectors bridge live objects that keep plain-int counters on
        their hot path (``TrackerStats``, ``PortStats``, socket drop
        counts) into registry metrics: they *assign* authoritative
        totals so the registry is the single source of truth at scrape
        time with zero added cost per packet.
        """
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (scrape-time refresh)."""
        for collector in self._collectors:
            collector()

    # -- views --------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able dump of every family and sample."""
        self.collect()
        out: Dict[str, dict] = {}
        for family in self._families.values():
            samples = []
            for label_values, child in family.samples():
                labels = dict(zip(family.label_names, label_values))
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "sum": child.sum,
                        "count": child.count,
                        "buckets": {
                            _format_bound(bound): cumulative
                            for bound, cumulative in zip(
                                tuple(child.bounds) + (float("inf"),),
                                child.cumulative_counts(),
                            )
                        },
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def exposition(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        for family in self._families.values():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_values, child in family.samples():
                label_pairs = list(zip(family.label_names, label_values))
                if family.kind == "histogram":
                    bounds = tuple(child.bounds) + (float("inf"),)
                    for bound, cumulative in zip(bounds, child.cumulative_counts()):
                        bucket_labels = label_pairs + [("le", _format_bound(bound))]
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(label_pairs)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(label_pairs)} "
                        f"{child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_format_labels(label_pairs)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


# -- formatting helpers -----------------------------------------------------


def _validate_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")


def _validate_label_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid label name: {name!r}")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return str(value)
