"""Per-stage performance profiling, derived from the stage graph.

The paper's claim is *continuous* line-rate visibility, and the
roadmap's next two items (vectorized hot path, sharded runtime) are
both performance claims — so the stack needs a profiler that can prove
them. :class:`StageProfiler` hangs off the
:class:`~repro.stack.stage.StageGraph` traversal: the graph times every
stage's ``process`` hook itself, which means **every assembled stage is
profiled automatically** — adding a stage to the topology adds it to
the profile, with no per-stage wiring anywhere.

Three accounting planes per stage:

* **wall** — ``time.perf_counter_ns`` around the stage's slice of each
  feed batch (what operators pay);
* **cpu** — ``time.process_time_ns``, so wall-clock waits do not count
  (the plane the CI perf gates compare);
* **virtual** — the stage's advance of the pipeline's virtual clock,
  which is fully deterministic and replays byte-identically.

On top of the per-stage totals, a *sampled call attributor* runs a
``sys.setprofile`` hook on every Nth feed batch and folds self-time
per Python call stack, prefixed with the owning stage name. A Python
hook pays dispatch on every call *and every C call*, so a fully
hooked batch runs ~10× slower — the attributor therefore hooks only
**one stage per sampled batch**, rotating through the stage order, so
the cost amortizes to ~(1/N) × one stage's share while every stage
still gets attributed over time. The result exports in
collapsed-stack (Brendan Gregg flamegraph) format via
:meth:`StageProfiler.collapsed`, so ``ruru prof --collapsed out.txt``
pipes straight into ``flamegraph.pl``. Sampling and rotation are by
deterministic batch count, never by timer, so two identical runs
attribute the same batches and the same stages.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["StageProfile", "StageProfiler", "DEFAULT_CALL_SAMPLE"]

#: Attribute calls on every Nth feed batch by default; 0 disables the
#: call sampler (stage-level accounting still runs).
DEFAULT_CALL_SAMPLE = 16

#: Frames deeper than this fold into their ancestor (bounds hook cost
#: and keeps collapsed stacks readable).
MAX_STACK_DEPTH = 24

#: Pseudo-stage for call events seen outside any stage timer — almost
#: entirely the profiler's own bookkeeping, so exports filter it.
_BETWEEN = "(between stages)"


class StageProfile:
    """Accumulated cost of one stage across every profiled batch."""

    __slots__ = ("name", "calls", "wall_ns", "cpu_ns", "virtual_ns", "items")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.wall_ns = 0
        self.cpu_ns = 0
        self.virtual_ns = 0
        self.items = 0

    @property
    def packets_per_s(self) -> float:
        """Batch items over wall time (0 when nothing ran)."""
        if self.wall_ns <= 0:
            return 0.0
        return self.items / (self.wall_ns / 1e9)

    @property
    def ns_per_packet(self) -> float:
        """Wall cost per batch item (0 when no items flowed)."""
        if self.items <= 0:
            return 0.0
        return self.wall_ns / self.items

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "wall_ns": self.wall_ns,
            "cpu_ns": self.cpu_ns,
            "virtual_ns": self.virtual_ns,
            "items": self.items,
            "packets_per_s": round(self.packets_per_s, 3),
            "ns_per_packet": round(self.ns_per_packet, 3),
        }


class _StageTimer:
    """Context manager accounting one stage's slice of one batch."""

    __slots__ = (
        "profiler", "profile", "items", "now_fn",
        "_wall0", "_cpu0", "_virt0", "_hooked",
    )

    def __init__(
        self,
        profiler: "StageProfiler",
        profile: StageProfile,
        items: int,
        now_fn: Optional[Callable[[], int]] = None,
    ):
        self.profiler = profiler
        self.profile = profile
        self.items = items
        self.now_fn = now_fn

    def __enter__(self) -> "_StageTimer":
        profiler = self.profiler
        profiler._current_stage = self.profile.name
        index = profiler._stage_index
        profiler._stage_index = index + 1
        self._hooked = profiler._batch_sampled and index == profiler._target_index
        if self._hooked:
            profiler._hook_stack.clear()
            sys.setprofile(profiler._hook)
        self._virt0 = self.now_fn() if self.now_fn is not None else 0
        self._wall0 = profiler._wall()
        self._cpu0 = profiler._cpu()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        profiler = self.profiler
        profile = self.profile
        if self._hooked:
            sys.setprofile(None)
            profiler._drain_hook_stack()
        profile.wall_ns += profiler._wall() - self._wall0
        profile.cpu_ns += profiler._cpu() - self._cpu0
        if self.now_fn is not None:
            profile.virtual_ns += self.now_fn() - self._virt0
        profile.calls += 1
        profile.items += self.items
        profiler._current_stage = None


class StageProfiler:
    """Stage-graph-derived cycle/wall profiler with sampled attribution.

    Args:
        sample_every: run the call attributor on every Nth batch
            (deterministic batch count; 0 disables attribution).
        wall: injectable wall-clock source in ns (tests pass a fake so
            accounting itself is checked deterministically).
        cpu: injectable CPU-clock source in ns.
    """

    def __init__(
        self,
        sample_every: int = DEFAULT_CALL_SAMPLE,
        wall: Callable[[], int] = time.perf_counter_ns,
        cpu: Callable[[], int] = time.process_time_ns,
    ):
        if sample_every < 0:
            raise ValueError("sample_every cannot be negative")
        self.sample_every = sample_every
        self._wall = wall
        self._cpu = cpu
        self.stages: Dict[str, StageProfile] = {}
        self.batches = 0
        self.batches_sampled = 0
        self._current_stage: Optional[str] = None
        # (stage, frame, frame, ...) -> accumulated self-time ns from
        # sampled batches only.
        self.call_self_ns: Dict[Tuple[str, ...], int] = {}
        # Inclusive sampled ns per stage, to subtract from the stage
        # root line of the collapsed export (avoids double counting).
        self._sampled_inclusive_ns: Dict[str, int] = {}
        self._hook_stack: List[list] = []
        # code object -> rendered frame name; formatting the name on
        # every call event would dominate the hook's cost.
        self._code_names: Dict[object, str] = {}
        # Rotation state: a sampled batch hooks exactly one stage (by
        # position in the traversal), cycling so attribution covers
        # the whole graph over successive sampled batches.
        self._batch_sampled = False
        self._stage_index = 0
        self._target_index = 0
        self._last_batch_stages = 0

    # -- accounting hooks (driven by StageGraph) -----------------------------

    def stage(self, name: str, items: int = 0, now_fn=None) -> _StageTimer:
        """Time one stage's slice of the current batch.

        ``now_fn`` (when given) reads the pipeline's virtual clock, so
        the stage's deterministic virtual-time advance is accounted
        alongside the wall/cpu planes.
        """
        profile = self.stages.get(name)
        if profile is None:
            profile = self.stages[name] = StageProfile(name)
        return _StageTimer(self, profile, items, now_fn)

    def batch_begin(self) -> bool:
        """Count one feed batch; True when this batch is call-sampled.

        On a sampled batch the attributor picks its target stage by
        rotating ``batches_sampled`` through the stage count observed
        on the previous batch; the stage timers install the hook when
        the target's turn comes.
        """
        self.batches += 1
        self._stage_index = 0
        if self.sample_every and self.batches % self.sample_every == 0:
            self.batches_sampled += 1
            self._batch_sampled = True
            stages = self._last_batch_stages
            self._target_index = (
                (self.batches_sampled - 1) % stages if stages > 0 else 0
            )
            return True
        self._batch_sampled = False
        return False

    def batch_end(self, sampled: bool) -> None:
        """Close the batch opened by :meth:`batch_begin`."""
        self._last_batch_stages = self._stage_index
        self._batch_sampled = False
        if sampled and sys.getprofile() is self._hook:  # pragma: no cover
            sys.setprofile(None)  # timer misuse safety net

    # -- sampled call attribution --------------------------------------------

    def _hook(self, frame, event, arg) -> None:
        # The interpreter calls this for *every* call/return — including
        # c_call/c_return, which the hot path fires constantly — so the
        # non-Python events must bail on the first comparison.
        if event == "call":
            stack = self._hook_stack
            if len(stack) >= MAX_STACK_DEPTH:
                return
            code = frame.f_code
            name = self._code_names.get(code)
            if name is None:
                name = f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})"
                self._code_names[code] = name
            # [name, start_ns, child_inclusive_ns]
            stack.append([name, self._wall(), 0])
        elif event == "return" and self._hook_stack:
            now = self._wall()
            name, start, child_ns = self._hook_stack.pop()
            inclusive = now - start
            stage = self._current_stage or _BETWEEN
            key = (stage,) + tuple(entry[0] for entry in self._hook_stack) + (name,)
            self.call_self_ns[key] = (
                self.call_self_ns.get(key, 0) + max(0, inclusive - child_ns)
            )
            if self._hook_stack:
                self._hook_stack[-1][2] += inclusive
            else:
                self._sampled_inclusive_ns[stage] = (
                    self._sampled_inclusive_ns.get(stage, 0) + inclusive
                )

    def _drain_hook_stack(self) -> None:
        # Frames still open when sampling stops (the hook installer's
        # own callers) close at the stop time.
        while self._hook_stack:
            name, start, child_ns = self._hook_stack.pop()
            inclusive = self._wall() - start
            stage = self._current_stage or _BETWEEN
            key = (stage,) + tuple(e[0] for e in self._hook_stack) + (name,)
            self.call_self_ns[key] = (
                self.call_self_ns.get(key, 0) + max(0, inclusive - child_ns)
            )
            if self._hook_stack:
                self._hook_stack[-1][2] += inclusive

    # -- read-out ------------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage accounting, in stage-first-seen order."""
        return {name: profile.as_dict() for name, profile in self.stages.items()}

    def total_wall_ns(self) -> int:
        return sum(profile.wall_ns for profile in self.stages.values())

    def collapsed(self) -> str:
        """Collapsed-stack export (``a;b;c <microseconds>`` per line).

        Stage totals form the first level under the ``ruru`` root;
        sampled call stacks nest under their stage. The sampled
        inclusive time is subtracted from the stage's own line so the
        flamegraph column widths still sum to the measured wall total.
        """
        lines = []
        for name, profile in self.stages.items():
            sampled = self._sampled_inclusive_ns.get(name, 0)
            self_us = max(0, profile.wall_ns - sampled) // 1000
            lines.append(f"ruru;{_frame(name)} {max(1, self_us)}")
        for key in sorted(self.call_self_ns):
            if key[0] == _BETWEEN:
                continue
            self_ns = self.call_self_ns[key]
            us = self_ns // 1000
            if us <= 0:
                continue
            lines.append("ruru;" + ";".join(_frame(part) for part in key) + f" {us}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self, top_calls: int = 10) -> str:
        """Human-readable profile table plus the hottest call sites."""
        header = (
            f"{'stage':<12} {'calls':>8} {'wall ms':>10} {'cpu ms':>10} "
            f"{'virt ms':>10} {'packets':>10} {'pkt/s':>12} {'ns/pkt':>10}"
        )
        rows = [header, "-" * len(header)]
        for profile in sorted(
            self.stages.values(), key=lambda p: p.wall_ns, reverse=True
        ):
            rows.append(
                f"{profile.name:<12} {profile.calls:>8} "
                f"{profile.wall_ns / 1e6:>10.2f} {profile.cpu_ns / 1e6:>10.2f} "
                f"{profile.virtual_ns / 1e6:>10.2f} {profile.items:>10} "
                f"{profile.packets_per_s:>12,.0f} {profile.ns_per_packet:>10.0f}"
            )
        hot = sorted(
            (item for item in self.call_self_ns.items() if item[0][0] != _BETWEEN),
            key=lambda kv: kv[1],
            reverse=True,
        )
        if hot:
            rows.append("")
            rows.append(
                f"hot call sites (sampled, every {self.sample_every} batches, "
                f"{self.batches_sampled}/{self.batches} batches attributed):"
            )
            for key, self_ns in hot[:top_calls]:
                rows.append(f"  {self_ns / 1e6:>9.2f} ms  {' > '.join(key)}")
        return "\n".join(rows)

    # -- registry binding ----------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Publish per-stage gauges through a shared metrics registry."""
        wall = registry.counter(
            "ruru_stage_wall_ns_total",
            help="Wall time spent inside each stage's process hook.",
            labels=("stage",),
        )
        cpu = registry.counter(
            "ruru_stage_cpu_ns_total",
            help="CPU time spent inside each stage's process hook.",
            labels=("stage",),
        )
        calls = registry.counter(
            "ruru_stage_calls_total",
            help="Feed batches each stage processed.",
            labels=("stage",),
        )
        rate = registry.gauge(
            "ruru_stage_packets_per_s",
            help="Batch items over wall time, per stage.",
            labels=("stage",),
        )
        cost = registry.gauge(
            "ruru_stage_cost_ns_per_packet",
            help="Wall cost per batch item, per stage.",
            labels=("stage",),
        )
        sampled = registry.counter(
            "ruru_prof_batches_sampled_total",
            help="Feed batches run under the call attributor.",
        )

        def collect() -> None:
            for name, profile in self.stages.items():
                wall.labels(name).value = profile.wall_ns
                cpu.labels(name).value = profile.cpu_ns
                calls.labels(name).value = profile.calls
                rate.labels(name).set(round(profile.packets_per_s, 3))
                cost.labels(name).set(round(profile.ns_per_packet, 3))
            sampled.value = self.batches_sampled

        registry.register_collector(collect)


def _frame(text: str) -> str:
    """Sanitize one collapsed-stack frame (separators would split it)."""
    return text.replace(";", ":").replace(" ", "_")
