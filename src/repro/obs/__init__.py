"""``repro.obs`` — the unified telemetry subsystem.

Three pieces, one handle:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms with labels; Prometheus text exposition and
  a JSON snapshot view. Existing hot-path counters stay plain ints and
  are bridged in by scrape-time collectors, so instrumentation cost on
  the packet path is effectively zero.
* :class:`~repro.obs.trace.Tracer` — nestable stage spans timed on the
  :class:`~repro.dpdk.clock.VirtualClock` (deterministic in tests),
  retained in a ring buffer and mirrored into a duration histogram.
* :class:`~repro.obs.exporter.TelemetryExporter` — periodic registry
  snapshots written into the in-repo TSDB as self-monitoring series.

:class:`Telemetry` bundles the three and is what the pipeline, the
analytics service and the CLI pass around: construct one, hand it to
:class:`~repro.core.pipeline.RuruPipeline`, and every stage's counters
and spans flow through it.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.exporter import DEFAULT_EXPORT_INTERVAL_NS, TelemetryExporter
from repro.obs.prof import DEFAULT_CALL_SAMPLE, StageProfile, StageProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "StageProfile",
    "StageProfiler",
    "Tracer",
    "Telemetry",
    "TelemetryExporter",
    "DEFAULT_CALL_SAMPLE",
    "DEFAULT_EXPORT_INTERVAL_NS",
]


class Telemetry:
    """Registry + tracer + (optional) exporter, shared across stages.

    Args:
        clock: time source for spans and export intervals; when None,
            the first pipeline this telemetry is attached to binds its
            own :class:`~repro.dpdk.clock.VirtualClock`.
        max_traces: tracer ring-buffer capacity.
        detail_sample: trace packet-level spans on every Nth worker
            poll (1 = every poll, 0 = burst-level spans only). See
            :class:`~repro.obs.trace.Tracer`.
    """

    def __init__(self, clock=None, max_traces: int = 256, detail_sample: int = 32):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            clock=clock,
            max_traces=max_traces,
            registry=self.registry,
            detail_sample=detail_sample,
        )
        self.exporter: Optional[TelemetryExporter] = None
        self.profiler: Optional[StageProfiler] = None
        self.clock = clock

    def enable_profiler(
        self, sample_every: int = DEFAULT_CALL_SAMPLE
    ) -> StageProfiler:
        """Attach a stage profiler (idempotent); the stack builder
        binds it to the assembled stage graph and the registry."""
        if self.profiler is None:
            self.profiler = StageProfiler(sample_every=sample_every)
            self.profiler.bind_registry(self.registry)
        return self.profiler

    def bind_clock(self, clock) -> None:
        """Adopt *clock*; a no-op if one is already bound."""
        if self.clock is None:
            self.clock = clock
            self.tracer.bind_clock(clock)

    def export_to(
        self, tsdb, interval_ns: int = DEFAULT_EXPORT_INTERVAL_NS
    ) -> TelemetryExporter:
        """Attach a periodic self-monitoring exporter writing to *tsdb*."""
        self.exporter = TelemetryExporter(self.registry, tsdb, interval_ns=interval_ns)
        return self.exporter

    def tick(self, now_ns: int) -> int:
        """Drive the exporter, if any; returns points written."""
        if self.exporter is None:
            return 0
        return self.exporter.maybe_export(now_ns)

    def flush(self, now_ns: Optional[int] = None) -> int:
        """Force a final export (end of a run); returns points written."""
        if self.exporter is None:
            return 0
        if now_ns is None:
            now_ns = self.clock.now_ns if self.clock is not None else 0
        return self.exporter.export(now_ns)
