"""Empirical CDFs and the Kolmogorov–Smirnov distance.

The drift analysis compares a path's latency population between time
windows: a large KS distance means the path's behaviour changed (new
route, congestion onset, the firewall glitch) even when means barely
move.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence


class EmpiricalCdf:
    """The step CDF of a sample set."""

    def __init__(self, samples: Sequence[float]):
        if not samples:
            raise ValueError("empty sample set")
        self._sorted: List[float] = sorted(samples)
        self._n = len(self._sorted)

    def __len__(self) -> int:
        return self._n

    def evaluate(self, value: float) -> float:
        """P(X <= value)."""
        return bisect.bisect_right(self._sorted, value) / self._n

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]), by inverted step function."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of [0, 1]")
        if q == 0.0:
            return self._sorted[0]
        index = min(self._n - 1, max(0, int(q * self._n + 0.5) - 1))
        return self._sorted[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def values(self) -> List[float]:
        """The sorted underlying samples (read-only copy)."""
        return list(self._sorted)


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic: sup |F_a − F_b|."""
    cdf_a = a if isinstance(a, EmpiricalCdf) else EmpiricalCdf(a)
    cdf_b = b if isinstance(b, EmpiricalCdf) else EmpiricalCdf(b)
    distance = 0.0
    for value in set(cdf_a.values) | set(cdf_b.values):
        gap = abs(cdf_a.evaluate(value) - cdf_b.evaluate(value))
        if gap > distance:
            distance = gap
    return distance


def ks_significant(a: Sequence[float], b: Sequence[float], alpha: float = 0.01) -> bool:
    """Whether the two samples differ at level *alpha* (asymptotic).

    Uses the standard critical-value approximation
    ``c(α)·sqrt((n+m)/(n·m))`` with c(0.01)≈1.63, c(0.05)≈1.36.
    """
    critical = {0.10: 1.22, 0.05: 1.36, 0.01: 1.63, 0.001: 1.95}.get(alpha)
    if critical is None:
        raise ValueError(f"unsupported alpha {alpha}")
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("empty sample set")
    threshold = critical * ((n + m) / (n * m)) ** 0.5
    return ks_distance(a, b) > threshold
