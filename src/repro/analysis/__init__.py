"""Offline latency analysis — the paper's "for further analysis".

Ruru "aggregates statistics by source and destination locations, and
AS numbers for further analysis"; its reference for what that analysis
looks like is Fontugne, Mazel and Fukuda's empirical mixture model for
large-scale RTT measurements (the paper's [2]): RTT populations
decompose into a few lognormal modes, and mode changes reveal path
changes and congestion states.

* :mod:`repro.analysis.mixture` — 1-D EM fitting of lognormal mixtures
  with BIC model selection.
* :mod:`repro.analysis.cdf` — empirical CDFs, quantiles, and the
  Kolmogorov–Smirnov distance used to compare measurement populations.
* :mod:`repro.analysis.report` — per-path analysis over a measurement
  set: fitted modes, multimodality flags, and population drift between
  time windows.
"""

from repro.analysis.mixture import FittedComponent, MixtureFit, fit_lognormal_mixture
from repro.analysis.cdf import EmpiricalCdf, ks_distance
from repro.analysis.report import PathModeReport, analyze_paths, compare_windows

__all__ = [
    "FittedComponent",
    "MixtureFit",
    "fit_lognormal_mixture",
    "EmpiricalCdf",
    "ks_distance",
    "PathModeReport",
    "analyze_paths",
    "compare_windows",
]
