"""Lognormal mixture fitting by expectation-maximization.

Following Fontugne et al., an RTT population is modelled as a mixture
of lognormal modes: working in ``log(rtt)`` space this is a 1-D
Gaussian mixture, fitted here with plain EM. :func:`fit_lognormal_mixture`
fits a fixed component count; :func:`select_components` sweeps *k* and
picks by BIC, which is how "how many paths does this pair actually
use?" gets answered from data.

Everything is deterministic given the seed and pure Python.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

_LOG_2PI = math.log(2 * math.pi)
_MIN_SIGMA = 1e-3


@dataclass(frozen=True)
class FittedComponent:
    """One lognormal mode.

    Attributes:
        weight: mixing proportion (sums to 1 across the fit).
        mu / sigma: parameters in log-space.
    """

    weight: float
    mu: float
    sigma: float

    @property
    def median_ms(self) -> float:
        """The mode's median in original (ms) units."""
        return math.exp(self.mu)

    def log_density(self, log_value: float) -> float:
        z = (log_value - self.mu) / self.sigma
        return -0.5 * (z * z + _LOG_2PI) - math.log(self.sigma)


@dataclass
class MixtureFit:
    """A fitted mixture plus its quality metrics."""

    components: List[FittedComponent]
    log_likelihood: float
    iterations: int
    sample_count: int

    @property
    def k(self) -> int:
        return len(self.components)

    @property
    def bic(self) -> float:
        """Bayesian information criterion (lower is better).

        A k-component 1-D mixture has 3k−1 free parameters.
        """
        parameters = 3 * self.k - 1
        return parameters * math.log(self.sample_count) - 2 * self.log_likelihood

    @property
    def dominant(self) -> FittedComponent:
        """The highest-weight mode."""
        return max(self.components, key=lambda c: c.weight)

    def significant_modes(self, min_weight: float = 0.05) -> List[FittedComponent]:
        """Modes carrying at least *min_weight*, sorted by median."""
        modes = [c for c in self.components if c.weight >= min_weight]
        return sorted(modes, key=lambda c: c.mu)

    def density_ms(self, value_ms: float) -> float:
        """Mixture density at *value_ms* (in original units)."""
        if value_ms <= 0:
            return 0.0
        log_value = math.log(value_ms)
        total = sum(
            c.weight * math.exp(c.log_density(log_value)) for c in self.components
        )
        return total / value_ms  # change of variables d(log x)/dx


def _log_sum_exp(values: Sequence[float]) -> float:
    peak = max(values)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(sum(math.exp(v - peak) for v in values))


def fit_lognormal_mixture(
    samples_ms: Sequence[float],
    k: int = 2,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    seed: int = 0,
) -> MixtureFit:
    """Fit a *k*-component lognormal mixture to RTT samples (ms).

    Initialization spreads component means across the sample quantiles
    (deterministic), with a seeded jitter to break ties.

    Raises:
        ValueError: fewer samples than components, or non-positive
            samples (RTTs cannot be ≤ 0).
    """
    if k < 1:
        raise ValueError("need at least one component")
    if len(samples_ms) < max(2 * k, 3):
        raise ValueError(f"too few samples ({len(samples_ms)}) for k={k}")
    if any(value <= 0 for value in samples_ms):
        raise ValueError("RTT samples must be positive")

    data = sorted(math.log(value) for value in samples_ms)
    n = len(data)
    rng = random.Random(seed)

    # Quantile-spread initialization.
    spread = max((data[-1] - data[0]) / (2 * k), _MIN_SIGMA)
    mus = [
        data[min(n - 1, int((i + 0.5) * n / k))] + rng.uniform(-0.01, 0.01)
        for i in range(k)
    ]
    sigmas = [spread] * k
    weights = [1.0 / k] * k

    previous_ll = -math.inf
    iterations = 0
    responsibilities = [[0.0] * k for _ in range(n)]
    for iterations in range(1, max_iterations + 1):
        # E step.
        log_likelihood = 0.0
        for i, x in enumerate(data):
            log_terms = [
                math.log(weights[j]) + FittedComponent(
                    weights[j], mus[j], sigmas[j]
                ).log_density(x)
                for j in range(k)
            ]
            norm = _log_sum_exp(log_terms)
            log_likelihood += norm
            for j in range(k):
                responsibilities[i][j] = math.exp(log_terms[j] - norm)

        # M step.
        for j in range(k):
            total = sum(responsibilities[i][j] for i in range(n))
            if total < 1e-9:
                # Dead component: re-seed it on a random sample.
                mus[j] = data[rng.randrange(n)]
                sigmas[j] = spread
                weights[j] = 1.0 / n
                continue
            weights[j] = total / n
            mus[j] = sum(responsibilities[i][j] * data[i] for i in range(n)) / total
            variance = sum(
                responsibilities[i][j] * (data[i] - mus[j]) ** 2 for i in range(n)
            ) / total
            sigmas[j] = max(math.sqrt(variance), _MIN_SIGMA)

        if abs(log_likelihood - previous_ll) < tolerance * max(1.0, abs(previous_ll)):
            previous_ll = log_likelihood
            break
        previous_ll = log_likelihood

    components = sorted(
        (FittedComponent(weights[j], mus[j], sigmas[j]) for j in range(k)),
        key=lambda c: c.mu,
    )
    return MixtureFit(
        components=list(components),
        log_likelihood=previous_ll,
        iterations=iterations,
        sample_count=n,
    )


def select_components(
    samples_ms: Sequence[float],
    max_k: int = 4,
    seed: int = 0,
) -> MixtureFit:
    """Fit k = 1..max_k and return the BIC-best mixture."""
    best: Optional[MixtureFit] = None
    for k in range(1, max_k + 1):
        if len(samples_ms) < max(2 * k, 3):
            break
        fit = fit_lognormal_mixture(samples_ms, k=k, seed=seed)
        if best is None or fit.bic < best.bic:
            best = fit
    if best is None:
        raise ValueError("not enough samples to fit any mixture")
    return best
