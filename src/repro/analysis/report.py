"""Per-path analysis over a measurement population.

Applies the mixture methodology to Ruru's output: group enriched
measurements by (src, dst) pair, fit each pair's latency population,
flag multimodal paths (multiple route/congestion states), and compare
time windows for drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cdf import EmpiricalCdf, ks_distance, ks_significant
from repro.analysis.mixture import FittedComponent, MixtureFit, select_components
from repro.analytics.enricher import EnrichedMeasurement

PairKey = Tuple[str, str]

MIN_SAMPLES = 20


@dataclass
class PathModeReport:
    """What the mixture fit says about one path."""

    pair: PairKey
    sample_count: int
    fit: MixtureFit
    median_ms: float
    p95_ms: float

    @property
    def modes(self) -> List[FittedComponent]:
        return self.fit.significant_modes()

    @property
    def is_multimodal(self) -> bool:
        """More than one significant mode: the path has distinct
        latency states (alternate routes, recurring congestion)."""
        return len(self.modes) > 1

    def mode_summary(self) -> str:
        parts = [
            f"{mode.median_ms:.1f}ms({mode.weight:.0%})" for mode in self.modes
        ]
        return " + ".join(parts)


def _group_by_pair(
    measurements: Iterable[EnrichedMeasurement],
) -> Dict[PairKey, List[float]]:
    groups: Dict[PairKey, List[float]] = {}
    for measurement in measurements:
        groups.setdefault(measurement.location_pair, []).append(
            measurement.total_ms
        )
    return groups


def analyze_paths(
    measurements: Iterable[EnrichedMeasurement],
    min_samples: int = MIN_SAMPLES,
    max_components: int = 3,
    seed: int = 0,
) -> List[PathModeReport]:
    """Fit every sufficiently-sampled path; reports sorted by volume."""
    reports: List[PathModeReport] = []
    for pair, samples in _group_by_pair(measurements).items():
        if len(samples) < min_samples:
            continue
        fit = select_components(samples, max_k=max_components, seed=seed)
        cdf = EmpiricalCdf(samples)
        reports.append(PathModeReport(
            pair=pair,
            sample_count=len(samples),
            fit=fit,
            median_ms=cdf.median,
            p95_ms=cdf.quantile(0.95),
        ))
    reports.sort(key=lambda r: r.sample_count, reverse=True)
    return reports


@dataclass
class WindowDrift:
    """Population change of one pair between two time windows."""

    pair: PairKey
    ks: float
    significant: bool
    before_median_ms: float
    after_median_ms: float

    @property
    def median_shift_ms(self) -> float:
        return self.after_median_ms - self.before_median_ms


def compare_windows(
    before: Iterable[EnrichedMeasurement],
    after: Iterable[EnrichedMeasurement],
    min_samples: int = MIN_SAMPLES,
    alpha: float = 0.01,
) -> List[WindowDrift]:
    """KS-compare each pair's population across two windows.

    Returns drifts for pairs sampled in both windows, most-drifted
    first — the 'what changed overnight?' question an operator asks.
    """
    groups_before = _group_by_pair(before)
    groups_after = _group_by_pair(after)
    drifts: List[WindowDrift] = []
    for pair in groups_before.keys() & groups_after.keys():
        a, b = groups_before[pair], groups_after[pair]
        if len(a) < min_samples or len(b) < min_samples:
            continue
        drifts.append(WindowDrift(
            pair=pair,
            ks=ks_distance(a, b),
            significant=ks_significant(a, b, alpha=alpha),
            before_median_ms=EmpiricalCdf(a).median,
            after_median_ms=EmpiricalCdf(b).median,
        ))
    drifts.sort(key=lambda d: d.ks, reverse=True)
    return drifts
