"""Deterministic fault injection for the Ruru pipeline.

Everything here is seed-driven: a :class:`FaultProfile` says *what can
go wrong and how often*, a :class:`FaultInjector` turns that into
per-stage decision streams from one seed, the adapters splice those
decisions into real components, and :class:`ChaosHarness` runs a full
pipeline + analytics stack under a named profile and checks that the
resilience layer absorbed every fault (see :mod:`repro.resilience`).

Same (profile, seed) → byte-identical fault sequence → identical run
counts. That determinism is what makes chaos testable in CI.
"""

from repro.faults.adapters import (
    FaultyPushSocket,
    FlakyAsnDatabase,
    FlakyGeoDatabase,
    FlakyTimeSeriesDatabase,
    LookupFailure,
    TsdbWriteError,
)
from repro.faults.chaos import ChaosHarness, ChaosReport, run_chaos
from repro.faults.crashpoints import CRASH_POINTS, CrashSchedule, SimulatedCrash
from repro.faults.injector import FaultInjector, WorkerCrash
from repro.faults.profiles import PROFILES, FaultProfile, get_profile

__all__ = [
    "CRASH_POINTS",
    "ChaosHarness",
    "ChaosReport",
    "CrashSchedule",
    "FaultInjector",
    "FaultProfile",
    "FaultyPushSocket",
    "FlakyAsnDatabase",
    "FlakyGeoDatabase",
    "FlakyTimeSeriesDatabase",
    "LookupFailure",
    "PROFILES",
    "SimulatedCrash",
    "TsdbWriteError",
    "WorkerCrash",
    "get_profile",
    "run_chaos",
]
