"""Fault adapters: splice injector decisions into real components.

Each adapter wraps one production object with the same call surface,
so the pipeline wiring is unchanged — the chaos harness swaps the
adapter in where the real object would go. Faults are *raised or
applied here*, and the resilience layer downstream is what must absorb
them; the adapters themselves never swallow anything.
"""

from __future__ import annotations

from typing import Iterable

from repro.faults.injector import FaultInjector
from repro.mq.frames import Message
from repro.mq.socket import PushSocket
from repro.tsdb.point import Point


class LookupFailure(RuntimeError):
    """A geo/ASN lookup raised mid-enrichment (database reload, I/O)."""


class TsdbWriteError(RuntimeError):
    """A point write was rejected by the store."""


class FaultyPushSocket:
    """PUSH socket wrapper corrupting the mq delivery boundary.

    Drops vanish the message (a broker restart), corruption and
    truncation mangle the payload frame (wire damage — the decoder
    must dead-letter these), duplication re-sends (at-least-once
    delivery after an ack loss).
    """

    STAGE = "mq"

    def __init__(self, inner: PushSocket, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def send(self, message: Message) -> bool:
        injector, profile = self.injector, self.injector.profile
        if injector.decide(self.STAGE, "drop", profile.mq_drop_rate):
            return False
        if message.payload and injector.decide(
            self.STAGE, "corrupt", profile.mq_corrupt_rate
        ):
            message = Message.with_topic(
                message.topic, injector.corrupt_bytes(self.STAGE, message.payload[0])
            )
        if message.payload and injector.decide(
            self.STAGE, "truncate", profile.mq_truncate_rate
        ):
            message = Message.with_topic(
                message.topic, injector.truncate_bytes(self.STAGE, message.payload[0])
            )
        delivered = self.inner.send(message)
        if injector.decide(self.STAGE, "duplicate", profile.mq_duplicate_rate):
            self.inner.send(message)
        return delivered

    @property
    def sent(self) -> int:
        return self.inner.sent

    @property
    def dropped(self) -> int:
        return self.inner.dropped


class FlakyGeoDatabase:
    """Geo database whose lookups fail at a seeded rate."""

    STAGE = "enrich"

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def lookup(self, address: int):
        if self.injector.decide(
            self.STAGE, "geo_failure", self.injector.profile.geo_failure_rate
        ):
            raise LookupFailure("injected geo lookup failure")
        return self.inner.lookup(address)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class FlakyAsnDatabase:
    """ASN database whose lookups fail at a seeded rate."""

    STAGE = "enrich"

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def lookup(self, address: int):
        if self.injector.decide(
            self.STAGE, "asn_failure", self.injector.profile.asn_failure_rate
        ):
            raise LookupFailure("injected ASN lookup failure")
        return self.inner.lookup(address)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class FlakyTimeSeriesDatabase:
    """TSDB facade whose writes fail at a rate and during a brown-out.

    The brown-out window is keyed on *write time* — ``now_fn`` when the
    harness wires one in (the analytics service's virtual now), else
    the point's own timestamp — so a deferred write retried after the
    window clears actually succeeds, which is what lets the chaos
    report measure recovery.
    """

    STAGE = "tsdb"

    def __init__(self, inner, injector: FaultInjector, now_fn=None):
        self.inner = inner
        self.injector = injector
        self.now_fn = now_fn

    def _maybe_fail(self, fallback_ns: int) -> None:
        profile = self.injector.profile
        now_ns = self.now_fn() if self.now_fn is not None else fallback_ns
        if profile.tsdb_brownout_ns > 0:
            start = profile.tsdb_brownout_start_ns
            if start <= now_ns < start + profile.tsdb_brownout_ns:
                self.injector.decide(self.STAGE, "brownout", 1.0)
                raise TsdbWriteError("injected brown-out: store unavailable")
        if self.injector.decide(
            self.STAGE, "write_failure", profile.tsdb_failure_rate
        ):
            raise TsdbWriteError("injected write failure")

    def write(self, point: Point) -> None:
        self._maybe_fail(point.timestamp_ns)
        self.inner.write(point)

    def write_batch(self, points: Iterable[Point]) -> int:
        points = list(points)
        if points:
            # One decision per batch: a store rejects the request, not
            # individual points, and atomicity keeps retries simple.
            self._maybe_fail(points[0].timestamp_ns)
        return self.inner.write_batch(points)

    def __getattr__(self, name):
        return getattr(self.inner, name)
