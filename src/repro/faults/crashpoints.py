"""Deterministic kill -9 points at every stage boundary.

The fault profiles in this package model *component* misbehaviour —
drops, corruption, exceptions the resilience layer absorbs. A crash is
categorically different: the whole process dies mid-instruction and no
handler runs. :class:`SimulatedCrash` therefore derives from
``BaseException``, so the supervisor's ``except Exception`` (and every
other recovery path) is structurally unable to absorb it — exactly
like the real signal.

A :class:`CrashSchedule` arms one registered crash point: the *hit*-th
time execution reaches that boundary, the crash fires. Same
(point, hit, workload seed) → the process dies at the identical
instruction every run, which is what lets the recovery harness assert
invariants per crash point instead of hoping a random kill lands
somewhere interesting.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.stack.topology import crash_points

# Registered crash points, in pipeline order — derived from the stage
# topology, so a stage cannot declare a kill site the fault registry
# does not know about (and vice versa). Each stage wrapper, the
# durable TSDB and the checkpointer instrument the boundaries they own
# by calling ``schedule.reached(point)``.
CRASH_POINTS: Dict[str, str] = crash_points()


class SimulatedCrash(BaseException):
    """The process 'dies' here — nothing may catch and continue.

    BaseException, not Exception: a kill -9 never unwinds through
    application handlers, so neither does its simulation.
    """

    def __init__(self, point: str, hit: int):
        super().__init__(f"simulated kill -9 at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class CrashSchedule:
    """Arms at most one (point, hit) pair; counts every boundary pass.

    ``reached(point)`` is called by instrumented code at each boundary;
    it raises :class:`SimulatedCrash` when the armed point reaches its
    armed hit count, and is a cheap counter bump otherwise. ``passes``
    survives for post-mortem assertions ("the run really did cross
    mq.publish 40 times before dying").
    """

    def __init__(self):
        self._armed_point: Optional[str] = None
        self._armed_hit = 0
        self.passes: Dict[str, int] = {}
        self.fired: Optional[SimulatedCrash] = None

    def arm(self, point: str, hit: int = 1) -> "CrashSchedule":
        """Arm the schedule; *hit* is 1-based (first pass = hit 1)."""
        if point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; "
                f"registered: {', '.join(sorted(CRASH_POINTS))}"
            )
        if hit < 1:
            raise ValueError("hit is 1-based")
        self._armed_point = point
        self._armed_hit = hit
        return self

    def disarm(self) -> None:
        self._armed_point = None

    @property
    def armed_point(self) -> Optional[str]:
        return self._armed_point

    def will_fire(self, point: str) -> bool:
        """Would the next :meth:`reached` call for *point* crash?

        The checkpointer uses this to decide whether to leave a torn
        file behind before the crash (the ``checkpoint.mid`` torn-write
        simulation).
        """
        return (
            self.fired is None
            and point == self._armed_point
            and self.passes.get(point, 0) + 1 >= self._armed_hit
        )

    def reached(self, point: str) -> None:
        """Mark one pass over *point*; crash if the armed hit is due."""
        count = self.passes.get(point, 0) + 1
        self.passes[point] = count
        if (
            self.fired is None
            and point == self._armed_point
            and count >= self._armed_hit
        ):
            self.fired = SimulatedCrash(point, count)
            raise self.fired
