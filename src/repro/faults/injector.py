"""Deterministic, seed-driven fault injection.

One :class:`FaultInjector` per chaos run. Every stage boundary gets its
own :class:`random.Random` derived from ``(seed, stage)``, so adding a
fault at one boundary never perturbs the decision stream at another —
the property that makes chaos runs comparable across profiles and
bit-identical across repeats of the same seed.

The injector only *decides and mangles*; delivery stays with the real
components. Adapters in :mod:`repro.faults.adapters` splice the
decisions into the packet stream, the PUSH socket, the geo/ASN
databases and the TSDB.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.faults.profiles import FaultProfile
from repro.net.packet import Packet


class FaultInjector:
    """Seeded decisions + payload mangling for one chaos run."""

    def __init__(self, profile: FaultProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self._rngs: Dict[str, random.Random] = {}
        # (stage, kind) -> how many faults actually fired.
        self.injected: Dict[Tuple[str, str], int] = {}

    def rng(self, stage: str) -> random.Random:
        """The decision stream for one stage boundary."""
        rng = self._rngs.get(stage)
        if rng is None:
            rng = self._rngs[stage] = random.Random(f"{self.seed}:{stage}")
        return rng

    def decide(self, stage: str, kind: str, rate: float) -> bool:
        """Roll one fault decision; counts it when it fires.

        The roll is consumed even at rate 0 only if rate > 0 — a zero
        rate must not advance the RNG, so enabling one fault kind in a
        profile never shifts another kind's decision stream.
        """
        if rate <= 0.0:
            return False
        if self.rng(stage).random() < rate:
            key = (stage, kind)
            self.injected[key] = self.injected.get(key, 0) + 1
            return True
        return False

    def count(self, stage: str, kind: str) -> int:
        return self.injected.get((stage, kind), 0)

    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- byte mangling ------------------------------------------------------

    def corrupt_bytes(self, stage: str, data: bytes) -> bytes:
        """Flip 1–4 random bytes of *data*."""
        if not data:
            return data
        rng = self.rng(stage)
        out = bytearray(data)
        for _ in range(rng.randint(1, min(4, len(out)))):
            out[rng.randrange(len(out))] ^= rng.randint(1, 255)
        return bytes(out)

    def truncate_bytes(self, stage: str, data: bytes) -> bytes:
        """Cut *data* at a random interior point."""
        if len(data) < 2:
            return b""
        return data[: self.rng(stage).randint(1, len(data) - 1)]

    # -- NIC rx boundary ----------------------------------------------------

    def packet_stream(self, packets: Iterable[Packet]) -> Iterator[Packet]:
        """Apply rx faults to a packet stream, preserving timestamp order.

        Drops, truncations and bit flips act in place; duplicates are
        emitted back-to-back (a re-delivering tap); delays push a copy
        of the frame later in virtual time through a small reorder
        buffer so downstream still sees non-decreasing timestamps.
        """
        profile = self.profile
        stage = "nic.rx"
        delayed: List[Tuple[int, int, Packet]] = []  # (due_ns, tiebreak, pkt)
        tiebreak = 0
        for packet in packets:
            while delayed and delayed[0][0] <= packet.timestamp_ns:
                yield heapq.heappop(delayed)[2]
            if self.decide(stage, "drop", profile.packet_drop_rate):
                continue
            data = packet.data
            if self.decide(stage, "truncate", profile.packet_truncate_rate):
                data = self.truncate_bytes(stage, data)
            if self.decide(stage, "corrupt", profile.packet_corrupt_rate):
                data = self.corrupt_bytes(stage, data)
            if data is not packet.data:
                packet = Packet(data=data, timestamp_ns=packet.timestamp_ns)
            if self.decide(stage, "delay", profile.packet_delay_rate):
                delay_ns = self.rng(stage).randint(1, profile.packet_max_delay_ns)
                tiebreak += 1
                heapq.heappush(
                    delayed,
                    (
                        packet.timestamp_ns + delay_ns,
                        tiebreak,
                        Packet(
                            data=packet.data,
                            timestamp_ns=packet.timestamp_ns + delay_ns,
                        ),
                    ),
                )
                continue
            yield packet
            if self.decide(stage, "duplicate", profile.packet_duplicate_rate):
                yield packet
        while delayed:
            yield heapq.heappop(delayed)[2]

    # -- worker crash boundary ----------------------------------------------

    def crashy_poll(self, poll, role: str):
        """Wrap an lcore poll body to crash at the profile's rate.

        The crash fires *before* the poll runs, so no mbuf is ever
        half-processed — accepted packets stay in the ring for the
        post-restart poll, preserving count conservation.
        """
        rate = self.profile.worker_crash_rate
        if rate <= 0:
            return poll

        def unstable_poll() -> int:
            if self.decide("worker", "crash", rate):
                raise WorkerCrash(f"injected crash in {role}")
            return poll()

        return unstable_poll

    # -- reporting ----------------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Expose fired faults as ``ruru_faults_injected_total``."""
        injected = registry.counter(
            "ruru_faults_injected_total",
            help="Faults fired by the chaos injector, by stage and kind.",
            labels=("stage", "kind"),
        )

        def collect() -> None:
            for (stage, kind), count in self.injected.items():
                injected.labels(stage, kind).value = count

        registry.register_collector(collect)


class WorkerCrash(RuntimeError):
    """The injected failure mode for queue-worker poll bodies."""
