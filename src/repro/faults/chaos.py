"""The chaos harness: a full Ruru stack run under a named fault profile.

``ruru chaos --profile lossy-mq --seed 42`` and the chaos pytest suite
both come through here. The harness wires every fault adapter into a
real pipeline + analytics + resilience stack, replays a seeded traffic
scenario, and produces a :class:`ChaosReport` that answers the three
questions that matter:

1. **Did it survive?** — zero unhandled exceptions.
2. **Is every record accounted for?** — the count-conservation
   invariant ``ingested == processed + dropped + deadlettered``.
3. **Was degradation observable?** — retries, breaker episodes, DLQ
   contents and supervisor restarts, all also exposed through the
   telemetry registry.

Everything is seeded; two runs with the same (profile, seed) produce
identical counts, which the determinism check in the report verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.faults.profiles import FaultProfile
from repro.obs import Telemetry
from repro.resilience import ConservationLedger

NS_PER_S = 1_000_000_000


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    profile: FaultProfile
    seed: int
    unhandled: List[str]
    ledger: ConservationLedger
    pipeline_summary: Dict[str, float]
    faults_injected: Dict[Tuple[str, str], int]
    dlq_depth: int
    dlq_total: int
    dlq_summary: Dict[Tuple[str, str], int]
    supervisor_restarts: int
    retries: int
    degraded_published: int
    points_written: int
    points_lost: int
    breaker_opened: Dict[str, int]
    breaker_recovery_ns: Dict[str, List[int]] = field(default_factory=dict)
    frontend_received: int = 0
    frontend_degraded: int = 0
    overload_summary: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """Survived and conserved."""
        return not self.unhandled and self.ledger.ok

    def measurement_loss_rate(self) -> float:
        """Fraction of ingested records that did not publish."""
        if self.ledger.ingested == 0:
            return 0.0
        return 1.0 - self.ledger.processed / self.ledger.ingested

    def counts(self) -> Dict[str, int]:
        """The deterministic signature two same-seed runs must share."""
        out = {
            "ingested": self.ledger.ingested,
            "processed": self.ledger.processed,
            "dropped": self.ledger.dropped,
            "deadlettered": self.ledger.deadlettered,
            "dlq_total": self.dlq_total,
            "supervisor_restarts": self.supervisor_restarts,
            "retries": self.retries,
            "degraded_published": self.degraded_published,
            "points_written": self.points_written,
            "points_lost": self.points_lost,
            "frontend_received": self.frontend_received,
            "frontend_degraded": self.frontend_degraded,
            "faults_total": sum(self.faults_injected.values()),
        }
        for (stage, kind), count in sorted(self.faults_injected.items()):
            out[f"fault.{stage}.{kind}"] = count
        if self.overload_summary is not None:
            out["overload_level_max"] = self.overload_summary["level_max"]
            out["overload_transitions"] = self.overload_summary["transitions"]
            for key, count in sorted(self.overload_summary["shed"].items()):
                out[f"shed.{key}"] = count
        return out

    def render(self) -> str:
        """The ``ruru chaos`` report text."""
        lines = [
            f"chaos run: profile={self.profile.name!r} seed={self.seed}",
            f"  {self.profile.description}",
            "faults injected:",
        ]
        if self.faults_injected:
            for (stage, kind), count in sorted(self.faults_injected.items()):
                lines.append(f"  {stage:>8}.{kind:<14} {count:>8}")
        else:
            lines.append("  (none)")
        lines.append("conservation: " + str(self.ledger))
        lines.append(
            f"measurement loss: {self.measurement_loss_rate():.2%} "
            f"({self.degraded_published} published degraded)"
        )
        lines.append(
            f"dead letters: depth={self.dlq_depth} total={self.dlq_total}"
        )
        lines.append(f"supervisor restarts: {self.supervisor_restarts}")
        lines.append(
            f"tsdb: {self.points_written} points written, "
            f"{self.points_lost} lost, {self.retries} retries"
        )
        if self.overload_summary is not None:
            shed = self.overload_summary["shed"]
            lines.append(
                f"overload: peaked at level "
                f"{self.overload_summary['level_max']} "
                f"({self.overload_summary['transitions']} transitions), "
                f"shed {sum(shed.values())}"
                + (
                    " (" + ", ".join(f"{k}={v}" for k, v in sorted(shed.items())) + ")"
                    if shed
                    else ""
                )
            )
        for name, opened in sorted(self.breaker_opened.items()):
            recoveries = self.breaker_recovery_ns.get(name, [])
            recovered = ", ".join(f"{t / NS_PER_S:.2f}s" for t in recoveries)
            lines.append(
                f"breaker {name!r}: opened {opened}x"
                + (f", recovered in [{recovered}]" if recovered else "")
            )
        if self.unhandled:
            lines.append("UNHANDLED EXCEPTIONS:")
            lines.extend(f"  {text}" for text in self.unhandled)
        lines.append("verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


class ChaosHarness:
    """Build and run one chaos scenario end to end.

    A thin configuration of the ``chaos`` stack preset
    (:func:`repro.stack.build_chaos_stack`): all wiring lives in the
    composition root; this class only replays the scenario and folds
    the resilience counters into a :class:`ChaosReport`.

    Args:
        profile: a registered profile name or a :class:`FaultProfile`.
        seed: drives the workload, every fault decision stream, and
            retry jitter — the whole run replays from this one number.
        duration_s / rate: traffic scenario shape.
        queues: RSS queues (and therefore workers under crash fire).
        telemetry: share a handle; one is created if omitted.
    """

    def __init__(
        self,
        profile: Union[str, FaultProfile],
        seed: int = 42,
        duration_s: float = 8.0,
        rate: float = 40.0,
        queues: int = 2,
        telemetry: Optional[Telemetry] = None,
        overload: bool = False,
    ):
        # Lazy: repro.stack.builder imports the fault adapters, which
        # land back in this package's __init__.
        from repro.stack.builder import build_chaos_stack

        self.stack = build_chaos_stack(
            profile,
            seed=seed,
            duration_s=duration_s,
            rate=rate,
            queues=queues,
            telemetry=telemetry,
            overload=overload,
        )
        self.profile = self.stack.profile
        self.seed = seed
        self.injector = self.stack.injector
        self.telemetry = self.stack.telemetry
        self.generator = self.stack.generator
        self.resilience = self.stack.resilience
        self.supervisor = self.stack.supervisor
        self.service = self.stack.service
        self.frontend = self.stack.frontend
        self.pipeline = self.stack.pipeline

    def run(self, shutdown_flag=None) -> ChaosReport:
        """Replay the scenario under faults; never raises.

        Args:
            shutdown_flag: optional zero-arg callable polled between
                feed batches; truthy → stop feeding and drain what is
                already in flight (``ruru chaos`` wires SIGINT/SIGTERM
                here, so an interrupted chaos run still reconciles).
        """
        unhandled: List[str] = []
        try:
            self.pipeline.run_packets(
                self.stack.packet_stream(), shutdown_flag=shutdown_flag
            )
            self.service.finish()
        except Exception as exc:  # noqa: BLE001 — the report carries it
            unhandled.append(repr(exc))

        frontend_stage = self.stack.graph.get("frontend")
        try:
            frontend_stage.pump()
        except Exception as exc:  # noqa: BLE001
            unhandled.append(repr(exc))

        res = self.resilience
        return ChaosReport(
            profile=self.profile,
            seed=self.seed,
            unhandled=unhandled,
            ledger=self.service.conservation_ledger(),
            pipeline_summary=self.pipeline.stats.summary(),
            faults_injected=dict(self.injector.injected),
            dlq_depth=len(res.dlq),
            dlq_total=res.dlq.total,
            dlq_summary=res.dlq.summary(),
            supervisor_restarts=self.supervisor.total_restarts,
            retries=res.retries,
            degraded_published=res.degraded_published,
            points_written=res.points_written,
            points_lost=res.points_lost,
            breaker_opened={
                breaker.name: breaker.opened_count for breaker in res.breakers
            },
            breaker_recovery_ns={
                breaker.name: breaker.recovery_times_ns()
                for breaker in res.breakers
            },
            frontend_received=frontend_stage.received,
            frontend_degraded=frontend_stage.degraded,
            overload_summary=(
                self.stack.overload.summary()
                if self.stack.overload is not None
                else None
            ),
        )


def run_chaos(
    profile: Union[str, FaultProfile], seed: int = 42, **kwargs
) -> ChaosReport:
    """One-call chaos run (what the CLI and the smoke test use)."""
    return ChaosHarness(profile, seed=seed, **kwargs).run()
