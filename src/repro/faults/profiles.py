"""Named fault profiles: how a stage boundary misbehaves, and how much.

A profile is a pure-data description of adverse conditions — rates per
fault kind per stage boundary — that the :class:`~repro.faults.injector.
FaultInjector` turns into seeded decisions. Profiles are frozen and
registered by name so ``ruru chaos --profile lossy-mq`` and the pytest
chaos suite speak the same vocabulary.

Stage boundaries covered (Fig 2 of the paper, left to right):

* **NIC rx** — frames dropped, truncated, bit-flipped, duplicated or
  delayed before the pipeline sees them (snaplen cuts, optic errors,
  tap buffer overruns).
* **mq delivery** — encoded latency records dropped, corrupted or
  duplicated between the DPDK stage and analytics (broker restarts,
  wire corruption, at-least-once re-delivery).
* **enrichment** — geo/ASN lookups raising (database reload, NFS
  hiccup under the lookup files).
* **tsdb writes** — point writes raising, at a steady rate or during a
  brown-out window (compaction stall, disk saturation).
* **workers** — queue-worker poll bodies crashing outright.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

NS_PER_S = 1_000_000_000
NS_PER_MS = 1_000_000


@dataclass(frozen=True)
class FaultProfile:
    """Rates (probabilities per event) for every injectable fault."""

    name: str
    description: str = ""
    # -- simulated-NIC rx ---------------------------------------------------
    packet_drop_rate: float = 0.0
    packet_truncate_rate: float = 0.0
    packet_corrupt_rate: float = 0.0
    packet_duplicate_rate: float = 0.0
    packet_delay_rate: float = 0.0
    packet_max_delay_ns: int = 50 * NS_PER_MS
    # -- mq broker/socket delivery ------------------------------------------
    mq_drop_rate: float = 0.0
    mq_corrupt_rate: float = 0.0
    mq_truncate_rate: float = 0.0
    mq_duplicate_rate: float = 0.0
    # -- analytics enrichment -----------------------------------------------
    geo_failure_rate: float = 0.0
    asn_failure_rate: float = 0.0
    # -- tsdb writes --------------------------------------------------------
    tsdb_failure_rate: float = 0.0
    tsdb_brownout_start_ns: int = 0
    tsdb_brownout_ns: int = 0  # 0 = no brown-out window
    # -- queue workers ------------------------------------------------------
    worker_crash_rate: float = 0.0

    def __post_init__(self):
        for spec in fields(self):
            if spec.name.endswith("_rate"):
                value = getattr(self, spec.name)
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"{spec.name} must be a probability, got {value}"
                    )

    def active_faults(self) -> Dict[str, float]:
        """The non-zero rates, for report headers."""
        out = {}
        for spec in fields(self):
            if spec.name.endswith("_rate"):
                value = getattr(self, spec.name)
                if value > 0:
                    out[spec.name] = value
        if self.tsdb_brownout_ns > 0:
            out["tsdb_brownout_s"] = self.tsdb_brownout_ns / NS_PER_S
        return out


PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(
            name="clean",
            description="No faults — the control run.",
        ),
        FaultProfile(
            name="lossy-mq",
            description=(
                "Message bus losing and corrupting encoded latency records "
                "between the DPDK stage and analytics."
            ),
            mq_drop_rate=0.05,
            mq_corrupt_rate=0.05,
            mq_truncate_rate=0.03,
            mq_duplicate_rate=0.02,
        ),
        FaultProfile(
            name="corrupt-wire",
            description="Damaged frames at the tap: truncation and bit flips.",
            packet_truncate_rate=0.05,
            packet_corrupt_rate=0.05,
            packet_drop_rate=0.02,
            packet_duplicate_rate=0.01,
            packet_delay_rate=0.05,
        ),
        FaultProfile(
            name="flaky-geo",
            description="Geo/ASN lookups failing hard (database reload).",
            geo_failure_rate=0.30,
            asn_failure_rate=0.10,
        ),
        FaultProfile(
            name="tsdb-brownout",
            description=(
                "The measurement store rejects every write for a 2 s window "
                "mid-run, plus background write flakiness."
            ),
            tsdb_failure_rate=0.02,
            tsdb_brownout_start_ns=3 * NS_PER_S,
            tsdb_brownout_ns=2 * NS_PER_S,
        ),
        FaultProfile(
            name="crashy-workers",
            description="Queue-worker poll bodies crash at random.",
            worker_crash_rate=0.10,
        ),
        FaultProfile(
            name="monsoon",
            description="Everything at once, gently — the full chaos soak.",
            packet_truncate_rate=0.02,
            packet_corrupt_rate=0.02,
            packet_drop_rate=0.01,
            packet_delay_rate=0.03,
            mq_drop_rate=0.02,
            mq_corrupt_rate=0.02,
            mq_duplicate_rate=0.01,
            geo_failure_rate=0.10,
            tsdb_failure_rate=0.02,
            tsdb_brownout_start_ns=2 * NS_PER_S,
            tsdb_brownout_ns=NS_PER_S,
            worker_crash_rate=0.05,
        ),
    )
}


def get_profile(name: str) -> FaultProfile:
    """Look up a registered profile; ValueError lists the valid names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None
