"""Shared streaming primitives: EWMA baselines and windowed rates.

Detectors must run at stream rate with O(keys) memory — no history
replays. The two primitives here give them that: an exponentially
weighted mean/variance per key, and tumbling-window counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


@dataclass
class _EwmaCell:
    mean: float = 0.0
    variance: float = 0.0
    samples: int = 0


class EwmaBaseline(Generic[K]):
    """Per-key exponentially weighted mean and variance.

    Args:
        alpha: smoothing factor (weight of the newest sample).
        warmup: samples per key before the baseline is trusted;
            :meth:`is_anomalous` never fires during warmup.
    """

    def __init__(self, alpha: float = 0.05, warmup: int = 30):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if warmup < 1:
            raise ValueError("warmup must be at least 1 sample")
        self.alpha = alpha
        self.warmup = warmup
        self._cells: Dict[K, _EwmaCell] = {}

    def observe(self, key: K, value: float) -> None:
        """Fold one sample into *key*'s baseline."""
        cell = self._cells.get(key)
        if cell is None:
            cell = _EwmaCell(mean=value)
            self._cells[key] = cell
        delta = value - cell.mean
        cell.mean += self.alpha * delta
        cell.variance = (1 - self.alpha) * (cell.variance + self.alpha * delta * delta)
        cell.samples += 1

    def mean(self, key: K) -> Optional[float]:
        cell = self._cells.get(key)
        return cell.mean if cell else None

    def stddev(self, key: K) -> Optional[float]:
        cell = self._cells.get(key)
        return math.sqrt(cell.variance) if cell else None

    def is_warm(self, key: K) -> bool:
        cell = self._cells.get(key)
        return cell is not None and cell.samples >= self.warmup

    def zscore(self, key: K, value: float) -> Optional[float]:
        """How many stddevs *value* sits above the baseline; None
        during warmup. A tiny variance floor avoids division blowups
        on constant streams.
        """
        cell = self._cells.get(key)
        if cell is None or cell.samples < self.warmup:
            return None
        stddev = math.sqrt(max(cell.variance, 1e-12))
        return (value - cell.mean) / stddev

    def keys(self):
        return self._cells.keys()

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot every per-key cell (keys tagged if tuples)."""
        return {
            "alpha": self.alpha,
            "warmup": self.warmup,
            "cells": [
                [_pack_key(key), cell.mean, cell.variance, cell.samples]
                for key, cell in self._cells.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.alpha = float(state["alpha"])
        self.warmup = int(state["warmup"])
        self._cells = {}
        for packed, mean, variance, samples in state["cells"]:
            self._cells[_unpack_key(packed)] = _EwmaCell(
                mean=float(mean), variance=float(variance), samples=int(samples)
            )


class WindowedRate(Generic[K]):
    """Tumbling-window counters per key.

    ``add`` returns the windows that *closed* as time advanced, so a
    caller can inspect completed windows exactly once.
    """

    def __init__(self, window_ns: int):
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.window_ns = window_ns
        self._current_start: Optional[int] = None
        self._counts: Dict[K, int] = {}

    def add(self, key: K, timestamp_ns: int, count: int = 1):
        """Count an occurrence; returns (window_start, counts) for the
        window that just closed, or None."""
        window_start = (timestamp_ns // self.window_ns) * self.window_ns
        closed: Optional[Tuple[int, Dict[K, int]]] = None
        if self._current_start is None:
            self._current_start = window_start
        elif window_start > self._current_start:
            closed = (self._current_start, self._counts)
            self._counts = {}
            self._current_start = window_start
        self._counts[key] = self._counts.get(key, 0) + count
        return closed

    def flush(self):
        """Close the in-progress window (end of stream)."""
        if self._current_start is None:
            return None
        closed = (self._current_start, self._counts)
        self._counts = {}
        self._current_start = None
        return closed

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the open window's counters (keys tagged if tuples)."""
        return {
            "window_ns": self.window_ns,
            "current_start": self._current_start,
            "counts": [
                [_pack_key(key), count] for key, count in self._counts.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.window_ns = int(state["window_ns"])
        start = state["current_start"]
        self._current_start = None if start is None else int(start)
        self._counts = {
            _unpack_key(packed): int(count) for packed, count in state["counts"]
        }


def _pack_key(key):
    """JSON-safe form of a baseline key (tuples become tagged lists)."""
    if isinstance(key, tuple):
        return {"tuple": list(key)}
    return key


def _unpack_key(packed):
    """Inverse of :func:`_pack_key`."""
    if isinstance(packed, dict):
        return tuple(packed["tuple"])
    return packed
