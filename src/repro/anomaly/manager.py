"""Fan one measurement stream into every detector; collect events.

The manager is the "simple Ruru module" shape the paper describes:
subscribe to the enriched stream, run detectors, surface events to the
operator (here: a list plus an optional callback, e.g. a WebSocket
alert channel).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.analytics.enricher import EnrichedMeasurement
from repro.anomaly.conn_count import ConnectionCountDetector
from repro.anomaly.events import AnomalyEvent, Severity
from repro.anomaly.latency_spike import LatencySpikeDetector
from repro.anomaly.path_drift import PathDriftDetector
from repro.anomaly.syn_flood import SynFloodDetector
from repro.net.parser import ParsedPacket

AlertSink = Callable[[AnomalyEvent], None]


class AnomalyManager:
    """Bundles the three paper detectors behind two feed points.

    * :meth:`observe_measurement` — enriched measurements (latency
      spikes, connection surges); subscribe it to the analytics PUB.
    * :meth:`observe_packet` — parsed packets (SYN floods); register
      it as a pipeline worker observer.
    """

    def __init__(
        self,
        latency: Optional[LatencySpikeDetector] = None,
        syn_flood: Optional[SynFloodDetector] = None,
        conn_count: Optional[ConnectionCountDetector] = None,
        path_drift: Optional[PathDriftDetector] = None,
        with_path_drift: bool = True,
        alert_sink: Optional[AlertSink] = None,
    ):
        self.latency = latency or LatencySpikeDetector()
        self.syn_flood = syn_flood or SynFloodDetector()
        self.conn_count = conn_count or ConnectionCountDetector()
        self.path_drift = path_drift or (
            PathDriftDetector() if with_path_drift else None
        )
        self.alert_sink = alert_sink
        self.alerts_raised = 0

    def observe_measurement(self, measurement: EnrichedMeasurement) -> None:
        """Feed one enriched measurement to the measurement detectors."""
        events = [
            self.latency.observe(measurement),
            self.conn_count.observe(measurement),
        ]
        if self.path_drift is not None:
            events.append(self.path_drift.observe(measurement))
        for event in events:
            if event is not None:
                self._alert(event)

    def observe_packet(self, packet: ParsedPacket) -> None:
        """Feed one parsed packet to the packet detectors."""
        before = len(self.syn_flood.events)
        self.syn_flood.on_packet(packet)
        for event in self.syn_flood.events[before:]:
            self._alert(event)

    def _alert(self, event: AnomalyEvent) -> None:
        self.alerts_raised += 1
        if self.alert_sink is not None:
            self.alert_sink(event)

    def finish(self, now_ns: Optional[int] = None) -> List[AnomalyEvent]:
        """Close all detectors; returns every event, most severe first."""
        events: List[AnomalyEvent] = []
        events.extend(self.latency.finish(now_ns))
        events.extend(self.syn_flood.finish(now_ns))
        events.extend(self.conn_count.finish(now_ns))
        if self.path_drift is not None:
            events.extend(self.path_drift.finish(now_ns))
        events.sort(key=lambda e: (-int(e.severity), e.start_ns))
        return events

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot every detector's learned state (baselines, windows,
        reservoirs) for a checkpoint. Confirmed events were already
        delivered through the alert sink; unconfirmed groups restart
        clean — see the per-detector docstrings."""
        return {
            "alerts_raised": self.alerts_raised,
            "latency": self.latency.state_dict(),
            "syn_flood": self.syn_flood.state_dict(),
            "conn_count": self.conn_count.state_dict(),
            "path_drift": (
                self.path_drift.state_dict()
                if self.path_drift is not None
                else None
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.alerts_raised = int(state["alerts_raised"])
        self.latency.load_state(state["latency"])
        self.syn_flood.load_state(state["syn_flood"])
        self.conn_count.load_state(state["conn_count"])
        if self.path_drift is not None and state["path_drift"] is not None:
            self.path_drift.load_state(state["path_drift"])

    def events_of_kind(self, kind: str) -> List[AnomalyEvent]:
        """All events a given detector produced so far."""
        pools = {
            "latency-spike": self.latency.events,
            "syn-flood": self.syn_flood.events,
            "connection-surge": self.conn_count.events,
            "path-drift": self.path_drift.events if self.path_drift else [],
        }
        return list(pools.get(kind, []))
