"""Path-drift detection: population change per path, online.

The spike detector catches large single-sample excursions; drift is
subtler — a route change that moves the whole population by 20 ms
will never trip a 6-sigma per-sample test, but the *distribution*
shift is unmistakable. Following the Fontugne-style analysis in
:mod:`repro.analysis`, this detector keeps a bounded reservoir of
recent latency samples per path for consecutive time windows and
KS-compares each completed window against the previous one.
"""

from __future__ import annotations

import base64
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cdf import EmpiricalCdf, ks_distance, ks_significant
from repro.analytics.enricher import EnrichedMeasurement
from repro.anomaly.events import AnomalyEvent, Severity

NS_PER_S = 1_000_000_000

PairKey = Tuple[str, str]


_U64 = (1 << 64) - 1


def _pack_floats(values: List[float]) -> str:
    """Latency samples as base64 little-endian float64 — bit-exact,
    and far cheaper to JSON-encode than hundreds of float reprs (the
    reservoirs dominate the anomaly tier's checkpoint cost)."""
    return base64.b64encode(
        struct.pack(f"<{len(values)}d", *values)
    ).decode("ascii")


def _unpack_floats(packed: str) -> List[float]:
    raw = base64.b64decode(packed.encode("ascii"))
    return list(struct.unpack(f"<{len(raw) // 8}d", raw))


class _SplitMix64:
    """Seedable PRNG whose entire state is one 64-bit integer.

    The detector keeps one RNG per (path, window) reservoir, and every
    reservoir's RNG lands in every checkpoint. ``random.Random`` there
    means a 625-word Mersenne state vector per reservoir — hundreds of
    kilobytes of snapshot for a few dozen paths. Reservoir eviction
    needs only uniform indices, so a single-word generator is the
    right trade.
    """

    def __init__(self, seed: int = 0):
        self.state = seed & _U64

    def randrange(self, bound: int) -> int:
        """Uniform int in [0, bound); bias is ~bound/2^64, negligible."""
        self.state = (self.state + 0x9E3779B97F4A7C15) & _U64
        mixed = self.state
        mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & _U64
        mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & _U64
        return (mixed ^ (mixed >> 31)) % bound


class Reservoir:
    """Classic reservoir sampling: a bounded uniform sample of a stream."""

    def __init__(self, capacity: int = 200, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = _SplitMix64(seed)
        self._items: List[float] = []
        self.seen = 0

    def add(self, value: float) -> None:
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(value)
            return
        index = self._rng.randrange(self.seen)
        if index < self.capacity:
            self._items[index] = value

    @property
    def items(self) -> List[float]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def state_dict(self) -> dict:
        """Snapshot the sample, the stream position, and the RNG."""
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "items": _pack_floats(self._items),
            "rng": self._rng.state,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Reservoir":
        """Rebuild a reservoir that continues its pre-crash sequence."""
        reservoir = cls(capacity=int(state["capacity"]))
        reservoir.seen = int(state["seen"])
        reservoir._items = _unpack_floats(state["items"])
        reservoir._rng.state = int(state["rng"]) & _U64
        return reservoir


@dataclass
class _PairState:
    window_start: int
    current: Reservoir
    previous: Optional[List[float]] = None


class PathDriftDetector:
    """Window-over-window KS drift per (src city, dst city) path."""

    def __init__(
        self,
        window_ns: int = 300 * NS_PER_S,
        min_samples: int = 30,
        alpha: float = 0.01,
        min_median_shift_ms: float = 5.0,
        reservoir_capacity: int = 200,
        seed: int = 0,
    ):
        if min_samples < 2:
            raise ValueError("min_samples must be at least 2")
        self.window_ns = window_ns
        self.min_samples = min_samples
        self.alpha = alpha
        self.min_median_shift_ms = min_median_shift_ms
        self.reservoir_capacity = reservoir_capacity
        self._seed = seed
        self._states: Dict[PairKey, _PairState] = {}
        self.events: List[AnomalyEvent] = []
        self.windows_compared = 0

    def observe(self, measurement: EnrichedMeasurement) -> Optional[AnomalyEvent]:
        """Feed one measurement; returns a drift event if one confirmed."""
        key: PairKey = (measurement.src_city, measurement.dst_city)
        window_start = (
            measurement.timestamp_ns // self.window_ns
        ) * self.window_ns
        state = self._states.get(key)
        if state is None:
            state = _PairState(
                window_start=window_start,
                current=Reservoir(self.reservoir_capacity, seed=self._seed),
            )
            self._states[key] = state

        event: Optional[AnomalyEvent] = None
        if window_start > state.window_start:
            event = self._roll_window(key, state, window_start)
        state.current.add(measurement.total_ms)
        return event

    def _roll_window(
        self, key: PairKey, state: _PairState, new_window: int
    ) -> Optional[AnomalyEvent]:
        completed = state.current.items
        event: Optional[AnomalyEvent] = None
        if (
            state.previous is not None
            and len(completed) >= self.min_samples
            and len(state.previous) >= self.min_samples
        ):
            self.windows_compared += 1
            event = self._compare(key, state.previous, completed, state.window_start)
        if len(completed) >= self.min_samples:
            state.previous = completed
        state.current = Reservoir(self.reservoir_capacity, seed=self._seed)
        state.window_start = new_window
        return event

    def _compare(
        self,
        key: PairKey,
        previous: List[float],
        current: List[float],
        window_start: int,
    ) -> Optional[AnomalyEvent]:
        median_before = EmpiricalCdf(previous).median
        median_after = EmpiricalCdf(current).median
        shift = abs(median_after - median_before)
        if shift < self.min_median_shift_ms:
            return None
        if not ks_significant(previous, current, alpha=self.alpha):
            return None
        event = AnomalyEvent(
            kind="path-drift",
            start_ns=window_start,
            severity=Severity.WARNING,
            description=(
                f"median {median_before:.1f} -> {median_after:.1f} ms "
                f"(KS={ks_distance(previous, current):.2f})"
            ),
            subject=f"{key[0]}->{key[1]}",
            evidence={
                "median_before_ms": median_before,
                "median_after_ms": median_after,
                "ks": ks_distance(previous, current),
            },
        )
        event.close(window_start + self.window_ns)
        self.events.append(event)
        return event

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot every pair's reservoir windows and the counter."""
        return {
            "windows_compared": self.windows_compared,
            "states": [
                [
                    list(key),
                    {
                        "window_start": state.window_start,
                        "current": state.current.state_dict(),
                        "previous": None
                        if state.previous is None
                        else _pack_floats(state.previous),
                    },
                ]
                for key, state in self._states.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.windows_compared = int(state["windows_compared"])
        self._states = {}
        for key, cell in state["states"]:
            previous = cell["previous"]
            self._states[(str(key[0]), str(key[1]))] = _PairState(
                window_start=int(cell["window_start"]),
                current=Reservoir.from_state(cell["current"]),
                previous=None
                if previous is None
                else _unpack_floats(previous),
            )

    def finish(self, now_ns: Optional[int] = None) -> List[AnomalyEvent]:
        """End of stream: compare every pair's final window."""
        for key, state in self._states.items():
            completed = state.current.items
            if (
                state.previous is not None
                and len(completed) >= self.min_samples
                and len(state.previous) >= self.min_samples
            ):
                self.windows_compared += 1
                self._compare(key, state.previous, completed, state.window_start)
        return list(self.events)
