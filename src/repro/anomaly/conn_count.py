"""Connection-count anomaly detection (E5).

"Unusual number of TCP connections between two locations" — the
detector counts completed handshakes per (src city, dst city) pair in
tumbling windows and compares each window's count against the pair's
EWMA baseline. Pairs too young (warmup) or too quiet (*min_count*)
never fire.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analytics.enricher import EnrichedMeasurement
from repro.anomaly.baseline import EwmaBaseline, WindowedRate
from repro.anomaly.events import AnomalyEvent, Severity

NS_PER_S = 1_000_000_000

PairKey = Tuple[str, str]


class ConnectionCountDetector:
    """Windowed per-pair connection counting with EWMA baselines."""

    def __init__(
        self,
        window_ns: int = 10 * NS_PER_S,
        z_threshold: float = 5.0,
        ratio_threshold: float = 3.0,
        min_count: int = 50,
        alpha: float = 0.1,
        warmup: int = 6,
    ):
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        self.window_ns = window_ns
        self.z_threshold = z_threshold
        self.ratio_threshold = ratio_threshold
        self.min_count = min_count
        self.baseline: EwmaBaseline[PairKey] = EwmaBaseline(alpha=alpha, warmup=warmup)
        self._rate: WindowedRate[PairKey] = WindowedRate(window_ns)
        self._open: Dict[PairKey, AnomalyEvent] = {}
        self.events: List[AnomalyEvent] = []

    def observe(self, measurement: EnrichedMeasurement) -> Optional[AnomalyEvent]:
        """Feed one completed-handshake measurement."""
        key: PairKey = (measurement.src_city, measurement.dst_city)
        closed = self._rate.add(key, measurement.timestamp_ns)
        if closed is None:
            return None
        return self._evaluate_window(closed)

    def _evaluate_window(self, closed) -> Optional[AnomalyEvent]:
        window_start, counts = closed
        newest_event: Optional[AnomalyEvent] = None
        hot_pairs = set()
        for pair, count in counts.items():
            zscore = self.baseline.zscore(pair, float(count))
            mean = self.baseline.mean(pair)
            hot = (
                count >= self.min_count
                and zscore is not None
                and mean is not None
                and zscore >= self.z_threshold
                and count >= mean * self.ratio_threshold
            )
            if hot:
                hot_pairs.add(pair)
                if pair not in self._open:
                    event = AnomalyEvent(
                        kind="connection-surge",
                        start_ns=window_start,
                        severity=Severity.WARNING,
                        description=(
                            f"{count} connections/window vs baseline "
                            f"{mean:.1f} (z={zscore:.1f})"
                        ),
                        subject=f"{pair[0]}->{pair[1]}",
                        evidence={
                            "count": float(count),
                            "baseline": float(mean),
                            "zscore": float(zscore),
                        },
                    )
                    self._open[pair] = event
                    self.events.append(event)
                    newest_event = event
                else:
                    open_event = self._open[pair]
                    open_event.evidence["count"] = max(
                        open_event.evidence.get("count", 0.0), float(count)
                    )
            else:
                # Anomalous windows are excluded from baseline learning.
                self.baseline.observe(pair, float(count))

        # Close events for pairs that have gone quiet.
        for pair in list(self._open):
            if pair not in hot_pairs:
                self._open[pair].close(window_start + self.window_ns)
                del self._open[pair]
        return newest_event

    def finish(self, now_ns: Optional[int] = None) -> List[AnomalyEvent]:
        """End of stream: evaluate the final window, close open events."""
        closed = self._rate.flush()
        if closed is not None:
            self._evaluate_window(closed)
        for event in self._open.values():
            if event.is_open and now_ns is not None:
                event.close(now_ns)
        self._open.clear()
        return list(self.events)

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the learned baseline and the open counting window."""
        return {
            "baseline": self.baseline.state_dict(),
            "rate": self._rate.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.baseline.load_state(state["baseline"])
        self._rate.load_state(state["rate"])
        self._open.clear()
