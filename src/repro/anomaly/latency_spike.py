"""Latency-spike detection — the firewall-glitch finder (E4).

The detector learns a per-country-pair EWMA baseline from the
measurement stream and flags samples that are simultaneously

* many standard deviations above the baseline (*z_threshold*),
* a large multiple of the baseline mean (*ratio_threshold*), and
* above an absolute floor (*min_excess_ms*),

so that neither noisy paths nor microsecond wobbles trigger it.
Consecutive flagged samples on the same pair group into one
:class:`~repro.anomaly.events.AnomalyEvent`; the event closes after a
quiet period. The paper's 4000 ms firewall glitch exceeds all three
criteria by an order of magnitude — the E4 bench shows it is caught
from a handful of affected handshakes while 5-minute averages barely
move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analytics.enricher import EnrichedMeasurement
from repro.anomaly.baseline import EwmaBaseline
from repro.anomaly.events import AnomalyEvent, Severity

PairKey = Tuple[str, str]

NS_PER_S = 1_000_000_000


@dataclass
class _OpenSpike:
    event: AnomalyEvent
    last_flag_ns: int
    flagged: int
    peak_ms: float


class LatencySpikeDetector:
    """Streaming spike detector over enriched measurements."""

    def __init__(
        self,
        z_threshold: float = 6.0,
        ratio_threshold: float = 3.0,
        min_excess_ms: float = 100.0,
        alpha: float = 0.05,
        warmup: int = 30,
        quiet_close_ns: int = 30 * NS_PER_S,
        min_flagged: int = 3,
    ):
        if z_threshold <= 0 or ratio_threshold <= 1.0:
            raise ValueError("thresholds must be positive (ratio > 1)")
        if min_flagged < 1:
            raise ValueError("min_flagged must be at least 1")
        self.z_threshold = z_threshold
        self.ratio_threshold = ratio_threshold
        self.min_excess_ms = min_excess_ms
        self.quiet_close_ns = quiet_close_ns
        self.min_flagged = min_flagged
        self.baseline: EwmaBaseline[PairKey] = EwmaBaseline(alpha=alpha, warmup=warmup)
        self._open: Dict[PairKey, _OpenSpike] = {}
        self.events: List[AnomalyEvent] = []
        self.samples_seen = 0
        self.samples_flagged = 0

    def observe(self, measurement: EnrichedMeasurement) -> Optional[AnomalyEvent]:
        """Feed one measurement; returns a *newly confirmed* event, if any.

        Flagged samples do not update the baseline — a sustained
        anomaly must not teach the detector that 4000 ms is normal.
        """
        self.samples_seen += 1
        key: PairKey = (measurement.src_country, measurement.dst_country)
        total_ms = measurement.total_ms
        now_ns = measurement.timestamp_ns

        self._close_quiet(now_ns)

        zscore = self.baseline.zscore(key, total_ms)
        mean = self.baseline.mean(key)
        flagged = (
            zscore is not None
            and mean is not None
            and zscore >= self.z_threshold
            and total_ms >= mean * self.ratio_threshold
            and total_ms - mean >= self.min_excess_ms
        )
        if not flagged:
            self.baseline.observe(key, total_ms)
            return None

        self.samples_flagged += 1
        spike = self._open.get(key)
        if spike is None:
            event = AnomalyEvent(
                kind="latency-spike",
                start_ns=now_ns,
                severity=Severity.WARNING,
                description=(
                    f"latency {total_ms:.0f} ms vs baseline {mean:.0f} ms "
                    f"(z={zscore:.1f})"
                ),
                subject=f"{key[0]}->{key[1]}",
                evidence={
                    "baseline_ms": float(mean),
                    "observed_ms": float(total_ms),
                    "zscore": float(zscore),
                },
            )
            self._open[key] = _OpenSpike(
                event=event, last_flag_ns=now_ns, flagged=1, peak_ms=total_ms
            )
            return None

        spike.flagged += 1
        # High-water, not last-seen: duplicated/retried mq delivery can
        # replay a flagged sample with an *earlier* timestamp, and the
        # group must still close at a time >= its start.
        spike.last_flag_ns = max(spike.last_flag_ns, now_ns)
        spike.peak_ms = max(spike.peak_ms, total_ms)
        spike.event.evidence["peak_ms"] = spike.peak_ms
        spike.event.evidence["flagged_samples"] = float(spike.flagged)
        if spike.flagged == self.min_flagged:
            # Confirmation threshold crossed: publish the event.
            spike.event.severity = Severity.CRITICAL
            self.events.append(spike.event)
            return spike.event
        return None

    def _close_quiet(self, now_ns: int) -> None:
        """Close spike groups whose last flagged sample is long past."""
        finished = [
            key
            for key, spike in self._open.items()
            if now_ns - spike.last_flag_ns > self.quiet_close_ns
        ]
        for key in finished:
            spike = self._open.pop(key)
            if spike.flagged >= self.min_flagged:
                spike.event.close(spike.last_flag_ns)

    def finish(self, now_ns: Optional[int] = None) -> List[AnomalyEvent]:
        """End of stream: close everything and return confirmed events."""
        for spike in self._open.values():
            if spike.flagged >= self.min_flagged and spike.event.is_open:
                spike.event.close(spike.last_flag_ns)
        self._open.clear()
        return list(self.events)

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the learned baseline and sample counters.

        Open, not-yet-confirmed spike groups are deliberately excluded:
        a sustained anomaly re-confirms from the live stream within
        ``min_flagged`` samples after restart, whereas resurrecting a
        half-open group against a moved clock would fabricate events.
        """
        return {
            "baseline": self.baseline.state_dict(),
            "samples_seen": self.samples_seen,
            "samples_flagged": self.samples_flagged,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.baseline.load_state(state["baseline"])
        self.samples_seen = int(state["samples_seen"])
        self.samples_flagged = int(state["samples_flagged"])
        self._open.clear()
