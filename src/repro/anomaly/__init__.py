"""Real-time anomaly detection on Ruru's measurement stream.

The paper's operational findings drive this package: Ruru "has been
used for anomaly detection and was able to find very fine-grained
micro-glitches in latency that no other monitoring system had
previously identified" (the nightly 4000 ms firewall glitch), and
"other types of anomalies (e.g., unusual number of TCP connections
between two locations or SYN floods) can also be identified in
real-time with simple Ruru modules".

* :mod:`repro.anomaly.events` — the event model.
* :mod:`repro.anomaly.baseline` — streaming EWMA baselines and
  windowed rate counters the detectors share.
* :mod:`repro.anomaly.latency_spike` — flags measurements far above
  the learned per-path baseline and groups them into events (E4).
* :mod:`repro.anomaly.syn_flood` — watches the handshake packet
  stream for high SYN rates with low completion fractions (E5).
* :mod:`repro.anomaly.conn_count` — flags unusual connection counts
  between location pairs (E5).
* :mod:`repro.anomaly.manager` — fans one measurement stream into all
  detectors and collects their events.
"""

from repro.anomaly.events import AnomalyEvent, Severity
from repro.anomaly.baseline import EwmaBaseline, WindowedRate
from repro.anomaly.latency_spike import LatencySpikeDetector
from repro.anomaly.syn_flood import SynFloodDetector
from repro.anomaly.conn_count import ConnectionCountDetector
from repro.anomaly.path_drift import PathDriftDetector, Reservoir
from repro.anomaly.manager import AnomalyManager

__all__ = [
    "AnomalyEvent",
    "Severity",
    "EwmaBaseline",
    "WindowedRate",
    "LatencySpikeDetector",
    "SynFloodDetector",
    "ConnectionCountDetector",
    "PathDriftDetector",
    "Reservoir",
    "AnomalyManager",
]
