"""The anomaly event model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class Severity(enum.IntEnum):
    """Ordered severities; comparisons follow the int order."""

    INFO = 1
    WARNING = 2
    CRITICAL = 3


@dataclass
class AnomalyEvent:
    """One detected anomaly.

    Attributes:
        kind: stable detector token (``"latency-spike"``,
            ``"syn-flood"``, ``"connection-surge"``).
        start_ns: when the anomalous behaviour began.
        end_ns: when it subsided (None while ongoing).
        severity: operator-facing urgency.
        description: one human-readable line.
        subject: what the anomaly is about (a city pair, a target…).
        evidence: detector-specific numbers backing the call.
    """

    kind: str
    start_ns: int
    severity: Severity
    description: str
    subject: str = ""
    end_ns: Optional[int] = None
    evidence: Dict[str, float] = field(default_factory=dict)

    @property
    def is_open(self) -> bool:
        return self.end_ns is None

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def close(self, end_ns: int) -> None:
        """Mark the event as over."""
        if end_ns < self.start_ns:
            raise ValueError("event cannot end before it starts")
        self.end_ns = end_ns

    def __str__(self) -> str:
        state = "ongoing" if self.is_open else f"{(self.duration_ns or 0) / 1e9:.1f}s"
        return (
            f"[{self.severity.name}] {self.kind} {self.subject} "
            f"@{self.start_ns / 1e9:.1f}s ({state}): {self.description}"
        )
