"""SYN-flood detection from the handshake packet stream (E5).

Runs as an in-pipeline observer (see
:class:`~repro.core.worker.QueueWorker`'s ``observers``): for every
parsed packet it counts SYNs and handshake completions per target
network, in tumbling windows. A window whose SYN rate exceeds
*min_syn_rate* **and** whose completion fraction falls below
*max_completion_fraction* opens a flood event for that target;
consecutive hot windows extend it, a cold window closes it.

Targets are keyed by destination /24 (configurable), never full
addresses — the detector's own output respects the privacy rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.anomaly.baseline import WindowedRate
from repro.anomaly.events import AnomalyEvent, Severity
from repro.net.addresses import int_to_ip
from repro.net.parser import ParsedPacket

NS_PER_S = 1_000_000_000

TargetKey = Tuple[int, bool]  # truncated address, is_ipv6


class SynFloodDetector:
    """Windowed SYN-rate / completion-ratio detector."""

    def __init__(
        self,
        window_ns: int = NS_PER_S,
        min_syn_rate: float = 500.0,
        max_completion_fraction: float = 0.3,
        prefix_bits: int = 24,
    ):
        if not 0 < max_completion_fraction <= 1.0:
            raise ValueError("completion fraction must be in (0, 1]")
        if min_syn_rate <= 0:
            raise ValueError("min_syn_rate must be positive")
        if not 0 < prefix_bits <= 32:
            raise ValueError("prefix_bits must be in (0, 32]")
        self.window_ns = window_ns
        self.min_syn_rate = min_syn_rate
        self.max_completion_fraction = max_completion_fraction
        self.prefix_bits = prefix_bits
        self._syns: WindowedRate[TargetKey] = WindowedRate(window_ns)
        self._acks: WindowedRate[TargetKey] = WindowedRate(window_ns)
        # The most recently closed ACK window, kept until the matching
        # SYN window closes (the two counters can close at different
        # packets).
        self._closed_ack_window: Optional[Tuple[int, Dict[TargetKey, int]]] = None
        self._open: Dict[TargetKey, AnomalyEvent] = {}
        self.events: List[AnomalyEvent] = []
        self.packets_seen = 0

    def _target_of(self, packet: ParsedPacket) -> TargetKey:
        if packet.is_ipv6:
            truncated = packet.dst_ip >> 80 << 80  # keep /48
            return (truncated, True)
        shift = 32 - self.prefix_bits
        return ((packet.dst_ip >> shift) << shift, False)

    def on_packet(self, packet: ParsedPacket) -> None:
        """Observer entry point: feed every parsed TCP packet."""
        self.packets_seen += 1
        target = self._target_of(packet)
        if packet.is_syn:
            closed_acks = self._acks.add(target, packet.timestamp_ns, count=0)
            if closed_acks is not None:
                self._closed_ack_window = closed_acks
            closed_syns = self._syns.add(target, packet.timestamp_ns)
            if closed_syns is not None:
                self._evaluate(closed_syns)
        elif packet.is_ack:
            # ACKs toward the flooded target approximate handshakes the
            # target's clients actually completed; a flood of spoofed
            # SYNs produces none.
            closed_acks = self._acks.add(target, packet.timestamp_ns, count=1)
            if closed_acks is not None:
                self._closed_ack_window = closed_acks
            closed_syns = self._syns.add(target, packet.timestamp_ns, count=0)
            if closed_syns is not None:
                self._evaluate(closed_syns)

    def _evaluate(self, closed_syns) -> None:
        window_start, syn_counts = closed_syns
        ack_counts: Dict[TargetKey, int] = {}
        if (
            self._closed_ack_window is not None
            and self._closed_ack_window[0] == window_start
        ):
            ack_counts = self._closed_ack_window[1]
        window_s = self.window_ns / NS_PER_S
        for target, syn_count in syn_counts.items():
            rate = syn_count / window_s
            completions = ack_counts.get(target, 0)
            fraction = completions / syn_count if syn_count else 1.0
            hot = rate >= self.min_syn_rate and fraction <= self.max_completion_fraction
            open_event = self._open.get(target)
            if hot and open_event is None:
                address, is_ipv6 = target
                label = "ipv6-net" if is_ipv6 else f"{int_to_ip(address)}/{self.prefix_bits}"
                event = AnomalyEvent(
                    kind="syn-flood",
                    start_ns=window_start,
                    severity=Severity.CRITICAL,
                    description=(
                        f"{rate:.0f} SYN/s toward {label}, "
                        f"completion {fraction:.0%}"
                    ),
                    subject=label,
                    evidence={
                        "syn_rate": rate,
                        "completion_fraction": fraction,
                    },
                )
                self._open[target] = event
                self.events.append(event)
            elif hot and open_event is not None:
                open_event.evidence["syn_rate"] = max(
                    open_event.evidence.get("syn_rate", 0.0), rate
                )
            elif not hot and open_event is not None:
                open_event.close(window_start + self.window_ns)
                del self._open[target]

    def finish(self, now_ns: Optional[int] = None) -> List[AnomalyEvent]:
        """End of stream: evaluate the last window, close open events."""
        closed_acks = self._acks.flush()
        if closed_acks is not None:
            self._closed_ack_window = closed_acks
        closed_syns = self._syns.flush()
        if closed_syns is not None:
            self._evaluate(closed_syns)
        for target, event in list(self._open.items()):
            if event.is_open and now_ns is not None:
                event.close(now_ns)
        self._open.clear()
        return list(self.events)

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the open SYN/ACK windows and the packet counter.

        Open flood events are excluded (same reasoning as the spike
        detector: an ongoing flood re-opens within one window).
        """
        return {
            "syns": self._syns.state_dict(),
            "acks": self._acks.state_dict(),
            "packets_seen": self.packets_seen,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._syns.load_state(state["syns"])
        self._acks.load_state(state["acks"])
        self.packets_seen = int(state["packets_seen"])
        self._closed_ack_window = None
        self._open.clear()
