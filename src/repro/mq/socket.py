"""PUSH/PULL and PUB/SUB sockets over in-process endpoints.

Semantics follow ZeroMQ where it matters to the pipeline:

* PUSH round-robins messages across connected PULL peers (work
  distribution to the analytics worker pool).
* PUB fans out to every matching SUB; a SUB whose receive queue is at
  its high-water mark silently drops new messages for that subscriber
  (ZeroMQ's slow-subscriber behaviour) — the frontend bench leans on
  this.
* Sockets bind/connect to string endpoints (``inproc://name``)
  registered in a :class:`Context`.

Everything is single-threaded and deterministic; "zero-copy" survives
as Python reference passing — frames are never copied on delivery.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.mq.frames import Message

DEFAULT_HWM = 10_000


class MqError(RuntimeError):
    """Endpoint and socket-state errors."""


class Context:
    """Registry of in-process endpoints, analogous to ``zmq.Context``.

    Rebind semantics: ``bind`` claims an endpoint name exclusively and
    raises :class:`MqError` while it is taken; ``close()`` on the bound
    socket releases the name, after which a *fresh* socket may bind it.
    The two sockets share nothing — messages queued on the old socket
    die with it, and senders that connected to the old socket keep
    their direct peer reference until their next send notices the peer
    closed and prunes it. A sender must re-``connect`` to reach the
    endpoint's new occupant; nothing is rewired implicitly.
    """

    def __init__(self):
        self._bindings: Dict[str, object] = {}

    def _bind(self, endpoint: str, socket: object) -> None:
        if endpoint in self._bindings:
            raise MqError(f"endpoint already bound: {endpoint}")
        self._bindings[endpoint] = socket

    def _lookup(self, endpoint: str) -> object:
        socket = self._bindings.get(endpoint)
        if socket is None:
            raise MqError(f"no socket bound at {endpoint}")
        return socket

    def _unbind(self, endpoint: str) -> None:
        self._bindings.pop(endpoint, None)

    # -- socket factories ---------------------------------------------------

    def push(self, hwm: int = DEFAULT_HWM) -> "PushSocket":
        return PushSocket(self, hwm=hwm)

    def pull(self, hwm: int = DEFAULT_HWM) -> "PullSocket":
        return PullSocket(self, hwm=hwm)

    def pub(self) -> "PubSocket":
        return PubSocket(self)

    def sub(self, hwm: int = DEFAULT_HWM) -> "SubSocket":
        return SubSocket(self, hwm=hwm)


class _ReceivingSocket:
    """Shared queue mechanics for PULL and SUB."""

    def __init__(self, context: Context, hwm: int):
        if hwm <= 0:
            raise ValueError("high-water mark must be positive")
        self._context = context
        self.hwm = hwm
        self._queue: Deque[Message] = deque()
        self._endpoint: Optional[str] = None
        self.closed = False
        self.received = 0
        self.dropped = 0
        self._peak = 0

    def bind(self, endpoint: str) -> None:
        """Claim *endpoint* for this socket (exactly one per socket)."""
        if self.closed:
            raise MqError("cannot bind a closed socket")
        if self._endpoint is not None:
            raise MqError(
                f"socket already bound at {self._endpoint}; "
                f"close it before binding {endpoint}"
            )
        self._context._bind(endpoint, self)
        self._endpoint = endpoint

    def close(self) -> None:
        """Release the endpoint and refuse all future traffic.

        Messages still queued are discarded; senders holding this
        socket as a peer will see delivery refused and prune it.
        """
        if self._endpoint is not None:
            self._context._unbind(self._endpoint)
            self._endpoint = None
        self.closed = True
        self._queue.clear()

    def _deliver(self, message: Message) -> bool:
        if self.closed:
            return False
        if len(self._queue) >= self.hwm:
            self.dropped += 1
            return False
        self._queue.append(message)
        self.received += 1
        if len(self._queue) > self._peak:
            self._peak = len(self._queue)
        return True

    def take_peak(self) -> int:
        """Peak queue depth since the last call; resets to current depth.

        Receive queues are drained at batch boundaries, so overload
        sensors read the within-batch peak rather than the (usually
        zero) instantaneous depth.
        """
        peak = max(self._peak, len(self._queue))
        self._peak = len(self._queue)
        return peak

    def recv(self) -> Optional[Message]:
        """Non-blocking receive; None when the queue is empty."""
        if self.closed:
            raise MqError("recv on a closed socket")
        if not self._queue:
            return None
        return self._queue.popleft()

    def recv_all(self, max_messages: Optional[int] = None) -> List[Message]:
        """Drain up to *max_messages* (all, when None)."""
        limit = len(self._queue) if max_messages is None else min(
            max_messages, len(self._queue)
        )
        return [self._queue.popleft() for _ in range(limit)]

    def __len__(self) -> int:
        return len(self._queue)


class PullSocket(_ReceivingSocket):
    """The receiving end of a PUSH/PULL pipe."""


class SubSocket(_ReceivingSocket):
    """The receiving end of PUB/SUB, with prefix subscriptions."""

    def __init__(self, context: Context, hwm: int = DEFAULT_HWM):
        super().__init__(context, hwm)
        self._subscriptions: List[bytes] = []

    def subscribe(self, prefix: bytes = b"") -> None:
        """Subscribe to topics starting with *prefix* (empty = all)."""
        if prefix not in self._subscriptions:
            self._subscriptions.append(prefix)

    def unsubscribe(self, prefix: bytes) -> None:
        """Drop a subscription; unknown prefixes are ignored."""
        try:
            self._subscriptions.remove(prefix)
        except ValueError:
            pass

    def wants(self, message: Message) -> bool:
        """True if any subscription prefix matches the message topic."""
        return any(message.matches(prefix) for prefix in self._subscriptions)


class PushSocket:
    """Round-robin work distributor.

    ZeroMQ semantics on the peerless edge too: a PUSH with no connected
    PULL peers *buffers* up to its HWM (ZeroMQ would block; the
    non-blocking analogue is queue-then-deliver-on-connect), and sheds
    with a counter beyond that. ``send`` never raises on the hot path —
    a publisher outliving its consumers is an operational condition to
    count, not a crash.
    """

    def __init__(self, context: Context, hwm: int = DEFAULT_HWM):
        if hwm <= 0:
            raise ValueError("high-water mark must be positive")
        self._context = context
        self._peers: List[PullSocket] = []
        self._next = 0
        self.hwm = hwm
        self._pending: Deque[Message] = deque()
        self.closed = False
        self.sent = 0
        self.dropped = 0
        self.buffered_no_peer = 0
        self.dropped_no_peer = 0

    def connect(self, endpoint: str) -> None:
        """Attach to a bound PULL socket; flushes any buffered backlog."""
        if self.closed:
            raise MqError("cannot connect a closed socket")
        peer = self._context._lookup(endpoint)
        if not isinstance(peer, PullSocket):
            raise MqError(f"{endpoint} is not a PULL socket")
        self._peers.append(peer)
        self._flush_pending()

    def close(self) -> None:
        """Drop every peer and refuse further sends; buffered messages
        that never found a peer are discarded."""
        self.closed = True
        self._peers.clear()
        self._pending.clear()

    def _flush_pending(self) -> None:
        while self._pending:
            if not self._dispatch(self._pending.popleft()):
                break

    def _prune_closed_peers(self) -> None:
        if any(peer.closed for peer in self._peers):
            self._peers = [p for p in self._peers if not p.closed]
            self._next = 0

    def _dispatch(self, message: Message) -> bool:
        for attempt in range(len(self._peers)):
            peer = self._peers[(self._next + attempt) % len(self._peers)]
            if peer._deliver(message):
                self._next = (self._next + attempt + 1) % len(self._peers)
                self.sent += 1
                return True
        self.dropped += 1
        return False

    def send(self, message: Message) -> bool:
        """Send to the next peer in rotation; never raises.

        With peers connected, a peer at its HWM is skipped; if every
        peer is full the message is dropped and counted (the
        non-blocking analogue of a PUSH blocking at HWM — the pipeline
        benches read this as back-pressure). With *no* peers, the
        message is buffered up to this socket's own HWM and delivered
        when a peer connects; beyond the HWM it is dropped and counted.

        Peers that were closed since the last send are pruned first —
        a message is never swallowed by a dead queue.
        """
        if self.closed:
            raise MqError("send on a closed socket")
        self._prune_closed_peers()
        if not self._peers:
            if len(self._pending) < self.hwm:
                self._pending.append(message)
                self.buffered_no_peer += 1
                return True
            self.dropped_no_peer += 1
            self.dropped += 1
            return False
        return self._dispatch(message)

    @property
    def pending(self) -> int:
        """Messages buffered while no peer was connected."""
        return len(self._pending)


class PubSocket:
    """Fan-out publisher."""

    def __init__(self, context: Context):
        self._context = context
        self._subscribers: List[SubSocket] = []
        self.closed = False
        self.sent = 0

    def connect(self, endpoint: str) -> None:
        """Attach to a bound SUB socket."""
        if self.closed:
            raise MqError("cannot connect a closed socket")
        peer = self._context._lookup(endpoint)
        if not isinstance(peer, SubSocket):
            raise MqError(f"{endpoint} is not a SUB socket")
        self._subscribers.append(peer)

    def close(self) -> None:
        """Drop every subscriber and refuse further sends."""
        self.closed = True
        self._subscribers.clear()

    def send(self, message: Message) -> int:
        """Deliver to every subscriber whose filter matches.

        Returns the number of subscribers that accepted the message.
        With no (matching) subscribers the message vanishes, as in
        ZeroMQ. Subscribers closed since the last send are pruned.
        """
        if self.closed:
            raise MqError("send on a closed socket")
        if any(sub.closed for sub in self._subscribers):
            self._subscribers = [s for s in self._subscribers if not s.closed]
        delivered = 0
        for subscriber in self._subscribers:
            if subscriber.wants(message) and subscriber._deliver(message):
                delivered += 1
        self.sent += 1
        return delivered
