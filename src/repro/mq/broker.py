"""Forwarder device: SUB-in → optional filter → PUB-out.

The paper notes the ZeroMQ fabric makes Ruru extensible: "one could
add a filter module to filter measurements in the pipeline based on
some criteria (e.g., geo-location)". A :class:`Forwarder` is that
module shape — it re-publishes what it receives, optionally through a
predicate, and is the building block E10 (the filter-module bench)
measures.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mq.frames import Message
from repro.mq.socket import PubSocket, SubSocket

MessageFilter = Callable[[Message], bool]


class Forwarder:
    """Pump messages from a SUB socket to a PUB socket.

    Args:
        sub: the upstream subscription (already subscribed/bound).
        pub: the downstream publisher (already connected).
        message_filter: keep-predicate; None forwards everything.
    """

    def __init__(
        self,
        sub: SubSocket,
        pub: PubSocket,
        message_filter: Optional[MessageFilter] = None,
    ):
        self.sub = sub
        self.pub = pub
        self.message_filter = message_filter
        self.forwarded = 0
        self.filtered = 0

    def poll(self, max_messages: int = 100) -> int:
        """Move up to *max_messages* downstream; returns messages handled.

        Suitable as an :class:`~repro.dpdk.eal.Eal` lcore body.
        """
        handled = 0
        for message in self.sub.recv_all(max_messages):
            handled += 1
            if self.message_filter is not None and not self.message_filter(message):
                self.filtered += 1
                continue
            self.pub.send(message)
            self.forwarded += 1
        return handled
