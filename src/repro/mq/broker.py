"""Forwarder device: SUB-in → optional filter → PUB-out.

The paper notes the ZeroMQ fabric makes Ruru extensible: "one could
add a filter module to filter measurements in the pipeline based on
some criteria (e.g., geo-location)". A :class:`Forwarder` is that
module shape — it re-publishes what it receives, optionally through a
predicate, and is the building block E10 (the filter-module bench)
measures.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mq.frames import Message
from repro.mq.socket import PubSocket, SubSocket

MessageFilter = Callable[[Message], bool]


class Forwarder:
    """Pump messages from a SUB socket to a PUB socket.

    Args:
        sub: the upstream subscription (already subscribed/bound).
        pub: the downstream publisher (already connected).
        message_filter: keep-predicate; None forwards everything.
    """

    def __init__(
        self,
        sub: SubSocket,
        pub: PubSocket,
        message_filter: Optional[MessageFilter] = None,
        telemetry=None,
        name: str = "forwarder",
    ):
        self.sub = sub
        self.pub = pub
        self.message_filter = message_filter
        self.name = name
        self.forwarded = 0
        self.filtered = 0
        self._tracer = telemetry.tracer if telemetry is not None else None
        if telemetry is not None:
            self._bind_registry(telemetry.registry)

    def poll(self, max_messages: int = 100) -> int:
        """Move up to *max_messages* downstream; returns messages handled.

        Suitable as an :class:`~repro.dpdk.eal.Eal` lcore body.
        """
        messages = self.sub.recv_all(max_messages)
        if not messages:
            return 0
        tracer = self._tracer
        if tracer is None:
            return self._forward(messages)
        with tracer.span("mq.forward", name=self.name, batch=len(messages)):
            return self._forward(messages)

    def _forward(self, messages) -> int:
        handled = 0
        for message in messages:
            handled += 1
            if self.message_filter is not None and not self.message_filter(message):
                self.filtered += 1
                continue
            self.pub.send(message)
            self.forwarded += 1
        return handled

    def _bind_registry(self, registry) -> None:
        forwarded = registry.counter(
            "ruru_mq_forwarded_total",
            help="Messages re-published by forwarder devices.",
            labels=("forwarder",),
        )
        filtered = registry.counter(
            "ruru_mq_forward_filtered_total",
            help="Messages dropped by forwarder filter predicates.",
            labels=("forwarder",),
        )

        def collect() -> None:
            forwarded.labels(self.name).value = self.forwarded
            filtered.labels(self.name).value = self.filtered

        registry.register_collector(collect)
