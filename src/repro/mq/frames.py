"""Multipart message framing, ZeroMQ style.

A :class:`Message` is an ordered list of byte frames. PUB/SUB topic
matching operates on the first frame, as in ZeroMQ's prefix
subscription model.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class Message:
    """An immutable multipart message.

    >>> msg = Message([b"latency", b"payload"])
    >>> msg.topic
    b'latency'
    >>> len(msg)
    2
    """

    __slots__ = ("_frames",)

    def __init__(self, frames: Iterable[bytes]):
        frames_tuple: Tuple[bytes, ...] = tuple(frames)
        if not frames_tuple:
            raise ValueError("a message needs at least one frame")
        for frame in frames_tuple:
            if not isinstance(frame, (bytes, bytearray, memoryview)):
                raise TypeError(f"frame must be bytes-like, got {type(frame).__name__}")
        self._frames = tuple(bytes(frame) for frame in frames_tuple)

    @classmethod
    def single(cls, data: bytes) -> "Message":
        """A one-frame message."""
        return cls([data])

    @classmethod
    def with_topic(cls, topic: bytes, *payload: bytes) -> "Message":
        """A topic frame followed by payload frames."""
        return cls([topic, *payload])

    @property
    def frames(self) -> Tuple[bytes, ...]:
        return self._frames

    @property
    def topic(self) -> bytes:
        """The first frame (what SUB sockets prefix-match against)."""
        return self._frames[0]

    @property
    def payload(self) -> Tuple[bytes, ...]:
        """All frames after the topic."""
        return self._frames[1:]

    def matches(self, prefix: bytes) -> bool:
        """ZeroMQ prefix subscription: empty prefix matches everything."""
        return self._frames[0].startswith(prefix)

    def total_bytes(self) -> int:
        """Sum of frame lengths (stats/HWM accounting)."""
        return sum(len(frame) for frame in self._frames)

    def __len__(self) -> int:
        return len(self._frames)

    def __getitem__(self, index: int) -> bytes:
        return self._frames[index]

    def __eq__(self, other) -> bool:
        return isinstance(other, Message) and self._frames == other._frames

    def __hash__(self) -> int:
        return hash(self._frames)

    def __repr__(self) -> str:
        preview: List[str] = []
        for frame in self._frames[:3]:
            text = frame[:16].hex()
            preview.append(f"{len(frame)}B:{text}")
        suffix = "..." if len(self._frames) > 3 else ""
        return f"Message([{', '.join(preview)}{suffix}])"
