"""In-process message bus — the ZeroMQ substitute.

Ruru's stages are decoupled by "zero-copy ZeroMQ sockets", which is
what makes the pipeline modular ("one could add a filter module …").
This package reproduces the ZeroMQ patterns the paper uses, in a
single process with deterministic delivery:

* :mod:`repro.mq.frames` — multipart message framing.
* :mod:`repro.mq.socket` — PUSH/PULL (work distribution from the DPDK
  stage to analytics workers) and PUB/SUB (fan-out to the TSDB writer
  and the WebSocket frontend), with high-water marks and ZeroMQ's
  drop semantics for slow consumers.
* :mod:`repro.mq.codec` — the compact binary wire encoding of latency
  records crossing socket boundaries.
* :mod:`repro.mq.broker` — a forwarder device for late-joining
  subscribers and in-pipeline filter modules.
"""

from repro.mq.frames import Message
from repro.mq.socket import (
    Context,
    MqError,
    PubSocket,
    PullSocket,
    PushSocket,
    SubSocket,
)
from repro.mq.codec import (
    CodecError,
    decode_enriched,
    decode_latency_record,
    encode_enriched,
    encode_latency_record,
)
from repro.mq.broker import Forwarder

__all__ = [
    "Message",
    "Context",
    "MqError",
    "PubSocket",
    "PullSocket",
    "PushSocket",
    "SubSocket",
    "CodecError",
    "decode_enriched",
    "decode_latency_record",
    "encode_enriched",
    "encode_latency_record",
    "Forwarder",
]
