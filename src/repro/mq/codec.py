"""Binary wire codec for records crossing socket boundaries.

Two encodings:

* **latency records** — the DPDK stage's output (addresses + the two
  latency components + handshake timestamps), a fixed layout per
  address family;
* **enriched measurements** — the analytics stage's output after geo/AS
  lookup and anonymization (no addresses, variable-length strings).

Both carry a version byte so the formats can evolve; decoders reject
unknown versions loudly.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.core.latency import LatencyRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analytics.enricher import EnrichedMeasurement

LATENCY_VERSION = 1
# v2 appends a flags byte after the version (bit 0: degraded — the
# record crossed an open enrichment breaker un-enriched); v1 payloads
# are still decoded, with degraded implicitly False.
ENRICHED_VERSION = 2
_ENRICHED_V1 = 1

_FLAG_IPV6 = 0x01
_ENRICHED_FLAG_DEGRADED = 0x01

# After the 2-byte preamble (version, flags) and the two addresses:
# ports, latencies, timestamps, queue id, rss hash.
_FIXED_TAIL = struct.Struct("!HHQQQQQHI")


class CodecError(ValueError):
    """Raised on malformed or version-mismatched payloads."""


def encode_latency_record(record: LatencyRecord) -> bytes:
    """Serialize a :class:`LatencyRecord` to wire bytes."""
    flags = _FLAG_IPV6 if record.is_ipv6 else 0
    addr_len = 16 if record.is_ipv6 else 4
    parts = [
        bytes([LATENCY_VERSION, flags]),
        record.src_ip.to_bytes(addr_len, "big"),
        record.dst_ip.to_bytes(addr_len, "big"),
        _FIXED_TAIL.pack(
            record.src_port,
            record.dst_port,
            record.internal_ns,
            record.external_ns,
            record.syn_ns,
            record.synack_ns,
            record.ack_ns,
            record.queue_id,
            record.rss_hash,
        ),
    ]
    return b"".join(parts)


def decode_latency_record(data: bytes) -> LatencyRecord:
    """Parse wire bytes back into a :class:`LatencyRecord`."""
    if len(data) < 2:
        raise CodecError("latency record too short")
    version, flags = data[0], data[1]
    if version != LATENCY_VERSION:
        raise CodecError(f"unknown latency record version {version}")
    is_ipv6 = bool(flags & _FLAG_IPV6)
    addr_len = 16 if is_ipv6 else 4
    expected = 2 + 2 * addr_len + _FIXED_TAIL.size
    if len(data) != expected:
        raise CodecError(f"latency record length {len(data)} != {expected}")
    offset = 2
    src_ip = int.from_bytes(data[offset:offset + addr_len], "big")
    offset += addr_len
    dst_ip = int.from_bytes(data[offset:offset + addr_len], "big")
    offset += addr_len
    (
        src_port,
        dst_port,
        internal_ns,
        external_ns,
        syn_ns,
        synack_ns,
        ack_ns,
        queue_id,
        rss_hash,
    ) = _FIXED_TAIL.unpack_from(data, offset)
    return LatencyRecord(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        internal_ns=internal_ns,
        external_ns=external_ns,
        syn_ns=syn_ns,
        synack_ns=synack_ns,
        ack_ns=ack_ns,
        is_ipv6=is_ipv6,
        queue_id=queue_id,
        rss_hash=rss_hash,
    )


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError("string field too long")
    return struct.pack("!H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int):
    if offset + 2 > len(data):
        raise CodecError("truncated string length")
    (length,) = struct.unpack_from("!H", data, offset)
    offset += 2
    if offset + length > len(data):
        raise CodecError("truncated string body")
    try:
        text = data[offset:offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid utf-8 in string field: {exc}") from exc
    return text, offset + length


_ENRICHED_FIXED = struct.Struct("!QQQddddII")


def encode_enriched(measurement: "EnrichedMeasurement") -> bytes:
    """Serialize an anonymized, geo-enriched measurement."""
    flags = _ENRICHED_FLAG_DEGRADED if measurement.degraded else 0
    parts = [
        bytes([ENRICHED_VERSION, flags]),
        _ENRICHED_FIXED.pack(
            measurement.timestamp_ns,
            measurement.internal_ns,
            measurement.external_ns,
            measurement.src_lat,
            measurement.src_lon,
            measurement.dst_lat,
            measurement.dst_lon,
            measurement.src_asn,
            measurement.dst_asn,
        ),
        _pack_str(measurement.src_country),
        _pack_str(measurement.src_city),
        _pack_str(measurement.dst_country),
        _pack_str(measurement.dst_city),
    ]
    return b"".join(parts)


def decode_enriched(data: bytes) -> "EnrichedMeasurement":
    """Parse wire bytes back into an EnrichedMeasurement."""
    from repro.analytics.enricher import EnrichedMeasurement

    if not data:
        raise CodecError("empty enriched payload")
    version = data[0]
    degraded = False
    if version == ENRICHED_VERSION:
        if len(data) < 2:
            raise CodecError("truncated enriched flags")
        degraded = bool(data[1] & _ENRICHED_FLAG_DEGRADED)
        offset = 2
    elif version == _ENRICHED_V1:
        offset = 1
    else:
        raise CodecError(f"unknown enriched version {version}")
    if offset + _ENRICHED_FIXED.size > len(data):
        raise CodecError("truncated enriched fixed fields")
    (
        timestamp_ns,
        internal_ns,
        external_ns,
        src_lat,
        src_lon,
        dst_lat,
        dst_lon,
        src_asn,
        dst_asn,
    ) = _ENRICHED_FIXED.unpack_from(data, offset)
    offset += _ENRICHED_FIXED.size
    src_country, offset = _unpack_str(data, offset)
    src_city, offset = _unpack_str(data, offset)
    dst_country, offset = _unpack_str(data, offset)
    dst_city, offset = _unpack_str(data, offset)
    if offset != len(data):
        raise CodecError("trailing bytes after enriched record")
    return EnrichedMeasurement(
        timestamp_ns=timestamp_ns,
        internal_ns=internal_ns,
        external_ns=external_ns,
        src_country=src_country,
        src_city=src_city,
        src_lat=src_lat,
        src_lon=src_lon,
        src_asn=src_asn,
        dst_country=dst_country,
        dst_city=dst_city,
        dst_lat=dst_lat,
        dst_lon=dst_lon,
        dst_asn=dst_asn,
        degraded=degraded,
    )
