"""The record-level admission gate at the pipeline -> MQ boundary.

Wraps the analytics ``PushSocket`` so that records the bus cannot
deliver (all peers at HWM, peerless buffer exhausted) are accounted as
*shed at the mq stage* in the overload controller instead of vanishing
into socket counters alone. The gate itself is stateless — every count
lives on the controller so one checkpoint fragment covers the episode.

Composition order matters: the fault injector's ``FaultyPushSocket``
must wrap *around* this gate (gate innermost), so injected drops never
reach ``offered`` and injected duplicates are offered twice — keeping
``gate offered == analytics ingested + shed(mq)`` exact under every
fault profile.
"""

from __future__ import annotations

from repro.overload.classify import HANDSHAKE


class GatedPushSocket:
    """PushSocket adapter feeding the overload controller's MQ ledger."""

    def __init__(self, inner, controller):
        self.inner = inner
        self.controller = controller

    def send(self, message: bytes) -> bool:
        self.controller.mq_offered += 1
        if self.inner.send(message):
            return True
        # Only latency records cross this boundary; by the time a
        # record exists its flow completed a handshake.
        self.controller.record_shed(HANDSHAKE, "mq")
        return False

    # FaultyPushSocket (and reports) read these through the wrapper.
    @property
    def sent(self) -> int:
        return self.inner.sent

    @property
    def dropped(self) -> int:
        return self.inner.dropped

    def __getattr__(self, name):
        return getattr(self.inner, name)


__all__ = ["GatedPushSocket"]
