"""Admission-time frame triage.

Ruru derives its latency signal almost entirely from small control
segments: SYN / SYN-ACK / ACK carry the 3-way-handshake RTT, and pure
ACK / FIN / RST segments drive flow-table state transitions. Data
segments are bulk. When the system must drop, the order of sacrifice
is therefore fixed:

- ``HANDSHAKE`` — any TCP segment with SYN set, or any TCP segment
  without payload (pure ACK, FIN, RST). Shed last.
- ``PAYLOAD`` — TCP segments carrying data. Shed first.
- ``OTHER`` — non-TCP or unparseable frames. Shed before handshake.

The classifier is a shallow header peek (ethertype walk, l3 proto,
TCP flags + payload length) deliberately cheaper than the worker's
full parse; it runs on *every* admitted frame so the per-class
offered counts are meaningful denominators even when nothing is shed.
"""

from __future__ import annotations

import struct

HANDSHAKE = "handshake"
PAYLOAD = "payload"
OTHER = "other"

#: Classification order is shedding priority, most-sheddable first.
CLASSES = (PAYLOAD, OTHER, HANDSHAKE)

_U16 = struct.Struct("!H")

_ETH_VLAN = 0x8100
_ETH_IPV4 = 0x0800
_ETH_IPV6 = 0x86DD
_PROTO_TCP = 6
_TCP_FLAG_SYN = 0x02


def classify_frame(data: bytes) -> str:
    """Triage one wire frame into a shed class.

    Payload length is derived from the captured frame length (not the
    IP total-length field) so truncated headers-only captures still
    classify without reparsing risk.
    """
    if len(data) < 14:
        return OTHER
    ethertype = _U16.unpack_from(data, 12)[0]
    offset = 14
    while ethertype == _ETH_VLAN:
        if len(data) < offset + 4:
            return OTHER
        ethertype = _U16.unpack_from(data, offset + 2)[0]
        offset += 4

    if ethertype == _ETH_IPV4:
        if len(data) < offset + 20:
            return OTHER
        ihl = (data[offset] & 0x0F) * 4
        if ihl < 20 or data[offset + 9] != _PROTO_TCP:
            return OTHER
        l4 = offset + ihl
    elif ethertype == _ETH_IPV6:
        if len(data) < offset + 40 or data[offset + 6] != _PROTO_TCP:
            return OTHER
        l4 = offset + 40
    else:
        return OTHER

    # Need the TCP header through the flags byte (offset 13).
    if len(data) < l4 + 14:
        return OTHER
    flags = data[l4 + 13]
    if flags & _TCP_FLAG_SYN:
        return HANDSHAKE
    data_offset = (data[l4 + 12] >> 4) * 4
    if data_offset < 20:
        return OTHER
    payload_len = len(data) - l4 - data_offset
    return PAYLOAD if payload_len > 0 else HANDSHAKE
