"""The degradation-ladder controller.

One controller instance closes the loop for a whole stack: stage
sensors (NIC rings, MQ pull queue, frontend fan-out) feed a single
pressure signal, and the controller walks a four-rung ladder::

    full  ->  sampled  ->  handshake-only  ->  headers-only
     L0        L1             L2                 L3

- **full** — admit everything.
- **sampled** — admit 1-in-N payload segments (deterministic per-class
  round-robin, not random, so runs replay exactly); everything else
  admitted.
- **handshake-only** — shed all payload; non-TCP "other" frames are
  sampled 1-in-N so protocol mix stays observable.
- **headers-only** — shed payload and other; admitted handshake frames
  are truncated to ``snap_len`` bytes (well above the deepest header
  stack we parse) to shrink every downstream copy.

Transitions obey dwell times on the *virtual* clock: a step up requires
``up_dwell_ns`` since the previous transition (pressure is urgent, so
the first step is immediate), a step down requires the pressure signal
to sit below the low watermark continuously for ``down_dwell_ns``.
Every transition is recorded as a timestamped event.

The controller is also the system-wide shed ledger: per-class offered /
admitted counts at NIC admission, per-(class, stage) shed counters, and
the MQ gate's offered count all live here so one ``state_dict`` makes
the whole overload episode checkpoint- and WAL-recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.overload.classify import CLASSES, HANDSHAKE, OTHER, PAYLOAD, classify_frame
from repro.overload.watermark import OccupancyRead, PressureSensor, WatermarkBand

NS_PER_MS = 1_000_000

LEVEL_FULL = 0
LEVEL_SAMPLED = 1
LEVEL_HANDSHAKE_ONLY = 2
LEVEL_HEADERS_ONLY = 3

LEVEL_NAMES = ("full", "sampled", "handshake-only", "headers-only")


@dataclass(frozen=True)
class OverloadTransition:
    """One timestamped ladder step."""

    at_ns: int
    from_level: int
    to_level: int
    pressure: float

    @property
    def direction(self) -> str:
        return "step-up" if self.to_level > self.from_level else "step-down"

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_ns": self.at_ns,
            "from_level": self.from_level,
            "to_level": self.to_level,
            "pressure": self.pressure,
        }

    def __str__(self) -> str:
        return (
            f"[{self.at_ns / 1e9:9.3f}s] overload {self.direction}: "
            f"{LEVEL_NAMES[self.from_level]} -> {LEVEL_NAMES[self.to_level]} "
            f"(pressure {self.pressure:.2f})"
        )


class OverloadController:
    """Watermark-driven admission controller over the stage graph."""

    def __init__(
        self,
        band: Optional[WatermarkBand] = None,
        up_dwell_ns: int = 50 * NS_PER_MS,
        down_dwell_ns: int = 250 * NS_PER_MS,
        sampled_modulus: int = 8,
        snap_len: int = 256,
    ):
        if up_dwell_ns < 0 or down_dwell_ns < 0:
            raise ValueError("dwell times cannot be negative")
        if sampled_modulus < 1:
            raise ValueError("sampled_modulus must be >= 1")
        if snap_len < 64:
            raise ValueError("snap_len must be >= 64 to keep headers parseable")
        self.band = band or WatermarkBand()
        self.up_dwell_ns = up_dwell_ns
        self.down_dwell_ns = down_dwell_ns
        self.sampled_modulus = sampled_modulus
        self.snap_len = snap_len

        self.sensors: List[PressureSensor] = []
        self.level = LEVEL_FULL
        self.level_max = LEVEL_FULL
        self.last_pressure = 0.0
        self.transitions: List[OverloadTransition] = []
        self._last_transition_ns: Optional[int] = None
        self._calm_since_ns: Optional[int] = None

        # Admission accounting (frames, at the NIC).
        self.offered: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self.admitted: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self.truncated = 0
        self.ring_displacements = 0
        # Shed accounting, attributed per (class, stage).
        self._shed: Dict[Tuple[str, str], int] = {}
        # Record accounting (the MQ gate reports here).
        self.mq_offered = 0
        # Deterministic 1-in-N admission cursors.
        self._payload_seq = 0
        self._other_seq = 0
        # Set when the frame most recently rejected by receive() was
        # shed by policy (vs. a genuine capacity drop); the pipeline
        # consumes it to split packets_shed from nic_drops.
        self._nic_shed_flag = False

    # -- sensing -----------------------------------------------------------

    def watch_stage(self, stage: str, reads: Sequence[OccupancyRead]) -> None:
        """Register occupancy probes for one stage of the graph."""
        self.sensors.append(PressureSensor(stage, reads, self.band))

    def pressure_by_stage(self) -> Dict[str, float]:
        """Last-sampled peak-occupancy fraction per watched stage."""
        out: Dict[str, float] = {}
        for sensor in self.sensors:
            out[sensor.stage] = max(out.get(sensor.stage, 0.0), sensor.last_fraction)
        return out

    def update(self, now_ns: int) -> int:
        """One control-loop tick on the virtual clock; returns the level."""
        if not self.sensors:
            return self.level
        pressured = False
        pressure = 0.0
        for sensor in self.sensors:
            if sensor.update():
                pressured = True
            pressure = max(pressure, sensor.last_fraction)
        self.last_pressure = pressure

        if pressured:
            self._calm_since_ns = None
            if self.level < LEVEL_HEADERS_ONLY and self._dwelled(now_ns):
                self._step(now_ns, self.level + 1, pressure)
            return self.level

        # Stepping down needs *all* stages below the low watermark —
        # readings inside the band hold the current level.
        calm = all(s.last_fraction <= self.band.low for s in self.sensors)
        if not calm:
            self._calm_since_ns = None
            return self.level
        if self.level > LEVEL_FULL:
            if self._calm_since_ns is None:
                self._calm_since_ns = now_ns
            elif now_ns - self._calm_since_ns >= self.down_dwell_ns:
                self._step(now_ns, self.level - 1, pressure)
                # Each further rung needs its own full calm dwell.
                self._calm_since_ns = now_ns
        return self.level

    def _dwelled(self, now_ns: int) -> bool:
        if self._last_transition_ns is None:
            return True
        return now_ns - self._last_transition_ns >= self.up_dwell_ns

    def _step(self, now_ns: int, to_level: int, pressure: float) -> None:
        self.transitions.append(
            OverloadTransition(
                at_ns=now_ns,
                from_level=self.level,
                to_level=to_level,
                pressure=pressure,
            )
        )
        self.level = to_level
        self.level_max = max(self.level_max, to_level)
        self._last_transition_ns = now_ns

    # -- admission ---------------------------------------------------------

    def admit_frame(self, data: bytes) -> Tuple[bool, str, bytes]:
        """Admission decision for one frame: (admitted, class, data).

        Every frame is classified (even at level ``full``) so the
        per-class offered counts are honest denominators. The returned
        data may be truncated at the headers-only level.
        """
        klass = classify_frame(data)
        self.offered[klass] += 1
        level = self.level

        if klass == HANDSHAKE or level == LEVEL_FULL:
            self.admitted[klass] += 1
            if (
                level == LEVEL_HEADERS_ONLY
                and klass == HANDSHAKE
                and len(data) > self.snap_len
            ):
                self.truncated += 1
                return True, klass, data[: self.snap_len]
            return True, klass, data

        if klass == PAYLOAD:
            if level == LEVEL_SAMPLED:
                self._payload_seq += 1
                if self._payload_seq % self.sampled_modulus == 0:
                    self.admitted[klass] += 1
                    return True, klass, data
        else:  # OTHER
            if level == LEVEL_SAMPLED:
                self.admitted[klass] += 1
                return True, klass, data
            if level == LEVEL_HANDSHAKE_ONLY:
                self._other_seq += 1
                if self._other_seq % self.sampled_modulus == 0:
                    self.admitted[klass] += 1
                    return True, klass, data

        self.record_shed(klass, "nic")
        self._nic_shed_flag = True
        return False, klass, data

    def is_displaceable(self, mbuf) -> bool:
        """Ring-displacement victim test: newest payload frame goes first."""
        return classify_frame(mbuf.data) == PAYLOAD

    def should_displace(self, klass: Optional[str]) -> bool:
        """Only handshake frames may evict a queued payload frame."""
        return klass == HANDSHAKE

    def record_ring_displacement(self) -> None:
        """A queued payload frame was evicted for a handshake frame.

        The victim had already been admitted (it counts as queued at
        the pipeline level), so it is shed at the *ring* stage; the
        separate displacement counter lets conservation checks split
        evictions from incoming-frame ring drops.
        """
        self.ring_displacements += 1
        self.record_shed(PAYLOAD, "ring")

    def record_ring_drop(self, klass: Optional[str]) -> None:
        """An admitted frame found its ring full and nothing to evict."""
        self.record_shed(klass if klass is not None else OTHER, "ring")
        self._nic_shed_flag = True

    def take_nic_shed(self) -> bool:
        """Consume the policy-shed flag for the last rejected frame."""
        flag = self._nic_shed_flag
        self._nic_shed_flag = False
        return flag

    # -- shed ledger -------------------------------------------------------

    def record_shed(self, klass: str, stage: str) -> None:
        key = (klass, stage)
        self._shed[key] = self._shed.get(key, 0) + 1

    def shed_counts(self) -> Dict[Tuple[str, str], int]:
        return dict(self._shed)

    def shed_total(self, klass: Optional[str] = None, stage: Optional[str] = None) -> int:
        total = 0
        for (k, s), count in self._shed.items():
            if klass is not None and k != klass:
                continue
            if stage is not None and s != stage:
                continue
            total += count
        return total

    def shed_ratio(self, klass: str) -> float:
        """Fraction of this class's offered frames shed anywhere."""
        offered = self.offered.get(klass, 0)
        if offered == 0:
            return 0.0
        # MQ-stage sheds are records, not frames; exclude them from
        # the frame-level ratio.
        frame_shed = sum(
            count for (k, s), count in self._shed.items() if k == klass and s != "mq"
        )
        return frame_shed / offered

    # -- durability --------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "level_max": self.level_max,
            "last_transition_ns": self._last_transition_ns,
            "calm_since_ns": self._calm_since_ns,
            "offered": dict(self.offered),
            "admitted": dict(self.admitted),
            "truncated": self.truncated,
            "ring_displacements": self.ring_displacements,
            "shed": [[k, s, count] for (k, s), count in sorted(self._shed.items())],
            "mq_offered": self.mq_offered,
            "payload_seq": self._payload_seq,
            "other_seq": self._other_seq,
            "transitions": [t.as_dict() for t in self.transitions],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore an overload episode mid-flight.

        Sensor hysteresis state is deliberately not persisted: queues
        are empty after recovery, so sensors re-arm from calm while the
        *level* (and every counter) resumes where the crash left it —
        the ladder steps back down only after a genuine calm dwell.
        """
        self.level = state["level"]
        self.level_max = state["level_max"]
        self._last_transition_ns = state["last_transition_ns"]
        self._calm_since_ns = state["calm_since_ns"]
        self.offered = {klass: 0 for klass in CLASSES}
        self.offered.update(state["offered"])
        self.admitted = {klass: 0 for klass in CLASSES}
        self.admitted.update(state["admitted"])
        self.truncated = state["truncated"]
        self.ring_displacements = state.get("ring_displacements", 0)
        self._shed = {(k, s): count for k, s, count in state["shed"]}
        self.mq_offered = state["mq_offered"]
        self._payload_seq = state["payload_seq"]
        self._other_seq = state["other_seq"]
        self.transitions = [
            OverloadTransition(
                at_ns=t["at_ns"],
                from_level=t["from_level"],
                to_level=t["to_level"],
                pressure=t["pressure"],
            )
            for t in state["transitions"]
        ]
        self._nic_shed_flag = False

    def summary(self) -> Dict[str, object]:
        """Flat snapshot for reports and scenario metrics."""
        return {
            "level": self.level,
            "level_name": LEVEL_NAMES[self.level],
            "level_max": self.level_max,
            "transitions": len(self.transitions),
            "offered": dict(self.offered),
            "admitted": dict(self.admitted),
            "truncated": self.truncated,
            "ring_displacements": self.ring_displacements,
            "shed": {f"{k}/{s}": count for (k, s), count in sorted(self._shed.items())},
            "mq_offered": self.mq_offered,
        }


__all__ = [
    "LEVEL_FULL",
    "LEVEL_SAMPLED",
    "LEVEL_HANDSHAKE_ONLY",
    "LEVEL_HEADERS_ONLY",
    "LEVEL_NAMES",
    "OverloadTransition",
    "OverloadController",
    "HANDSHAKE",
    "PAYLOAD",
    "OTHER",
]
