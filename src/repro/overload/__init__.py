"""Closed-loop overload control: pressure sensing, priority shedding.

The paper's premise is keeping up with a 10G tap; the one failure mode
Ruru cannot tolerate is silently falling behind it. This package closes
the loop between queue pressure and admission:

- :mod:`repro.overload.classify` — frame triage at NIC admission:
  handshake (carries the entire latency signal) vs payload vs other.
- :mod:`repro.overload.watermark` — low/high hysteresis bands and
  peak-occupancy sensors over rings and MQ queues.
- :mod:`repro.overload.controller` — the degradation ladder
  ``full -> sampled -> handshake-only -> headers-only`` stepped with
  dwell times on the virtual clock, plus per-class/per-stage shed
  accounting.
- :mod:`repro.overload.gate` — the record-level admission gate at the
  pipeline->MQ boundary.
- :mod:`repro.overload.ledger` — the extended conservation invariant
  ``ingested == processed + dropped + deadlettered + shed``.
"""

from repro.overload.classify import CLASSES, HANDSHAKE, OTHER, PAYLOAD, classify_frame
from repro.overload.controller import (
    LEVEL_NAMES,
    OverloadController,
    OverloadTransition,
)
from repro.overload.gate import GatedPushSocket
from repro.overload.ledger import OverloadLedger
from repro.overload.watermark import WatermarkBand, ring_reader, socket_reader

__all__ = [
    "CLASSES",
    "HANDSHAKE",
    "PAYLOAD",
    "OTHER",
    "classify_frame",
    "LEVEL_NAMES",
    "OverloadController",
    "OverloadTransition",
    "GatedPushSocket",
    "OverloadLedger",
    "WatermarkBand",
    "ring_reader",
    "socket_reader",
]
