"""The extended count-conservation invariant with a shed term.

PR 2 established ``ingested == processed + dropped + deadlettered``
for the analytics tier; under overload control, records shed at the MQ
boundary are a deliberate fourth destiny::

    ingested == processed + dropped + deadlettered + shed

where ``ingested`` is the gate's offered count (every record the
pipeline tried to publish) and ``shed`` is the controller's mq-stage
shed counter. Both sides live in checkpointed state, so the invariant
is WAL-replayable: recovery mid-overload reconciles exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.resilience.invariants import ConservationLedger


@dataclass(frozen=True)
class OverloadLedger:
    """``ingested == processed + dropped + deadlettered + shed``."""

    ingested: int
    processed: int
    dropped: int
    deadlettered: int
    shed: int

    @classmethod
    def from_parts(
        cls, gate_offered: int, ledger: ConservationLedger, shed_mq: int
    ) -> "OverloadLedger":
        """Combine the gate's offered count, the analytics conservation
        ledger, and the controller's mq-stage shed counter."""
        return cls(
            ingested=gate_offered,
            processed=ledger.processed,
            dropped=ledger.dropped,
            deadlettered=ledger.deadlettered,
            shed=shed_mq,
        )

    @property
    def balance(self) -> int:
        return self.ingested - (
            self.processed + self.dropped + self.deadlettered + self.shed
        )

    @property
    def ok(self) -> bool:
        return self.balance == 0

    def check(self) -> None:
        if not self.ok:
            raise AssertionError(f"overload conservation violated: {self}")

    def as_dict(self) -> Dict[str, int]:
        return {
            "ingested": self.ingested,
            "processed": self.processed,
            "dropped": self.dropped,
            "deadlettered": self.deadlettered,
            "shed": self.shed,
            "balance": self.balance,
        }

    def __str__(self) -> str:
        status = "OK" if self.ok else f"VIOLATED (balance={self.balance})"
        return (
            f"overload ledger: ingested={self.ingested} == "
            f"processed={self.processed} + dropped={self.dropped} + "
            f"deadlettered={self.deadlettered} + shed={self.shed} [{status}]"
        )


__all__ = ["OverloadLedger"]
