"""Watermark bands and peak-occupancy pressure sensors.

The simulated pipeline drains its queues to empty at every batch
boundary (that is what makes checkpoints consistent cuts), so an
instantaneous occupancy read is always zero and useless as a pressure
signal. Sensors therefore read *peak occupancy since the last read*
(``take_peak()`` on rings and MQ sockets): the high-water mark the
queue hit while the batch flowed through it.

A :class:`WatermarkBand` is a classic low/high hysteresis pair: a
stage becomes *pressured* when peak occupancy reaches the high
watermark and only calms once it falls back to the low watermark —
readings inside the band hold whatever state the sensor was in, which
is what keeps the controller from flapping on a noisy boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

#: One occupancy probe: () -> (peak_occupancy_since_last_read, capacity).
OccupancyRead = Callable[[], Tuple[int, int]]


@dataclass(frozen=True)
class WatermarkBand:
    """Hysteresis band over occupancy fractions, ``0 <= low < high <= 1``."""

    low: float = 0.5
    high: float = 0.85

    def __post_init__(self):
        if not (0.0 <= self.low < self.high <= 1.0):
            raise ValueError(
                f"watermark band requires 0 <= low < high <= 1, "
                f"got low={self.low} high={self.high}"
            )


class PressureSensor:
    """Hysteresis state over one stage's occupancy probes."""

    def __init__(self, stage: str, reads: Sequence[OccupancyRead], band: WatermarkBand):
        if not reads:
            raise ValueError(f"sensor for stage {stage!r} needs at least one probe")
        self.stage = stage
        self.reads: List[OccupancyRead] = list(reads)
        self.band = band
        self.pressured = False
        self.last_fraction = 0.0

    def update(self) -> bool:
        """Read all probes, apply hysteresis, return the pressured state."""
        fraction = 0.0
        for read in self.reads:
            peak, capacity = read()
            if capacity > 0:
                fraction = max(fraction, peak / capacity)
        self.last_fraction = fraction
        if fraction >= self.band.high:
            self.pressured = True
        elif fraction <= self.band.low:
            self.pressured = False
        return self.pressured


def ring_reader(ring) -> OccupancyRead:
    """Occupancy probe over a :class:`repro.dpdk.ring.Ring`."""
    return lambda: (ring.take_peak(), ring.capacity)


def socket_reader(sock) -> OccupancyRead:
    """Occupancy probe over a receiving MQ socket (PULL/SUB)."""
    return lambda: (sock.take_peak(), sock.hwm)
