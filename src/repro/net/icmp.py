"""ICMP message encoding and decoding (RFC 792), echo-centric.

Another drop path for the pre-parse filter: pings and unreachables
cross the tap constantly. Echo request/reply carry id/seq; other
types are preserved as raw rest-of-header plus payload.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11

_HEADER = struct.Struct("!BBH")
HEADER_LEN = 8  # type, code, checksum, rest-of-header


@dataclass
class IcmpMessage:
    """One ICMP message.

    For echo types, ``rest`` holds packed (identifier, sequence);
    use :meth:`echo` to build and :attr:`identifier`/:attr:`sequence`
    to read.
    """

    icmp_type: int = TYPE_ECHO_REQUEST
    code: int = 0
    checksum: int = 0
    rest: bytes = b"\x00" * 4
    payload: bytes = field(default=b"", repr=False)

    @classmethod
    def echo(
        cls, identifier: int, sequence: int, payload: bytes = b"", reply: bool = False
    ) -> "IcmpMessage":
        """Build an echo request (or reply)."""
        return cls(
            icmp_type=TYPE_ECHO_REPLY if reply else TYPE_ECHO_REQUEST,
            rest=struct.pack("!HH", identifier, sequence),
            payload=payload,
        )

    @property
    def identifier(self) -> int:
        return struct.unpack("!H", self.rest[:2])[0]

    @property
    def sequence(self) -> int:
        return struct.unpack("!H", self.rest[2:4])[0]

    def pack(self) -> bytes:
        """Serialize with a computed checksum."""
        rest = (self.rest + b"\x00" * 4)[:4]
        body = _HEADER.pack(self.icmp_type, self.code, 0) + rest + self.payload
        checksum = internet_checksum(body)
        return body[:2] + struct.pack("!H", checksum) + body[4:]

    @classmethod
    def unpack(cls, data: bytes) -> "IcmpMessage":
        """Parse wire bytes."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"truncated ICMP message: {len(data)} bytes")
        icmp_type, code, checksum = _HEADER.unpack_from(data)
        return cls(
            icmp_type=icmp_type,
            code=code,
            checksum=checksum,
            rest=bytes(data[4:8]),
            payload=bytes(data[8:]),
        )

    def verify_checksum(self, raw: bytes) -> bool:
        """True if the raw message checksums to zero."""
        return internet_checksum(raw) == 0
