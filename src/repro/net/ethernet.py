"""Ethernet II framing with optional 802.1Q VLAN tags."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_VLAN = 0x8100

_HEADER = struct.Struct("!6s6sH")
_VLAN_TAG = struct.Struct("!HH")

HEADER_LEN = _HEADER.size  # 14
VLAN_TAG_LEN = _VLAN_TAG.size  # 4


@dataclass
class EthernetFrame:
    """An Ethernet II frame, optionally 802.1Q tagged.

    Attributes:
        dst_mac: destination MAC, 6 raw bytes.
        src_mac: source MAC, 6 raw bytes.
        ethertype: the ethertype of the *payload* (after any VLAN tag).
        vlan_id: 12-bit VLAN id, or None when untagged.
        vlan_pcp: 3-bit priority code point (only meaningful when tagged).
        payload: the L3 packet bytes.
    """

    dst_mac: bytes = b"\x00" * 6
    src_mac: bytes = b"\x00" * 6
    ethertype: int = ETHERTYPE_IPV4
    vlan_id: Optional[int] = None
    vlan_pcp: int = 0
    payload: bytes = field(default=b"", repr=False)

    def pack(self) -> bytes:
        """Serialize to wire bytes."""
        if self.vlan_id is None:
            header = _HEADER.pack(self.dst_mac, self.src_mac, self.ethertype)
            return header + self.payload
        if not 0 <= self.vlan_id < 4096:
            raise ValueError(f"VLAN id out of range: {self.vlan_id}")
        tci = ((self.vlan_pcp & 0x7) << 13) | (self.vlan_id & 0x0FFF)
        header = _HEADER.pack(self.dst_mac, self.src_mac, ETHERTYPE_VLAN)
        tag = _VLAN_TAG.pack(tci, self.ethertype)
        return header + tag + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetFrame":
        """Parse wire bytes into a frame, following one VLAN tag if present."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"truncated Ethernet header: {len(data)} bytes")
        dst, src, ethertype = _HEADER.unpack_from(data)
        offset = HEADER_LEN
        vlan_id: Optional[int] = None
        vlan_pcp = 0
        if ethertype == ETHERTYPE_VLAN:
            if len(data) < offset + VLAN_TAG_LEN:
                raise ValueError("truncated 802.1Q tag")
            tci, ethertype = _VLAN_TAG.unpack_from(data, offset)
            vlan_id = tci & 0x0FFF
            vlan_pcp = (tci >> 13) & 0x7
            offset += VLAN_TAG_LEN
        return cls(
            dst_mac=dst,
            src_mac=src,
            ethertype=ethertype,
            vlan_id=vlan_id,
            vlan_pcp=vlan_pcp,
            payload=data[offset:],
        )

    @property
    def header_len(self) -> int:
        """Length of the L2 header (14 or 18 with a VLAN tag)."""
        return HEADER_LEN + (VLAN_TAG_LEN if self.vlan_id is not None else 0)
