"""UDP header encoding and decoding (RFC 768).

Ruru itself ignores UDP — it measures TCP handshakes — but the tap
carries plenty of it (DNS, QUIC, NTP), and the pipeline's pre-parse
filter must classify and drop it cheaply. The generator's noise
module builds real UDP datagrams with this header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

_HEADER = struct.Struct("!HHHH")
HEADER_LEN = _HEADER.size  # 8


@dataclass
class UdpHeader:
    """A UDP header plus payload."""

    src_port: int = 0
    dst_port: int = 0
    checksum: int = 0
    payload: bytes = field(default=b"", repr=False)

    def pack(self) -> bytes:
        """Serialize to wire bytes (length computed)."""
        length = HEADER_LEN + len(self.payload)
        return _HEADER.pack(self.src_port, self.dst_port, length, self.checksum) + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        """Parse wire bytes; payload sliced by the length field."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"truncated UDP header: {len(data)} bytes")
        src_port, dst_port, length, checksum = _HEADER.unpack_from(data)
        if length < HEADER_LEN:
            raise ValueError(f"bad UDP length {length}")
        end = min(length, len(data))
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            checksum=checksum,
            payload=bytes(data[HEADER_LEN:end]),
        )
