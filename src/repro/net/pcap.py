"""libpcap-format trace reader and writer.

Supports both the classic microsecond format (magic ``0xa1b2c3d4``)
and the nanosecond variant (``0xa1b23c4d``) in either byte order.
Ruru records sub-microsecond timestamps, so the writer defaults to
the nanosecond magic.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Union

from repro.net.packet import Packet

MAGIC_MICROS = 0xA1B2C3D4
MAGIC_NANOS = 0xA1B23C4D
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")


class PcapError(IOError):
    """Raised for malformed pcap files."""


class PcapWriter:
    """Streams :class:`Packet` objects to a pcap file.

    Usable as a context manager::

        with PcapWriter("trace.pcap") as writer:
            writer.write(packet)
    """

    def __init__(
        self,
        path: Union[str, Path, BinaryIO],
        nanosecond: bool = True,
        snaplen: int = 65535,
        linktype: int = LINKTYPE_ETHERNET,
    ):
        if hasattr(path, "write"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path, "wb")
            self._owns_file = True
        self.nanosecond = nanosecond
        self.snaplen = snaplen
        magic = MAGIC_NANOS if nanosecond else MAGIC_MICROS
        self._file.write(
            _GLOBAL_HEADER.pack(magic, 2, 4, 0, 0, snaplen, linktype)
        )
        self.packets_written = 0

    def write(self, packet: Packet) -> None:
        """Append one packet record."""
        seconds, remainder_ns = divmod(packet.timestamp_ns, 1_000_000_000)
        subsecond = remainder_ns if self.nanosecond else remainder_ns // 1000
        captured = packet.data[: self.snaplen]
        self._file.write(
            _RECORD_HEADER.pack(seconds, subsecond, len(captured), len(packet.data))
        )
        self._file.write(captured)
        self.packets_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapReader:
    """Iterates :class:`Packet` objects out of a pcap file.

    Handles both endiannesses and both timestamp resolutions; yields
    timestamps normalized to nanoseconds.
    """

    def __init__(self, path: Union[str, Path, BinaryIO]):
        if hasattr(path, "read"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path, "rb")
            self._owns_file = True
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic_le = struct.unpack("<I", header[:4])[0]
        magic_be = struct.unpack(">I", header[:4])[0]
        if magic_le in (MAGIC_MICROS, MAGIC_NANOS):
            self._endian = "<"
            magic = magic_le
        elif magic_be in (MAGIC_MICROS, MAGIC_NANOS):
            self._endian = ">"
            magic = magic_be
        else:
            raise PcapError(f"bad pcap magic: {header[:4].hex()}")
        self.nanosecond = magic == MAGIC_NANOS
        fields = struct.unpack(self._endian + "HHiIII", header[4:])
        self.version = (fields[0], fields[1])
        self.snaplen = fields[4]
        self.linktype = fields[5]
        self._record = struct.Struct(self._endian + "IIII")

    def __iter__(self) -> Iterator[Packet]:
        return self

    def __next__(self) -> Packet:
        packet = self.read_packet()
        if packet is None:
            raise StopIteration
        return packet

    def read_packet(self) -> Optional[Packet]:
        """Read one record, or None at EOF."""
        header = self._file.read(self._record.size)
        if not header:
            return None
        if len(header) < self._record.size:
            raise PcapError("truncated pcap record header")
        seconds, subsecond, captured_len, _original_len = self._record.unpack(header)
        data = self._file.read(captured_len)
        if len(data) < captured_len:
            raise PcapError("truncated pcap record body")
        scale = 1 if self.nanosecond else 1000
        timestamp_ns = seconds * 1_000_000_000 + subsecond * scale
        return Packet(data=data, timestamp_ns=timestamp_ns)

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
