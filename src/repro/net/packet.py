"""Whole-packet model: raw wire bytes plus capture metadata.

A :class:`Packet` is what the simulated NIC receives and what pcap
files store: the frame bytes and a capture timestamp in nanoseconds
(Ruru records "sub-microsecond timestamps", so nanosecond resolution
is the native unit throughout the pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.checksum import tcp_checksum_ipv4, tcp_checksum_ipv6
from repro.net.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetFrame
from repro.net.ipv4 import IPv4Header, PROTO_TCP
from repro.net.ipv6 import IPv6Header
from repro.net.tcp import TcpHeader


@dataclass
class Packet:
    """Raw frame bytes plus the tap's capture timestamp (ns)."""

    data: bytes = field(repr=False, default=b"")
    timestamp_ns: int = 0

    def __len__(self) -> int:
        return len(self.data)

    @property
    def timestamp_s(self) -> float:
        """Capture timestamp in floating seconds (pcap convention)."""
        return self.timestamp_ns / 1e9

    def ethernet(self) -> EthernetFrame:
        """Decode the L2 header (full parse; the hot path uses net.parser)."""
        return EthernetFrame.unpack(self.data)


def build_tcp_packet(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    flags: int,
    *,
    seq: int = 0,
    ack: int = 0,
    payload: bytes = b"",
    options: Optional[list] = None,
    timestamp_ns: int = 0,
    ipv6: bool = False,
    ttl: int = 64,
    window: int = 65535,
    vlan_id: Optional[int] = None,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
    compute_checksum: bool = True,
) -> Packet:
    """Build a complete Ethernet/IP/TCP frame ready for the pipeline.

    This is the traffic generator's workhorse: it produces genuine
    wire-format bytes so the parsing path in tests and benchmarks is
    identical to parsing a real capture.
    """
    tcp = TcpHeader(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        options=list(options) if options else [],
        payload=payload,
    )
    segment = tcp.pack()
    if compute_checksum:
        if ipv6:
            checksum = tcp_checksum_ipv6(src_ip, dst_ip, segment)
        else:
            checksum = tcp_checksum_ipv4(src_ip, dst_ip, segment)
        segment = segment[:16] + checksum.to_bytes(2, "big") + segment[18:]

    if ipv6:
        ip_bytes = IPv6Header(
            src=src_ip, dst=dst_ip, next_header=PROTO_TCP, hop_limit=ttl, payload=segment
        ).pack()
        ethertype = ETHERTYPE_IPV6
    else:
        ip_bytes = IPv4Header(
            src=src_ip, dst=dst_ip, protocol=PROTO_TCP, ttl=ttl, payload=segment
        ).pack()
        ethertype = ETHERTYPE_IPV4

    frame = EthernetFrame(
        dst_mac=dst_mac,
        src_mac=src_mac,
        ethertype=ethertype,
        vlan_id=vlan_id,
        payload=ip_bytes,
    )
    return Packet(data=frame.pack(), timestamp_ns=timestamp_ns)
