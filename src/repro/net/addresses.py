"""Address helpers: IPv4/IPv6 text and integer forms, MAC addresses.

The latency pipeline keys flow tables on integer addresses (cheap to
hash and compare); the analytics tier and examples use dotted-quad /
colon-hex text. These converters are the single point of truth for
both representations.
"""

from __future__ import annotations


class IPAddressError(ValueError):
    """Raised when an address string or integer is malformed."""


_IPV4_MAX = (1 << 32) - 1
_IPV6_MAX = (1 << 128) - 1


def ip_to_int(text: str) -> int:
    """Convert dotted-quad IPv4 text to a 32-bit integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise IPAddressError(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise IPAddressError(f"bad IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise IPAddressError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad IPv4 text.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= _IPV4_MAX:
        raise IPAddressError(f"IPv4 integer out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def ipv6_to_int(text: str) -> int:
    """Convert colon-hex IPv6 text (with ``::`` compression) to a 128-bit int."""
    if text.count("::") > 1:
        raise IPAddressError(f"multiple '::' in {text!r}")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise IPAddressError(f"'::' expands to nothing in {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise IPAddressError(f"IPv6 address needs 8 groups: {text!r}")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise IPAddressError(f"bad IPv6 group {group!r} in {text!r}")
        try:
            word = int(group, 16)
        except ValueError as exc:
            raise IPAddressError(f"bad IPv6 group {group!r} in {text!r}") from exc
        value = (value << 16) | word
    return value


def int_to_ipv6(value: int) -> str:
    """Convert a 128-bit integer to canonical (RFC 5952) IPv6 text."""
    if not 0 <= value <= _IPV6_MAX:
        raise IPAddressError(f"IPv6 integer out of range: {value}")
    groups = [(value >> (112 - 16 * i)) & 0xFFFF for i in range(8)]
    # Find the longest run of zero groups (length >= 2) for '::' compression.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = i, 1
            else:
                run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


def is_ipv4(text: str) -> bool:
    """Return True if *text* parses as an IPv4 address."""
    try:
        ip_to_int(text)
    except IPAddressError:
        return False
    return True


def is_ipv6(text: str) -> bool:
    """Return True if *text* parses as an IPv6 address."""
    try:
        ipv6_to_int(text)
    except IPAddressError:
        return False
    return True


def mac_to_bytes(text: str) -> bytes:
    """Convert ``aa:bb:cc:dd:ee:ff`` MAC text to 6 raw bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise IPAddressError(f"not a MAC address: {text!r}")
    try:
        raw = bytes(int(part, 16) for part in parts)
    except ValueError as exc:
        raise IPAddressError(f"bad MAC byte in {text!r}") from exc
    if any(len(part) != 2 for part in parts):
        raise IPAddressError(f"MAC bytes must be two hex digits: {text!r}")
    return raw


def bytes_to_mac(raw: bytes) -> str:
    """Convert 6 raw bytes to ``aa:bb:cc:dd:ee:ff`` MAC text."""
    if len(raw) != 6:
        raise IPAddressError(f"MAC needs 6 bytes, got {len(raw)}")
    return ":".join(f"{b:02x}" for b in raw)
