"""Packet substrate: wire formats, parsing, and pcap I/O.

This package implements the on-the-wire encodings Ruru's DPDK stage
consumes — Ethernet (with 802.1Q VLAN), IPv4, IPv6, and TCP — plus a
fast pre-parser (:mod:`repro.net.parser`) that extracts exactly the
fields the latency pipeline needs, and a libpcap-compatible trace
reader/writer (:mod:`repro.net.pcap`).

Everything here is pure Python operating on :class:`bytes`; packets
built by :mod:`repro.traffic` are real wire-format frames, so the
parsing path exercised in tests and benchmarks is the same one a
capture file from a real tap would exercise.
"""

from repro.net.addresses import (
    IPAddressError,
    ip_to_int,
    int_to_ip,
    ipv6_to_int,
    int_to_ipv6,
    is_ipv4,
    is_ipv6,
    mac_to_bytes,
    bytes_to_mac,
)
from repro.net.checksum import internet_checksum, tcp_checksum_ipv4, tcp_checksum_ipv6
from repro.net.ethernet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ETHERTYPE_VLAN,
    EthernetFrame,
)
from repro.net.ipv4 import IPv4Header, PROTO_TCP, PROTO_UDP
from repro.net.ipv6 import IPv6Header
from repro.net.tcp import (
    TCP_FLAG_ACK,
    TCP_FLAG_FIN,
    TCP_FLAG_PSH,
    TCP_FLAG_RST,
    TCP_FLAG_SYN,
    TCP_FLAG_URG,
    TcpHeader,
    TcpOption,
)
from repro.net.packet import Packet, build_tcp_packet
from repro.net.parser import ParsedPacket, PacketParser, ParseError
from repro.net.pcap import PcapReader, PcapWriter, PcapError
from repro.net.pcapng import PcapngReader, PcapngWriter, open_capture

__all__ = [
    "IPAddressError",
    "ip_to_int",
    "int_to_ip",
    "ipv6_to_int",
    "int_to_ipv6",
    "is_ipv4",
    "is_ipv6",
    "mac_to_bytes",
    "bytes_to_mac",
    "internet_checksum",
    "tcp_checksum_ipv4",
    "tcp_checksum_ipv6",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPV6",
    "ETHERTYPE_VLAN",
    "EthernetFrame",
    "IPv4Header",
    "IPv6Header",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_FLAG_ACK",
    "TCP_FLAG_FIN",
    "TCP_FLAG_PSH",
    "TCP_FLAG_RST",
    "TCP_FLAG_SYN",
    "TCP_FLAG_URG",
    "TcpHeader",
    "TcpOption",
    "Packet",
    "build_tcp_packet",
    "ParsedPacket",
    "PacketParser",
    "ParseError",
    "PcapReader",
    "PcapWriter",
    "PcapError",
    "PcapngReader",
    "PcapngWriter",
    "open_capture",
]
