"""RFC 1071 Internet checksum and TCP pseudo-header checksums.

Ruru's DPDK stage does not verify checksums (the NIC does), but the
traffic generator must emit frames that a strict parser — or a real
tool reading our pcap output — would accept, so we compute them
properly here.
"""

from __future__ import annotations

import struct


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement checksum of *data* (RFC 1071)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries back into the low 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _pseudo_header_v4(src: int, dst: int, proto: int, length: int) -> bytes:
    return struct.pack("!IIBBH", src, dst, 0, proto, length)


def _pseudo_header_v6(src: int, dst: int, proto: int, length: int) -> bytes:
    return (
        src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
        + struct.pack("!IBBBB", length, 0, 0, 0, proto)
    )


def tcp_checksum_ipv4(src: int, dst: int, segment: bytes) -> int:
    """TCP checksum over the IPv4 pseudo-header and *segment*.

    *segment* is the full TCP header+payload with its checksum field
    zeroed; *src*/*dst* are integer IPv4 addresses.
    """
    pseudo = _pseudo_header_v4(src, dst, 6, len(segment))
    return internet_checksum(pseudo + segment)


def tcp_checksum_ipv6(src: int, dst: int, segment: bytes) -> int:
    """TCP checksum over the IPv6 pseudo-header and *segment*."""
    pseudo = _pseudo_header_v6(src, dst, 6, len(segment))
    return internet_checksum(pseudo + segment)
