"""pcapng (pcap Next Generation) trace reader and writer.

Modern capture tooling writes pcapng rather than classic pcap; a
reproduction meant to ingest real captures needs both. This
implements the blocks a packet trace actually uses:

* Section Header Block (SHB, 0x0A0D0D0A) with the byte-order magic,
* Interface Description Block (IDB, 0x01) with ``if_tsresol`` —
  the writer sets nanosecond resolution, the reader honours whatever
  power-of-10 resolution the file declares,
* Enhanced Packet Block (EPB, 0x06) carrying the frames,
* Simple Packet Block (SPB, 0x03) read support (no timestamps).

Unknown block types are skipped, as the spec requires.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Union

from repro.net.packet import Packet
from repro.net.pcap import PcapError

SHB_TYPE = 0x0A0D0D0A
IDB_TYPE = 0x00000001
SPB_TYPE = 0x00000003
EPB_TYPE = 0x00000006

BYTE_ORDER_MAGIC = 0x1A2B3C4D
LINKTYPE_ETHERNET = 1

_OPT_ENDOFOPT = 0
_OPT_IF_TSRESOL = 9


def _pad4(length: int) -> int:
    return (4 - length % 4) % 4


class PcapngWriter:
    """Streams packets into a single-section, single-interface file."""

    def __init__(
        self,
        path: Union[str, Path, BinaryIO],
        linktype: int = LINKTYPE_ETHERNET,
        snaplen: int = 65535,
    ):
        if hasattr(path, "write"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path, "wb")
            self._owns_file = True
        self.packets_written = 0
        self._write_shb()
        self._write_idb(linktype, snaplen)

    def _write_block(self, block_type: int, body: bytes) -> None:
        total = 12 + len(body) + _pad4(len(body))
        self._file.write(struct.pack("<II", block_type, total))
        self._file.write(body)
        self._file.write(b"\x00" * _pad4(len(body)))
        self._file.write(struct.pack("<I", total))

    def _write_shb(self) -> None:
        body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
        self._write_block(SHB_TYPE, body)

    def _write_idb(self, linktype: int, snaplen: int) -> None:
        # if_tsresol option: 9 -> nanoseconds.
        options = struct.pack("<HH", _OPT_IF_TSRESOL, 1) + b"\x09" + b"\x00" * 3
        options += struct.pack("<HH", _OPT_ENDOFOPT, 0)
        body = struct.pack("<HHI", linktype, 0, snaplen) + options
        self._write_block(IDB_TYPE, body)

    def write(self, packet: Packet) -> None:
        """Append one Enhanced Packet Block."""
        timestamp = packet.timestamp_ns
        header = struct.pack(
            "<IIIII",
            0,  # interface id
            (timestamp >> 32) & 0xFFFFFFFF,
            timestamp & 0xFFFFFFFF,
            len(packet.data),
            len(packet.data),
        )
        self._write_block(EPB_TYPE, header + packet.data)
        self.packets_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapngWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapngReader:
    """Iterates packets out of a pcapng file (EPB and SPB blocks)."""

    def __init__(self, path: Union[str, Path, BinaryIO]):
        if hasattr(path, "read"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path, "rb")
            self._owns_file = True
        self._endian = "<"
        self._tsresol_ns = 1_000  # default per spec: microseconds
        self.linktype: Optional[int] = None
        self._read_section_header()

    # -- low-level block reading ----------------------------------------

    def _read_exact(self, count: int) -> bytes:
        data = self._file.read(count)
        if len(data) < count:
            raise PcapError("truncated pcapng block")
        return data

    def _read_section_header(self) -> None:
        block_type_raw = self._read_exact(4)
        if struct.unpack("<I", block_type_raw)[0] != SHB_TYPE:
            raise PcapError("not a pcapng file (no SHB)")
        length_raw = self._read_exact(4)
        magic_raw = self._read_exact(4)
        if struct.unpack("<I", magic_raw)[0] == BYTE_ORDER_MAGIC:
            self._endian = "<"
        elif struct.unpack(">I", magic_raw)[0] == BYTE_ORDER_MAGIC:
            self._endian = ">"
        else:
            raise PcapError("bad pcapng byte-order magic")
        total_length = struct.unpack(self._endian + "I", length_raw)[0]
        if total_length < 28 or total_length % 4:
            raise PcapError(f"bad SHB length {total_length}")
        # Consumed so far: type + length + magic (12 bytes). Skip the
        # rest of the body, then the trailing length.
        self._read_exact(total_length - 16)
        self._read_exact(4)

    def _next_block(self):
        header = self._file.read(8)
        if len(header) == 0:
            return None
        if len(header) < 8:
            raise PcapError("truncated pcapng block header")
        block_type, total_length = struct.unpack(self._endian + "II", header)
        if total_length < 12 or total_length % 4:
            raise PcapError(f"bad block length {total_length}")
        body = self._read_exact(total_length - 12)
        trailer = struct.unpack(self._endian + "I", self._read_exact(4))[0]
        if trailer != total_length:
            raise PcapError("pcapng block trailer mismatch")
        return block_type, body

    # -- block interpretation ----------------------------------------------

    def _handle_idb(self, body: bytes) -> None:
        if len(body) < 8:
            raise PcapError("truncated IDB")
        self.linktype = struct.unpack_from(self._endian + "H", body, 0)[0]
        offset = 8
        while offset + 4 <= len(body):
            code, length = struct.unpack_from(self._endian + "HH", body, offset)
            offset += 4
            if code == _OPT_ENDOFOPT:
                break
            value = body[offset:offset + length]
            offset += length + _pad4(length)
            if code == _OPT_IF_TSRESOL and length >= 1:
                resolution = value[0]
                if resolution & 0x80:
                    # Power-of-2 resolution: convert to ns approximately.
                    self._tsresol_ns = max(1, 10**9 >> (resolution & 0x7F))
                else:
                    self._tsresol_ns = max(1, 10 ** (9 - resolution))

    def _handle_epb(self, body: bytes) -> Packet:
        if len(body) < 20:
            raise PcapError("truncated EPB")
        (_iface, ts_high, ts_low, captured_len, _original_len) = struct.unpack_from(
            self._endian + "IIIII", body, 0
        )
        data = body[20:20 + captured_len]
        if len(data) < captured_len:
            raise PcapError("truncated EPB payload")
        ticks = (ts_high << 32) | ts_low
        return Packet(data=bytes(data), timestamp_ns=ticks * self._tsresol_ns)

    # -- iteration --------------------------------------------------------------

    def read_packet(self) -> Optional[Packet]:
        """Next packet, or None at end of file."""
        while True:
            block = self._next_block()
            if block is None:
                return None
            block_type, body = block
            if block_type == IDB_TYPE:
                self._handle_idb(body)
            elif block_type == EPB_TYPE:
                return self._handle_epb(body)
            elif block_type == SPB_TYPE:
                if len(body) < 4:
                    raise PcapError("truncated SPB")
                length = struct.unpack_from(self._endian + "I", body)[0]
                return Packet(data=bytes(body[4:4 + length]), timestamp_ns=0)
            elif block_type == SHB_TYPE:
                raise PcapError("multi-section pcapng files are not supported")
            # Any other block type: skip, per spec.

    def __iter__(self) -> Iterator[Packet]:
        return self

    def __next__(self) -> Packet:
        packet = self.read_packet()
        if packet is None:
            raise StopIteration
        return packet

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapngReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_capture(path: Union[str, Path]):
    """Open either a classic pcap or a pcapng by magic sniffing."""
    from repro.net.pcap import PcapReader

    with open(path, "rb") as probe:
        magic = probe.read(4)
    if struct.unpack("<I", magic)[0] == SHB_TYPE:
        return PcapngReader(path)
    return PcapReader(path)
