"""tcpdump-style one-line packet rendering.

Debugging a measurement pipeline starts with looking at packets; this
gives the familiar one-line-per-packet view for any capture the tools
here produce or ingest::

    0.000000 IP 20.0.158.136.7144 > 20.16.85.207.443: Flags [S], seq 1092489313, length 0

Formatting follows tcpdump's TCP output closely enough to be read by
muscle memory; non-TCP frames fall back to a short classification.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.net.addresses import int_to_ip, int_to_ipv6
from repro.net.packet import Packet
from repro.net.parser import PacketParser, ParseError

_FLAG_LETTERS = [
    (0x02, "S"),
    (0x01, "F"),
    (0x04, "R"),
    (0x08, "P"),
    (0x20, "U"),
    (0x40, "E"),
    (0x80, "W"),
]


def flags_letters(flags: int) -> str:
    """tcpdump's flag string: ``[S]``, ``[S.]``, ``[P.]``, ``[.]``…"""
    letters = "".join(letter for bit, letter in _FLAG_LETTERS if flags & bit)
    if flags & 0x10:  # ACK renders as a trailing dot
        letters += "."
    return letters or "none"


def format_packet(
    packet: Packet,
    parser: Optional[PacketParser] = None,
    reference_ns: int = 0,
) -> str:
    """One line for one packet; *reference_ns* anchors the timestamp."""
    parser = parser or PacketParser(extract_timestamps=True)
    elapsed_s = (packet.timestamp_ns - reference_ns) / 1e9
    prefix = f"{elapsed_s:.6f}"
    try:
        parsed = parser.parse(packet.data, packet.timestamp_ns)
    except ParseError as error:
        return f"{prefix} [{error.reason}] {len(packet.data)} bytes"

    if parsed.is_ipv6:
        src = f"{int_to_ipv6(parsed.src_ip)}.{parsed.src_port}"
        dst = f"{int_to_ipv6(parsed.dst_ip)}.{parsed.dst_port}"
        family = "IP6"
    else:
        src = f"{int_to_ip(parsed.src_ip)}.{parsed.src_port}"
        dst = f"{int_to_ip(parsed.dst_ip)}.{parsed.dst_port}"
        family = "IP"
    parts = [
        f"{prefix} {family} {src} > {dst}:",
        f"Flags [{flags_letters(parsed.flags)}],",
        f"seq {parsed.seq},",
    ]
    if parsed.flags & 0x10:
        parts.append(f"ack {parsed.ack},")
    if parsed.tsval is not None:
        parts.append(f"TS val {parsed.tsval} ecr {parsed.tsecr},")
    parts.append(f"length {parsed.payload_len}")
    return " ".join(parts)


def dump(
    packets: Iterable[Packet],
    limit: Optional[int] = None,
    relative_time: bool = True,
) -> Iterator[str]:
    """Render a stream of packets to lines (generator)."""
    parser = PacketParser(extract_timestamps=True)
    reference: Optional[int] = None
    for index, packet in enumerate(packets):
        if limit is not None and index >= limit:
            return
        if reference is None:
            reference = packet.timestamp_ns if relative_time else 0
        yield format_packet(packet, parser=parser, reference_ns=reference)
