"""Fast TCP pre-parser — the pipeline's hot path.

Ruru "pre-parses all TCP packet headers" before the handshake logic.
This module does the equivalent: a single pass over the raw frame that
extracts only the fields the latency engine needs (addresses, ports,
flags, seq/ack, payload length, and optionally the TCP timestamp
option for the pping baseline), without building the full header
dataclasses from :mod:`repro.net.ethernet` et al.

Non-TCP and malformed packets raise :class:`ParseError`; the pipeline
counts and drops them, mirroring the DPDK application's filter.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6, ETHERTYPE_VLAN
from repro.net.ipv4 import PROTO_TCP
from repro.net.ipv6 import SKIPPABLE_EXTENSIONS
from repro.net.tcp import OPT_END, OPT_NOP, OPT_TIMESTAMP

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")


class ParseError(ValueError):
    """Raised for frames the fast path cannot or will not handle.

    The ``reason`` attribute is a short stable token used by the
    pipeline's drop counters (e.g. ``"not-tcp"``, ``"truncated"``).
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason


@dataclass(frozen=True)
class ParsedPacket:
    """The minimal view of a TCP packet the latency engine consumes."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    flags: int
    seq: int
    ack: int
    payload_len: int
    timestamp_ns: int
    is_ipv6: bool = False
    tsval: Optional[int] = None
    tsecr: Optional[int] = None

    @property
    def is_syn(self) -> bool:
        """Pure SYN (connection-open attempt)."""
        return (self.flags & 0x12) == 0x02

    @property
    def is_synack(self) -> bool:
        """SYN+ACK."""
        return (self.flags & 0x12) == 0x12

    @property
    def is_ack(self) -> bool:
        """ACK without SYN (includes the handshake-completing ACK)."""
        return (self.flags & 0x12) == 0x10

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & 0x04)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & 0x01)

    def four_tuple(self) -> Tuple[int, int, int, int]:
        """(src_ip, src_port, dst_ip, dst_port) in packet direction."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)


class PacketParser:
    """Stateless fast parser; one instance is shared per worker.

    Args:
        extract_timestamps: also decode the RFC 7323 timestamp option
            (needed only by the pping baseline; the Ruru fast path
            leaves it off).
        max_vlan_tags: how many stacked 802.1Q tags to skip.
    """

    def __init__(self, extract_timestamps: bool = False, max_vlan_tags: int = 2):
        self.extract_timestamps = extract_timestamps
        self.max_vlan_tags = max_vlan_tags

    def parse(self, data: bytes, timestamp_ns: int) -> ParsedPacket:
        """Parse one raw frame into a :class:`ParsedPacket`.

        Raises:
            ParseError: for truncated frames, non-IP ethertypes,
                non-TCP protocols, and IP fragments (the handshake
                packets Ruru cares about are never fragmented).
        """
        if len(data) < 14:
            raise ParseError("truncated", "ethernet header")
        ethertype = _U16.unpack_from(data, 12)[0]
        offset = 14
        tags = 0
        while ethertype == ETHERTYPE_VLAN:
            if tags >= self.max_vlan_tags:
                raise ParseError("vlan-depth", f">{self.max_vlan_tags} tags")
            if len(data) < offset + 4:
                raise ParseError("truncated", "vlan tag")
            ethertype = _U16.unpack_from(data, offset + 2)[0]
            offset += 4
            tags += 1

        if ethertype == ETHERTYPE_IPV4:
            return self._parse_ipv4(data, offset, timestamp_ns)
        if ethertype == ETHERTYPE_IPV6:
            return self._parse_ipv6(data, offset, timestamp_ns)
        raise ParseError("not-ip", f"ethertype 0x{ethertype:04x}")

    # -- L3 ------------------------------------------------------------

    def _parse_ipv4(self, data: bytes, offset: int, ts: int) -> ParsedPacket:
        if len(data) < offset + 20:
            raise ParseError("truncated", "ipv4 header")
        version_ihl = data[offset]
        if version_ihl >> 4 != 4:
            raise ParseError("bad-version", "ipv4")
        ihl = (version_ihl & 0xF) * 4
        if ihl < 20 or len(data) < offset + ihl:
            raise ParseError("truncated", "ipv4 options")
        total_length = _U16.unpack_from(data, offset + 2)[0]
        flags_frag = _U16.unpack_from(data, offset + 6)[0]
        # A non-zero fragment offset or the more-fragments bit means this
        # is part of a fragmented datagram; handshake packets never are.
        if flags_frag & 0x1FFF or flags_frag & 0x2000:
            raise ParseError("fragment", "ipv4")
        protocol = data[offset + 9]
        if protocol != PROTO_TCP:
            raise ParseError("not-tcp", f"ipv4 proto {protocol}")
        src = _U32.unpack_from(data, offset + 12)[0]
        dst = _U32.unpack_from(data, offset + 16)[0]
        l4_offset = offset + ihl
        l4_len = max(0, min(total_length - ihl, len(data) - l4_offset))
        return self._parse_tcp(data, l4_offset, l4_len, src, dst, False, ts)

    def _parse_ipv6(self, data: bytes, offset: int, ts: int) -> ParsedPacket:
        if len(data) < offset + 40:
            raise ParseError("truncated", "ipv6 header")
        if data[offset] >> 4 != 6:
            raise ParseError("bad-version", "ipv6")
        payload_length = _U16.unpack_from(data, offset + 4)[0]
        next_header = data[offset + 6]
        src = int.from_bytes(data[offset + 8:offset + 24], "big")
        dst = int.from_bytes(data[offset + 24:offset + 40], "big")
        l4_offset = offset + 40
        end = min(l4_offset + payload_length, len(data))
        # Walk skippable extension headers (each: next-header, len-in-8s).
        while next_header in SKIPPABLE_EXTENSIONS:
            if end < l4_offset + 8:
                raise ParseError("truncated", "ipv6 extension")
            ext_next = data[l4_offset]
            ext_len = (data[l4_offset + 1] + 1) * 8
            l4_offset += ext_len
            next_header = ext_next
        if next_header == 44:  # fragment header
            raise ParseError("fragment", "ipv6")
        if next_header != PROTO_TCP:
            raise ParseError("not-tcp", f"ipv6 next-header {next_header}")
        return self._parse_tcp(data, l4_offset, end - l4_offset, src, dst, True, ts)

    # -- L4 ------------------------------------------------------------

    def _parse_tcp(
        self,
        data: bytes,
        offset: int,
        l4_len: int,
        src: int,
        dst: int,
        is_ipv6: bool,
        ts: int,
    ) -> ParsedPacket:
        if l4_len < 20 or len(data) < offset + 20:
            raise ParseError("truncated", "tcp header")
        src_port = _U16.unpack_from(data, offset)[0]
        dst_port = _U16.unpack_from(data, offset + 2)[0]
        seq = _U32.unpack_from(data, offset + 4)[0]
        ack = _U32.unpack_from(data, offset + 8)[0]
        header_len = (data[offset + 12] >> 4) * 4
        if header_len < 20 or l4_len < header_len:
            raise ParseError("truncated", "tcp options")
        flags = data[offset + 13]

        tsval = tsecr = None
        if self.extract_timestamps and header_len > 20:
            tsval, tsecr = self._find_timestamp(data, offset + 20, offset + header_len)

        return ParsedPacket(
            src_ip=src,
            dst_ip=dst,
            src_port=src_port,
            dst_port=dst_port,
            flags=flags,
            seq=seq,
            ack=ack,
            payload_len=l4_len - header_len,
            timestamp_ns=ts,
            is_ipv6=is_ipv6,
            tsval=tsval,
            tsecr=tsecr,
        )

    @staticmethod
    def _find_timestamp(data: bytes, start: int, end: int):
        i = start
        while i < end:
            kind = data[i]
            if kind == OPT_END:
                break
            if kind == OPT_NOP:
                i += 1
                continue
            if i + 1 >= end:
                break
            length = data[i + 1]
            if length < 2 or i + length > end:
                break
            if kind == OPT_TIMESTAMP and length == 10:
                tsval = _U32.unpack_from(data, i + 2)[0]
                tsecr = _U32.unpack_from(data, i + 6)[0]
                return tsval, tsecr
            i += length
        return None, None
