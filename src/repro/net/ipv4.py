"""IPv4 header encoding and decoding (RFC 791)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum

PROTO_TCP = 6
PROTO_UDP = 17

_HEADER = struct.Struct("!BBHHHBBHII")
MIN_HEADER_LEN = _HEADER.size  # 20


@dataclass
class IPv4Header:
    """An IPv4 header plus payload.

    Addresses are stored as integers — the form the flow table hashes.
    ``total_length`` and ``checksum`` are computed on :meth:`pack` when
    left at zero, and preserved verbatim when parsing.
    """

    src: int = 0
    dst: int = 0
    protocol: int = PROTO_TCP
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    ecn: int = 0
    dont_fragment: bool = True
    more_fragments: bool = False
    fragment_offset: int = 0
    total_length: int = 0
    checksum: int = 0
    options: bytes = b""
    payload: bytes = field(default=b"", repr=False)

    @property
    def header_len(self) -> int:
        """Header length in bytes, including options padded to 4 bytes."""
        opt_len = (len(self.options) + 3) & ~3
        return MIN_HEADER_LEN + opt_len

    def pack(self) -> bytes:
        """Serialize to wire bytes, filling in length and checksum."""
        opt = self.options
        if len(opt) % 4:
            opt = opt + b"\x00" * (4 - len(opt) % 4)
        ihl = (MIN_HEADER_LEN + len(opt)) // 4
        if ihl > 15:
            raise ValueError("IPv4 options too long")
        version_ihl = (4 << 4) | ihl
        tos = ((self.dscp & 0x3F) << 2) | (self.ecn & 0x3)
        total_length = self.total_length or (ihl * 4 + len(self.payload))
        flags = (0x2 if self.dont_fragment else 0) | (0x1 if self.more_fragments else 0)
        flags_frag = (flags << 13) | (self.fragment_offset & 0x1FFF)
        header = _HEADER.pack(
            version_ihl,
            tos,
            total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        ) + opt
        checksum = self.checksum or internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        """Parse wire bytes; payload is sliced using total_length."""
        if len(data) < MIN_HEADER_LEN:
            raise ValueError(f"truncated IPv4 header: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = _HEADER.unpack_from(data)
        version = version_ihl >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version={version})")
        ihl = (version_ihl & 0xF) * 4
        if ihl < MIN_HEADER_LEN or len(data) < ihl:
            raise ValueError(f"bad IPv4 IHL: {ihl}")
        end = min(total_length, len(data)) if total_length >= ihl else len(data)
        flags = flags_frag >> 13
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            dont_fragment=bool(flags & 0x2),
            more_fragments=bool(flags & 0x1),
            fragment_offset=flags_frag & 0x1FFF,
            total_length=total_length,
            checksum=checksum,
            options=bytes(data[MIN_HEADER_LEN:ihl]),
            payload=bytes(data[ihl:end]),
        )

    def verify_checksum(self, raw_header: bytes) -> bool:
        """Return True if *raw_header* (header bytes only) checksums to zero."""
        return internet_checksum(raw_header) == 0

    @property
    def is_fragment(self) -> bool:
        """True for any fragment other than a complete datagram."""
        return self.more_fragments or self.fragment_offset != 0
