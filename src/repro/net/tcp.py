"""TCP header encoding and decoding (RFC 793), with options.

The handshake tracker needs flags, ports, sequence/ack numbers, and —
for the pping baseline — the TCP timestamp option (RFC 7323), so the
option list is parsed fully rather than skipped.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10
TCP_FLAG_URG = 0x20
TCP_FLAG_ECE = 0x40
TCP_FLAG_CWR = 0x80

OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACK_PERMITTED = 4
OPT_SACK = 5
OPT_TIMESTAMP = 8

_HEADER = struct.Struct("!HHIIBBHHH")
MIN_HEADER_LEN = _HEADER.size  # 20


@dataclass(frozen=True)
class TcpOption:
    """A single TCP option: *kind* plus raw *data* (empty for NOP/END)."""

    kind: int
    data: bytes = b""

    def pack(self) -> bytes:
        if self.kind in (OPT_END, OPT_NOP):
            return bytes([self.kind])
        return bytes([self.kind, len(self.data) + 2]) + self.data

    @staticmethod
    def mss(value: int) -> "TcpOption":
        """Build a Maximum Segment Size option."""
        return TcpOption(OPT_MSS, struct.pack("!H", value))

    @staticmethod
    def window_scale(shift: int) -> "TcpOption":
        """Build a Window Scale option."""
        return TcpOption(OPT_WSCALE, bytes([shift]))

    @staticmethod
    def timestamp(tsval: int, tsecr: int) -> "TcpOption":
        """Build an RFC 7323 Timestamps option."""
        return TcpOption(OPT_TIMESTAMP, struct.pack("!II", tsval, tsecr))

    def as_timestamp(self) -> Optional[Tuple[int, int]]:
        """Decode as (tsval, tsecr) if this is a well-formed timestamp option."""
        if self.kind != OPT_TIMESTAMP or len(self.data) != 8:
            return None
        tsval, tsecr = struct.unpack("!II", self.data)
        return tsval, tsecr


@dataclass
class TcpHeader:
    """A TCP header plus payload."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    checksum: int = 0
    urgent: int = 0
    options: List[TcpOption] = field(default_factory=list)
    payload: bytes = field(default=b"", repr=False)

    # -- flag helpers ------------------------------------------------------

    @property
    def is_syn(self) -> bool:
        """Pure SYN: SYN set, ACK clear (a connection-open attempt)."""
        return bool(self.flags & TCP_FLAG_SYN) and not self.flags & TCP_FLAG_ACK

    @property
    def is_synack(self) -> bool:
        """SYN+ACK (the server's handshake reply)."""
        return bool(self.flags & TCP_FLAG_SYN) and bool(self.flags & TCP_FLAG_ACK)

    @property
    def is_ack(self) -> bool:
        """ACK set and SYN clear (includes the handshake-completing ACK)."""
        return bool(self.flags & TCP_FLAG_ACK) and not self.flags & TCP_FLAG_SYN

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TCP_FLAG_FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TCP_FLAG_RST)

    def flag_names(self) -> str:
        """Human-readable flag string, e.g. ``'SYN|ACK'``."""
        names = [
            (TCP_FLAG_FIN, "FIN"),
            (TCP_FLAG_SYN, "SYN"),
            (TCP_FLAG_RST, "RST"),
            (TCP_FLAG_PSH, "PSH"),
            (TCP_FLAG_ACK, "ACK"),
            (TCP_FLAG_URG, "URG"),
            (TCP_FLAG_ECE, "ECE"),
            (TCP_FLAG_CWR, "CWR"),
        ]
        present = [name for bit, name in names if self.flags & bit]
        return "|".join(present) if present else "none"

    # -- option helpers ----------------------------------------------------

    def find_option(self, kind: int) -> Optional[TcpOption]:
        """Return the first option of *kind*, or None."""
        for option in self.options:
            if option.kind == kind:
                return option
        return None

    def timestamp_option(self) -> Optional[Tuple[int, int]]:
        """Return (tsval, tsecr) if a timestamp option is present."""
        option = self.find_option(OPT_TIMESTAMP)
        return option.as_timestamp() if option else None

    # -- wire format -------------------------------------------------------

    def _packed_options(self) -> bytes:
        raw = b"".join(option.pack() for option in self.options)
        if len(raw) % 4:
            raw += b"\x00" * (4 - len(raw) % 4)
        if len(raw) > 40:
            raise ValueError("TCP options exceed 40 bytes")
        return raw

    @property
    def header_len(self) -> int:
        """Header length in bytes including padded options."""
        return MIN_HEADER_LEN + len(self._packed_options())

    def pack(self) -> bytes:
        """Serialize to wire bytes (checksum field as stored, often 0)."""
        opts = self._packed_options()
        data_offset = (MIN_HEADER_LEN + len(opts)) // 4
        off_flags_hi = (data_offset << 4)
        header = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            off_flags_hi,
            self.flags & 0xFF,
            self.window,
            self.checksum,
            self.urgent,
        )
        return header + opts + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        """Parse wire bytes, including the option list."""
        if len(data) < MIN_HEADER_LEN:
            raise ValueError(f"truncated TCP header: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            off_flags_hi,
            flags,
            window,
            checksum,
            urgent,
        ) = _HEADER.unpack_from(data)
        header_len = (off_flags_hi >> 4) * 4
        if header_len < MIN_HEADER_LEN or len(data) < header_len:
            raise ValueError(f"bad TCP data offset: {header_len}")
        options = cls._parse_options(data[MIN_HEADER_LEN:header_len])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
            options=options,
            payload=bytes(data[header_len:]),
        )

    @staticmethod
    def _parse_options(raw: bytes) -> List[TcpOption]:
        options: List[TcpOption] = []
        i = 0
        while i < len(raw):
            kind = raw[i]
            if kind == OPT_END:
                break
            if kind == OPT_NOP:
                options.append(TcpOption(OPT_NOP))
                i += 1
                continue
            if i + 1 >= len(raw):
                break  # truncated option; stop rather than raise on padding
            length = raw[i + 1]
            if length < 2 or i + length > len(raw):
                break
            options.append(TcpOption(kind, bytes(raw[i + 2:i + length])))
            i += length
        return options
