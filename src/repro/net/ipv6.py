"""IPv6 header encoding and decoding (RFC 8200), fixed header only.

Extension headers other than the ones the pipeline can skip are
reported via :attr:`IPv6Header.next_header`; the pre-parser in
:mod:`repro.net.parser` walks hop-by-hop/routing/destination options
to find TCP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

_HEADER = struct.Struct("!IHBB")
HEADER_LEN = 40

# Extension header "next header" values the parser knows how to skip.
EXT_HOP_BY_HOP = 0
EXT_ROUTING = 43
EXT_FRAGMENT = 44
EXT_DEST_OPTS = 60
SKIPPABLE_EXTENSIONS = frozenset({EXT_HOP_BY_HOP, EXT_ROUTING, EXT_DEST_OPTS})


@dataclass
class IPv6Header:
    """An IPv6 fixed header plus payload; addresses are 128-bit ints."""

    src: int = 0
    dst: int = 0
    next_header: int = 6
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    payload_length: int = 0
    payload: bytes = field(default=b"", repr=False)

    def pack(self) -> bytes:
        """Serialize to wire bytes, filling in payload_length."""
        if not 0 <= self.flow_label < (1 << 20):
            raise ValueError(f"flow label out of range: {self.flow_label}")
        first_word = (6 << 28) | ((self.traffic_class & 0xFF) << 20) | self.flow_label
        payload_length = self.payload_length or len(self.payload)
        header = _HEADER.pack(first_word, payload_length, self.next_header, self.hop_limit)
        return (
            header
            + self.src.to_bytes(16, "big")
            + self.dst.to_bytes(16, "big")
            + self.payload
        )

    @classmethod
    def unpack(cls, data: bytes) -> "IPv6Header":
        """Parse wire bytes; payload is sliced using payload_length."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"truncated IPv6 header: {len(data)} bytes")
        first_word, payload_length, next_header, hop_limit = _HEADER.unpack_from(data)
        version = first_word >> 28
        if version != 6:
            raise ValueError(f"not IPv6 (version={version})")
        src = int.from_bytes(data[8:24], "big")
        dst = int.from_bytes(data[24:40], "big")
        end = min(HEADER_LEN + payload_length, len(data))
        return cls(
            src=src,
            dst=dst,
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
            payload_length=payload_length,
            payload=bytes(data[HEADER_LEN:end]),
        )
