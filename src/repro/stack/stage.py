"""The Stage protocol and the ordered stage graph.

A :class:`Stage` wraps one tier of the running stack behind a uniform
lifecycle so the composition root can treat the whole pipeline as data:

* ``process(ctx)`` — advance the stage for one feed batch;
* ``quiesce()`` / ``flush(ctx)`` — the two halves of graceful drain;
* ``drain(ctx)`` — run this stage's part of the drain protocol and
  return the stage labels it performed (what ``DrainReport.stages``
  is built from);
* ``state_dict()`` / ``load_state(state)`` — the stage's checkpoint
  fragment (a dict merged into the envelope, keyed so fragments never
  collide);
* ``bind_telemetry(registry, tracer)`` — scrape-time collectors;
* ``fault_points()`` — the crash points this stage owns.

:class:`StageGraph` holds stages in topology order and derives every
cross-cutting traversal — batch processing, drain order, checkpoint
payload, fault surface — from that one ordering.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.stack.topology import StageSpec, stage_names


class StageContext:
    """Per-traversal context handed to every stage hook.

    ``now_ns`` is read lazily so a stage that advances virtual time is
    visible to the stages after it in the same traversal (the
    checkpoint stage must stamp the post-drain clock, not the
    pre-drain one).
    """

    def __init__(
        self,
        batch: Optional[Sequence] = None,
        now_fn: Optional[Callable[[], int]] = None,
        reached: Optional[Callable[[str], None]] = None,
    ):
        self.batch = batch if batch is not None else []
        self._now_fn = now_fn
        self._reached = reached

    @property
    def now_ns(self) -> int:
        return self._now_fn() if self._now_fn is not None else 0

    def reached(self, point: str) -> None:
        """Cross one instrumented boundary (arms SimulatedCrash)."""
        if self._reached is not None:
            self._reached(point)


class Stage:
    """Base stage: every lifecycle hook defaults to a no-op."""

    def __init__(self, spec: StageSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    def start(self) -> None:
        """Bring the stage up (stages here are live at construction)."""

    def process(self, ctx: StageContext) -> None:
        """Advance this stage for one feed batch."""

    def quiesce(self) -> None:
        """Stop accepting new input (step one of graceful drain)."""

    def flush(self, ctx: StageContext) -> None:
        """Push everything buffered in this stage downstream."""

    def drain(self, ctx: StageContext) -> List[str]:
        """Run this stage's part of the drain protocol.

        Returns the ordered labels of the drain steps performed, which
        the composition root concatenates into the report's stage
        list. Stages with nothing to drain return ``[]``.
        """
        return []

    def state_dict(self) -> Dict:
        """This stage's checkpoint fragment (empty for stateless)."""
        return {}

    def load_state(self, state: Dict) -> None:
        """Restore from a full checkpoint envelope; each stage picks
        out only the keys it contributed."""

    def bind_telemetry(self, registry, tracer) -> None:
        """Register scrape-time collectors for this stage."""

    def fault_points(self) -> Dict[str, str]:
        """Crash points this stage owns, from its topology spec."""
        return dict(self.spec.crash_points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class StageGraph:
    """The assembled stages, held in topology order.

    The graph refuses stages that are out of topology order or
    duplicated, so a builder bug cannot silently reorder the drain
    protocol or the checkpoint payload.
    """

    def __init__(self, stages: Sequence[Stage]):
        order = {name: index for index, name in enumerate(stage_names())}
        last = -1
        for stage in stages:
            index = order.get(stage.name)
            if index is None:
                raise ValueError(f"stage {stage.name!r} is not in the topology")
            if index <= last:
                raise ValueError(
                    f"stage {stage.name!r} is out of topology order"
                )
            last = index
        self.stages: List[Stage] = list(stages)
        self._profiler = None

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def get(self, name: str) -> Optional[Stage]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    # -- derived traversals --------------------------------------------------

    def bind_profiler(self, profiler) -> None:
        """Attach a :class:`~repro.obs.prof.StageProfiler`.

        The graph itself times every stage's ``process`` slice, so the
        profile surface is *derived from the topology*: any stage an
        assembly includes is profiled, with no per-stage hook code.
        """
        self._profiler = profiler

    def process(self, ctx: StageContext) -> None:
        """One feed batch end to end, in dataflow order."""
        profiler = self._profiler
        if profiler is None:
            for stage in self.stages:
                stage.process(ctx)
            return
        items = len(ctx.batch)
        now_fn = ctx._now_fn
        sampled = profiler.batch_begin()
        try:
            for stage in self.stages:
                with profiler.stage(stage.name, items=items, now_fn=now_fn):
                    stage.process(ctx)
        finally:
            profiler.batch_end(sampled)

    def drain(self, ctx: StageContext) -> List[str]:
        """The graceful drain protocol: traverse in dependency order,
        collecting each stage's performed drain labels."""
        labels: List[str] = []
        for stage in self.stages:
            labels.extend(stage.drain(ctx))
        return labels

    def capture_state(self) -> Dict:
        """Checkpoint payload: every stage's fragment, merged in order."""
        state: Dict = {}
        for stage in self.stages:
            fragment = stage.state_dict()
            overlap = set(fragment) & set(state)
            if overlap:
                raise ValueError(
                    f"stage {stage.name!r} checkpoint keys collide: {overlap}"
                )
            state.update(fragment)
        return state

    def load_state(self, state: Dict) -> None:
        for stage in self.stages:
            stage.load_state(state)

    def bind_telemetry(self, registry, tracer) -> None:
        for stage in self.stages:
            stage.bind_telemetry(registry, tracer)

    def fault_points(self) -> Dict[str, str]:
        """The crash points of every assembled stage, in order."""
        points: Dict[str, str] = {}
        for stage in self.stages:
            points.update(stage.fault_points())
        return points
