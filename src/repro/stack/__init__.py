"""repro.stack — the stage-graph runtime.

The whole Ruru reproduction is one dataflow (the paper's Fig. 2):
DPDK NIC → per-queue latency workers → message bus → enrichment
analytics → TSDB / frontend, with anomaly, top-k and telemetry riding
the enriched stream and the durability tail (WAL + checkpoints)
closing the graph. This package declares that shape **once**
(:mod:`repro.stack.topology`) and derives everything cross-cutting
from it:

* per-batch processing order — :meth:`RuruStack.process_batch`;
* the graceful-drain protocol — :meth:`RuruStack.drain`;
* the checkpoint payload — :meth:`RuruStack.capture_state`;
* the registered crash-point table —
  :func:`repro.stack.topology.crash_points`;
* metrics-collector registration — :mod:`repro.stack.metrics`.

Every assembly in the repo (all six CLI commands, the chaos harness,
the durable runtime, the co-scheduled runtime) is a preset of
:class:`StackBuilder`; nothing outside this package wires
pipeline-to-analytics plumbing by hand.
"""

from repro.stack.builder import (
    PRESETS,
    STATE_FORMAT,
    RuruStack,
    StackBuilder,
    build_chaos_stack,
    build_durable_stack,
    build_enrichment_dbs,
    build_live_stack,
    build_measure_stack,
    build_shard_analytics,
    build_sharded_runtime,
)
from repro.stack.stage import Stage, StageContext, StageGraph
from repro.stack.topology import (
    PROTOCOL_POINTS,
    TOPOLOGY,
    StageSpec,
    crash_points,
    get_spec,
    stage_names,
)

__all__ = [
    "PRESETS",
    "PROTOCOL_POINTS",
    "STATE_FORMAT",
    "RuruStack",
    "Stage",
    "StageContext",
    "StageGraph",
    "StageSpec",
    "StackBuilder",
    "TOPOLOGY",
    "build_chaos_stack",
    "build_durable_stack",
    "build_enrichment_dbs",
    "build_live_stack",
    "build_measure_stack",
    "build_shard_analytics",
    "build_sharded_runtime",
    "crash_points",
    "get_spec",
    "stage_names",
]
