"""The composition root: one builder, four presets, zero duplicated
wiring.

Every assembly of the Ruru dataflow — the CLI commands, the chaos
harness, the durable runtime and the co-scheduled
:class:`repro.runtime.RuruRuntime` — is a configuration of
:class:`StackBuilder`. The builder constructs components in one fixed,
determinism-preserving order, wraps them in the stage wrappers of
:mod:`repro.stack.stages`, and returns a :class:`RuruStack` whose
cross-cutting behaviour (batch processing, graceful-drain order,
checkpoint payload, crash-point surface, durability metrics) is
derived from the :class:`~repro.stack.stage.StageGraph` traversals.

Presets:

========  ==============================================================
measure   fast path only (``ruru measure``): NIC + workers, records
          collected in ``pipeline.measurements``.
live      full dataflow without fault machinery (``ruru demo`` /
          ``detect`` / ``export`` / ``metrics`` / ``analyze`` and
          :class:`repro.runtime.RuruRuntime`).
chaos     live + fault injector, resilience layer and supervisor
          (:class:`repro.faults.chaos.ChaosHarness`).
durable   chaos + WAL-backed TSDB, checkpoints, anomaly/top-k riders
          (:class:`repro.durability.runtime.DurableRuntime`).
========  ==============================================================
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro.analytics.service import AnalyticsService, make_pipeline_sink
from repro.analytics.topk import SpaceSaving
from repro.anomaly.manager import AnomalyManager
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.faults.adapters import (
    FaultyPushSocket,
    FlakyAsnDatabase,
    FlakyGeoDatabase,
    FlakyTimeSeriesDatabase,
)
from repro.faults.injector import FaultInjector
from repro.faults.profiles import FaultProfile, get_profile
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.obs import Telemetry
from repro.obs.slo import DEFAULT_SLOS, evaluate_slos
from repro.overload import GatedPushSocket, OverloadController, WatermarkBand
from repro.overload import ring_reader, socket_reader
from repro.overload.controller import NS_PER_MS
from repro.resilience import ResilienceLayer, Supervisor
from repro.stack.stage import StageContext, StageGraph
from repro.stack.stages import (
    AnalyticsStage,
    AnomalyStage,
    CheckpointStage,
    FrontendStage,
    MqStage,
    NicStage,
    OverloadStage,
    TelemetryStage,
    TopkStage,
    TsdbStage,
    WorkerStage,
)
from repro.traffic.scenarios import AucklandLaScenario
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.retention import RetentionPolicy

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.durability.checkpoint import CheckpointInfo

NS_PER_S = 1_000_000_000

#: Checkpoint envelope format version (the stack's ``capture_state``).
STATE_FORMAT = 1


def build_enrichment_dbs(plan=None, country_accuracy: float = 0.98):
    """Synthetic geo/ASN databases over *plan* (the one sanctioned
    :class:`GeoDbBuilder` call site outside this builder's ``build``)."""
    return GeoDbBuilder(plan=plan, country_accuracy=country_accuracy).build()


class RuruStack:
    """One assembled Ruru dataflow plus its stage graph.

    Component handles (``pipeline``, ``service``, ``tsdb``, …) stay
    public — the stack is a composition root, not an opaque box — but
    every cross-cutting traversal goes through :attr:`graph`.
    """

    def __init__(self, graph: StageGraph, components: dict):
        self.graph = graph
        for name, value in components.items():
            setattr(self, name, value)
        self.recovered_from: Optional[CheckpointInfo] = None
        self.recovery_count = 0
        self.last_lost_at_crash = 0
        # Objectives checked at drain time (see drain()); assemblies
        # can replace the default set before draining.
        self.slos = DEFAULT_SLOS
        self.slo_results: List = []

    # -- clocks and boundaries ----------------------------------------------

    @property
    def now_ns(self) -> int:
        """The stack's virtual now (whichever tier has seen furthest)."""
        now = self.pipeline.clock.now_ns
        if self.service is not None:
            now = max(now, self.service.now_ns)
        return now

    def _reached(self, point: str) -> None:
        if self.crash_schedule is not None:
            self.crash_schedule.reached(point)

    def _context(self, batch=None) -> StageContext:
        return StageContext(
            batch=batch, now_fn=lambda: self.now_ns, reached=self._reached
        )

    # -- feeding ------------------------------------------------------------

    def packet_stream(self):
        """The scenario's packets, through the fault injector if any."""
        packets = self.generator.packets()
        if self.injector is not None:
            return self.injector.packet_stream(packets)
        return packets

    def process_batch(self, batch) -> None:
        """Run one feed batch end to end along the stage graph.

        Every registered stage-boundary crash point is instrumented by
        the stage wrappers; after the batch the rings and queues are
        empty, which is what makes a trailing checkpoint a consistent
        cut.
        """
        self.graph.process(self._context(batch=batch))

    # -- graceful drain ------------------------------------------------------

    def drain(self) -> Tuple[List[str], Optional[CheckpointInfo]]:
        """The graceful drain protocol, derived from the graph order.

        Returns the performed stage labels (in traversal order) and
        the final clean checkpoint, if a checkpoint stage is present.
        With telemetry attached, the stack's SLOs are evaluated against
        the registry once the drain completes (every bridged counter is
        final by then) and kept on :attr:`slo_results`.
        """
        labels = self.graph.drain(self._context())
        checkpoint_stage = self.graph.get("checkpoint")
        final = checkpoint_stage.last_clean if checkpoint_stage else None
        if self.telemetry is not None:
            self.slo_results = evaluate_slos(self.telemetry.registry, self.slos)
        return labels, final

    # -- checkpoint capture/restore -----------------------------------------

    def capture_state(self) -> dict:
        """One JSON-safe snapshot: stack meta plus every stage fragment."""
        state = {
            "format": STATE_FORMAT,
            "meta": {
                "profile": self.profile.name if self.profile else "clean",
                "seed": self.seed,
                "queues": self.queues,
            },
        }
        state.update(self.graph.capture_state())
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`capture_state` snapshot into this stack."""
        if int(state.get("format", 0)) != STATE_FORMAT:
            raise ValueError(
                f"unsupported state format {state.get('format')!r}"
            )
        meta = state["meta"]
        if int(meta["queues"]) != self.queues:
            raise ValueError(
                f"checkpoint built with {meta['queues']} queues, "
                f"runtime has {self.queues}"
            )
        self.graph.load_state(state)

    def _after_checkpoint(self, info: CheckpointInfo) -> None:
        # The checkpoint's TSDB dump covers every applied batch, so the
        # log restarts empty; batch ids stay monotonic across the
        # truncation, which is what keeps replay dedup sound if we die
        # before this line runs.
        self.wal.truncate()

    # -- introspection -------------------------------------------------------

    def fault_points(self) -> dict:
        """Crash points owned by the assembled stages, in graph order."""
        return self.graph.fault_points()

    @property
    def frontend_received(self) -> int:
        stage = self.graph.get("frontend")
        return stage.received if stage is not None else 0

    @property
    def frontend_degraded(self) -> int:
        stage = self.graph.get("frontend")
        return stage.degraded if stage is not None else 0


class StackBuilder:
    """Fluent configuration of one :class:`RuruStack`.

    Construction order inside :meth:`build` mirrors the historical
    harness wiring exactly — injector, scenario, enrichment, TSDB
    chain, resilience, service, riders, frontend, sink, pipeline,
    checkpointer — and every random source is independently seeded, so
    two builds with the same configuration replay byte-identically.
    """

    def __init__(self):
        self._config: Optional[PipelineConfig] = None
        self._queues = 2
        self._telemetry: Optional[Telemetry] = None
        self._generator = None
        self._scenario = None  # (duration_s, rate, seed)
        self._geo_asn = None
        self._analytics = False
        self._analytics_workers = 4
        self._frontend_hwm: Optional[int] = None
        self._anomaly: Optional[str] = None  # "inline" | "stream"
        self._topk_capacity: Optional[int] = None
        self._profile: Optional[FaultProfile] = None
        self._seed = 42
        self._durability: Optional[dict] = None
        self._overload: Optional[dict] = None

    # -- configuration -------------------------------------------------------

    def pipeline_config(self, config: PipelineConfig) -> "StackBuilder":
        self._config = config
        self._queues = config.num_queues
        return self

    def queues(self, num_queues: int) -> "StackBuilder":
        self._queues = num_queues
        return self

    def telemetry(self, telemetry: Optional[Telemetry]) -> "StackBuilder":
        self._telemetry = telemetry
        return self

    def generator(self, generator) -> "StackBuilder":
        """Use a prebuilt traffic generator (CLI commands pass theirs,
        possibly carrying anomaly injectors)."""
        self._generator = generator
        return self

    def scenario(
        self, duration_s: float, rate: float, seed: int
    ) -> "StackBuilder":
        """Build the standard Auckland→LA scenario at ``build`` time."""
        self._scenario = (duration_s, rate, seed)
        self._seed = seed
        return self

    def enrichment(self, geo, asn) -> "StackBuilder":
        """Use explicit enrichment databases (default: synthesized from
        the generator's plan)."""
        self._geo_asn = (geo, asn)
        return self

    def analytics(self, num_workers: int = 4) -> "StackBuilder":
        self._analytics = True
        self._analytics_workers = num_workers
        return self

    def frontend(self, hwm: int = 10_000) -> "StackBuilder":
        self._frontend_hwm = hwm
        return self

    def anomaly(self, mode: str = "stream") -> "StackBuilder":
        """Attach the anomaly detectors.

        ``inline`` observes measurements synchronously via a service
        filter (the ``ruru detect`` shape); ``stream`` observes the
        enriched frontend feed (the durable-runtime shape). Both also
        observe raw packets via a pipeline observer.
        """
        if mode not in ("inline", "stream"):
            raise ValueError(f"unknown anomaly mode {mode!r}")
        self._anomaly = mode
        return self

    def topk(self, capacity: int = 100) -> "StackBuilder":
        self._topk_capacity = capacity
        return self

    def faults(
        self, profile: Union[str, FaultProfile], seed: Optional[int] = None
    ) -> "StackBuilder":
        """Run under a named fault profile with the resilience layer,
        supervisor and fault adapters active."""
        self._profile = (
            get_profile(profile) if isinstance(profile, str) else profile
        )
        if seed is not None:
            self._seed = seed
        return self

    def durable(
        self,
        state_dir: str,
        checkpoint_interval_ns: int = NS_PER_S,
        keep_checkpoints: int = 2,
        retention_ns: Optional[int] = None,
        crash_schedule=None,
        fsync_wal: bool = False,
    ) -> "StackBuilder":
        """Add the durability tail: WAL-backed TSDB + checkpointer."""
        self._durability = {
            "state_dir": str(state_dir),
            "checkpoint_interval_ns": checkpoint_interval_ns,
            "keep_checkpoints": keep_checkpoints,
            "retention_ns": retention_ns,
            "crash_schedule": crash_schedule,
            "fsync_wal": fsync_wal,
        }
        return self

    def overload(
        self,
        low: float = 0.5,
        high: float = 0.85,
        up_dwell_ms: float = 50.0,
        down_dwell_ms: float = 250.0,
        sampled_modulus: int = 8,
        snap_len: int = 256,
    ) -> "StackBuilder":
        """Enable closed-loop overload control (backpressure sensing +
        the priority shed ladder) across the whole stack."""
        self._overload = {
            "low": low,
            "high": high,
            "up_dwell_ms": up_dwell_ms,
            "down_dwell_ms": down_dwell_ms,
            "sampled_modulus": sampled_modulus,
            "snap_len": snap_len,
        }
        return self

    # -- assembly ------------------------------------------------------------

    def build(self) -> RuruStack:
        durability = self._durability
        if durability is not None and not self._analytics:
            raise ValueError("the durable preset requires analytics")

        profile = self._profile
        injector = (
            FaultInjector(profile, seed=self._seed)
            if profile is not None
            else None
        )
        controller = None
        if self._overload is not None:
            knobs = self._overload
            controller = OverloadController(
                band=WatermarkBand(low=knobs["low"], high=knobs["high"]),
                up_dwell_ns=int(knobs["up_dwell_ms"] * NS_PER_MS),
                down_dwell_ns=int(knobs["down_dwell_ms"] * NS_PER_MS),
                sampled_modulus=knobs["sampled_modulus"],
                snap_len=knobs["snap_len"],
            )
        telemetry = self._telemetry
        generator = self._generator
        if generator is None and self._scenario is not None:
            duration_s, rate, seed = self._scenario
            generator = AucklandLaScenario(
                duration_ns=int(duration_s * NS_PER_S),
                mean_flows_per_s=rate,
                seed=seed,
                diurnal=False,
            ).build()

        service = None
        resilience = None
        supervisor = None
        tsdb = None
        wal = None
        anomaly = None
        topk = None
        frontend_sub = None
        sink = None
        observers = []
        crash_schedule = durability["crash_schedule"] if durability else None
        retention_ns = durability["retention_ns"] if durability else None
        state_dir = durability["state_dir"] if durability else None

        if self._analytics:
            if self._geo_asn is not None:
                geo, asn = self._geo_asn
            else:
                plan = generator.plan if generator is not None else None
                geo, asn = GeoDbBuilder(plan=plan).build()
            flaky_store = None
            if profile is not None:
                if profile.geo_failure_rate > 0:
                    geo = FlakyGeoDatabase(geo, injector)
                if profile.asn_failure_rate > 0:
                    asn = FlakyAsnDatabase(asn, injector)
                store = TimeSeriesDatabase()
                if retention_ns is not None:
                    store.add_retention_policy(
                        RetentionPolicy(duration_ns=retention_ns)
                    )
                flaky_store = FlakyTimeSeriesDatabase(store, injector)
                tsdb = flaky_store
                if durability is not None:
                    # Lazy: repro.durability imports this module back.
                    from repro.durability.wal import (
                        DurableTsdb,
                        WriteAheadLog,
                    )

                    os.makedirs(state_dir, exist_ok=True)
                    wal = WriteAheadLog(
                        os.path.join(state_dir, "tsdb.wal"),
                        fsync=durability["fsync_wal"],
                    )
                    tsdb = DurableTsdb(
                        flaky_store, wal, crash_schedule=crash_schedule
                    )
                resilience = ResilienceLayer(seed=self._seed)
                supervisor = Supervisor()
            context = Context()
            service = AnalyticsService(
                context,
                geo,
                asn,
                tsdb=tsdb,
                num_workers=self._analytics_workers,
                telemetry=telemetry,
                resilience=resilience,
            )
            if flaky_store is not None:
                # Brown-outs are keyed on write time, not data time:
                # retried writes land once the window clears.
                flaky_store.now_fn = lambda: service.now_ns
            if tsdb is None:
                tsdb = service.tsdb
            if telemetry is not None and supervisor is not None:
                supervisor.bind_registry(telemetry.registry)
            if telemetry is not None and injector is not None:
                injector.bind_registry(telemetry.registry)

            if self._anomaly is not None:
                anomaly = AnomalyManager()
                observers.append(anomaly.observe_packet)
                if self._anomaly == "inline":
                    manager = anomaly
                    service.filters.append(
                        lambda m: (manager.observe_measurement(m), True)[1]
                    )
            if self._topk_capacity is not None:
                topk = SpaceSaving(capacity=self._topk_capacity)
            if self._frontend_hwm is not None:
                frontend_sub = service.subscribe_frontend(
                    hwm=self._frontend_hwm
                )

            if injector is not None or controller is not None:
                push = service.connect_pipeline()
                socket = push
                if controller is not None:
                    # Gate innermost: injected drops never reach the
                    # gate's offered count and injected duplicates are
                    # offered twice, so the extended ledger
                    # (gate offered == ingested + shed@mq) stays exact
                    # under every fault profile.
                    socket = GatedPushSocket(socket, controller)
                if injector is not None:
                    socket = FaultyPushSocket(socket, injector)
                sink = make_pipeline_sink(
                    socket,
                    tracer=telemetry.tracer if telemetry is not None else None,
                )
            else:
                sink = service.make_sink()

        pipeline = RuruPipeline(
            config=self._config or PipelineConfig(num_queues=self._queues),
            sink=sink,
            observers=observers,
            telemetry=telemetry,
            supervisor=supervisor,
            poll_wrapper=injector.crashy_poll if injector is not None else None,
            admission=controller,
        )
        if controller is not None:
            # Sensors attach once the queues exist; every watched stage
            # reports peak-within-batch occupancy to the one controller.
            controller.watch_stage(
                "nic", [ring_reader(q.ring) for q in pipeline.nic.queues]
            )
            if service is not None:
                controller.watch_stage("mq", [socket_reader(service.pull)])
            if frontend_sub is not None:
                controller.watch_stage(
                    "frontend", [socket_reader(frontend_sub)]
                )

        # -- the graph, in topology order ------------------------------------
        stages = []
        if controller is not None:
            stages.append(OverloadStage(controller))
        stages += [NicStage(pipeline), WorkerStage(pipeline)]
        if service is not None:
            stages.append(MqStage(service))
            stages.append(AnalyticsStage(service))
            if anomaly is not None and self._anomaly == "stream":
                stages.append(AnomalyStage(anomaly))
            if topk is not None:
                stages.append(TopkStage(topk))
            if frontend_sub is not None:
                frontend_observers = []
                if anomaly is not None and self._anomaly == "stream":
                    frontend_observers.append(anomaly.observe_measurement)
                if topk is not None:
                    frontend_observers.append(
                        lambda m: topk.add(m.location_pair)
                    )
                stages.append(
                    FrontendStage(frontend_sub, observers=frontend_observers)
                )
        if telemetry is not None:
            stages.append(TelemetryStage(telemetry))
        checkpoint_stage = None
        if durability is not None:
            stages.append(TsdbStage(tsdb, wal))
            checkpoint_stage = CheckpointStage(tsdb, retention_ns)
            stages.append(checkpoint_stage)

        stack = RuruStack(
            StageGraph(stages),
            components={
                "profile": profile,
                "seed": self._seed,
                "queues": (
                    self._config.num_queues if self._config else self._queues
                ),
                "telemetry": telemetry,
                "generator": generator,
                "injector": injector,
                "overload": controller,
                "resilience": resilience,
                "supervisor": supervisor,
                "service": service,
                "pipeline": pipeline,
                "tsdb": tsdb,
                "wal": wal,
                "anomaly": anomaly,
                "topk": topk,
                "frontend": frontend_sub,
                "crash_schedule": crash_schedule,
                "state_dir": state_dir,
                "retention_ns": retention_ns,
                "checkpointer": None,
            },
        )
        if durability is not None:
            from repro.durability.checkpoint import Checkpointer

            stack.checkpointer = Checkpointer(
                state_dir=state_dir,
                capture=stack.capture_state,
                interval_ns=durability["checkpoint_interval_ns"],
                keep=durability["keep_checkpoints"],
                crash_schedule=crash_schedule,
                on_written=stack._after_checkpoint,
                fsync=durability["fsync_wal"],
            )
            checkpoint_stage.checkpointer = stack.checkpointer
            checkpoint_stage.stack = stack
        if telemetry is not None:
            stack.graph.bind_telemetry(telemetry.registry, telemetry.tracer)
            if telemetry.profiler is not None:
                # Profiling is a graph concern: the graph times every
                # assembled stage itself, so the profile surface stays
                # derived from the topology.
                stack.graph.bind_profiler(telemetry.profiler)
        return stack


# -- presets -----------------------------------------------------------------


def build_measure_stack(
    queues: int = 4,
    telemetry: Optional[Telemetry] = None,
    config: Optional[PipelineConfig] = None,
) -> RuruStack:
    """``measure``: the fast path only, records kept in memory."""
    builder = StackBuilder().telemetry(telemetry)
    if config is not None:
        builder.pipeline_config(config)
    else:
        builder.queues(queues)
    return builder.build()


def build_live_stack(
    generator=None,
    queues: int = 4,
    telemetry: Optional[Telemetry] = None,
    frontend_hwm: Optional[int] = None,
    anomaly: bool = False,
    analytics_workers: int = 4,
    geo_asn=None,
    config: Optional[PipelineConfig] = None,
    overload: bool = False,
) -> RuruStack:
    """``live``: full dataflow, no fault machinery."""
    builder = (
        StackBuilder()
        .telemetry(telemetry)
        .analytics(num_workers=analytics_workers)
    )
    if overload:
        builder.overload()
    if generator is not None:
        builder.generator(generator)
    if geo_asn is not None:
        builder.enrichment(*geo_asn)
    if config is not None:
        builder.pipeline_config(config)
    else:
        builder.queues(queues)
    if frontend_hwm is not None:
        builder.frontend(hwm=frontend_hwm)
    if anomaly:
        builder.anomaly("inline")
    return builder.build()


def build_chaos_stack(
    profile: Union[str, FaultProfile],
    seed: int = 42,
    duration_s: float = 8.0,
    rate: float = 40.0,
    queues: int = 2,
    telemetry: Optional[Telemetry] = None,
    overload: bool = False,
) -> RuruStack:
    """``chaos``: live + injector, resilience layer and supervisor."""
    builder = (
        StackBuilder()
        .scenario(duration_s=duration_s, rate=rate, seed=seed)
        .queues(queues)
        .telemetry(telemetry or Telemetry())
        .analytics()
        .faults(profile, seed=seed)
        .frontend(hwm=1 << 20)
    )
    if overload:
        builder.overload()
    return builder.build()


def build_durable_stack(
    state_dir: str,
    profile: Union[str, FaultProfile] = "clean",
    seed: int = 42,
    duration_s: float = 8.0,
    rate: float = 40.0,
    queues: int = 2,
    checkpoint_interval_ns: int = NS_PER_S,
    keep_checkpoints: int = 2,
    retention_ns: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    crash_schedule=None,
    fsync_wal: bool = False,
    overload: bool = False,
) -> RuruStack:
    """``durable``: chaos + WAL, checkpoints, anomaly/top-k riders."""
    builder = (
        StackBuilder()
        .scenario(duration_s=duration_s, rate=rate, seed=seed)
        .queues(queues)
        .telemetry(telemetry or Telemetry())
        .analytics()
        .faults(profile, seed=seed)
        .anomaly("stream")
        .topk(capacity=100)
        .frontend(hwm=1 << 20)
        .durable(
            state_dir,
            checkpoint_interval_ns=checkpoint_interval_ns,
            keep_checkpoints=keep_checkpoints,
            retention_ns=retention_ns,
            crash_schedule=crash_schedule,
            fsync_wal=fsync_wal,
        )
    )
    if overload:
        builder.overload()
    return builder.build()


def build_shard_analytics(
    num_workers: int = 4,
    country_accuracy: float = 0.98,
    plan=None,
):
    """A zero-arg ``make_analytics`` factory for the sharded runtime.

    The factory closes over nothing process-bound: for the
    ``analytics="process"`` placement it runs *post-fork* inside the
    analytics shard, so sockets, enrichment databases and worker RNGs
    are built in (and owned by) that process. Defined here because the
    composition root is the only sanctioned constructor site for
    :class:`~repro.analytics.service.AnalyticsService`.
    """

    def make_analytics() -> AnalyticsService:
        geo, asn = build_enrichment_dbs(
            plan=plan, country_accuracy=country_accuracy
        )
        context = Context()
        return AnalyticsService(
            context, geo, asn, num_workers=num_workers
        )

    return make_analytics


def build_sharded_runtime(
    shards: int = 2,
    config: Optional[PipelineConfig] = None,
    analytics: str = "none",
    state_dir: Optional[str] = None,
    policy: str = "protect-handshakes",
    heartbeat_deadline_ms: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    analytics_workers: int = 4,
    **kwargs,
):
    """``shard``: process placement derived from the stage topology.

    Each RX queue's worker becomes its own OS process behind the MQ
    frame codec over a real transport; the parent keeps the RSS router
    and the shard control plane (heartbeats, restarts, the global
    conservation ledger). See :mod:`repro.shard`.
    """
    # Lazy: repro.shard composes pieces from several packages; importing
    # it at module scope would cycle back through repro.stack.
    from repro.shard.runtime import ShardedRuntime

    make_analytics = (
        build_shard_analytics(num_workers=analytics_workers)
        if analytics in ("parent", "process")
        else None
    )
    return ShardedRuntime(
        shards,
        config=config,
        analytics=analytics,
        make_analytics=make_analytics,
        state_dir=state_dir,
        policy=policy,
        heartbeat_deadline_ms=heartbeat_deadline_ms,
        registry=telemetry.registry if telemetry is not None else None,
        **kwargs,
    )


#: Preset name → builder function (the CLI command table maps here).
PRESETS = {
    "measure": build_measure_stack,
    "live": build_live_stack,
    "chaos": build_chaos_stack,
    "durable": build_durable_stack,
    "shard": build_sharded_runtime,
}
