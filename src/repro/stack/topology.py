"""The canonical Ruru stage topology — the one place the dataflow
shape is declared.

Everything cross-cutting is *derived* from this table rather than
hand-listed per assembly:

* the graceful-drain order (:meth:`repro.stack.RuruStack.drain`
  traverses stages in declaration order);
* the checkpoint payload (each stage contributes its ``state_dict``
  fragment in declaration order);
* the registered crash points
  (:data:`repro.faults.crashpoints.CRASH_POINTS` is built from
  :func:`crash_points` below);
* the per-batch processing order (``process_batch`` traverses the
  same list).

This module is deliberately dependency-free — it imports nothing from
the rest of :mod:`repro` — so the fault registry can derive its crash
point table without importing any component code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class StageSpec:
    """One node of the stage graph.

    Attributes:
        name: unique stage name (also the progress/drain label prefix).
        description: what the stage is, for docs and reports.
        upstream: names of the stages this one consumes from.
        crash_points: ``(point, description)`` pairs for the process
            boundaries this stage owns — the kill -9 surface of the
            durable runtime.
    """

    name: str
    description: str
    upstream: Tuple[str, ...] = ()
    crash_points: Tuple[Tuple[str, str], ...] = ()


#: The pipeline graph of the paper's Fig. 2, in dataflow order. The
#: declaration order *is* the processing order and the drain order;
#: anomaly/topk/frontend/telemetry all tap the enriched stream, and
#: tsdb/checkpoint close the durable tail.
TOPOLOGY: Tuple[StageSpec, ...] = (
    StageSpec(
        name="overload",
        # A control stage, not a dataflow stage: it ticks the
        # backpressure loop (watermark sensors -> degradation ladder)
        # before the batch enters the NIC, so admission decisions for
        # this batch reflect last batch's pressure. It owns no crash
        # points — its state rides the normal checkpoint payload.
        description="closed-loop overload controller: pressure sensing + shed ladder",
    ),
    StageSpec(
        name="nic",
        description="DPDK NIC: symmetric RSS into per-queue rx rings",
        crash_points=(
            ("nic.rx", "before a packet batch is offered to the NIC"),
        ),
    ),
    StageSpec(
        name="workers",
        description="per-queue lcore workers: parse + handshake latency",
        upstream=("nic",),
        crash_points=(
            ("worker.poll", "between worker poll rounds, rings partially drained"),
        ),
    ),
    StageSpec(
        name="mq",
        description="ZeroMQ-style PUSH/PULL bus carrying latency records",
        upstream=("workers",),
        crash_points=(
            ("mq.publish", "after workers drained, records in flight on the bus"),
        ),
    ),
    StageSpec(
        name="analytics",
        description="enrichment worker pool + TSDB/frontend fan-out",
        upstream=("mq",),
        crash_points=(
            ("analytics.ingest", "mid-drain of the analytics PULL queue"),
        ),
    ),
    StageSpec(
        name="anomaly",
        description="anomaly detectors riding the enriched stream",
        upstream=("analytics",),
    ),
    StageSpec(
        name="topk",
        description="heavy-hitter sketch riding the enriched stream",
        upstream=("analytics",),
    ),
    StageSpec(
        name="frontend",
        description="enriched SUB feed toward the live map",
        upstream=("analytics",),
    ),
    StageSpec(
        name="telemetry",
        description="self-monitoring registry, tracer and exporter",
        upstream=("analytics",),
    ),
    StageSpec(
        name="tsdb",
        description="measurement store behind the WAL and fault wrappers",
        upstream=("analytics",),
        crash_points=(
            ("tsdb.wal.pre", "write accepted, before the WAL append"),
            ("tsdb.wal.post", "WAL appended, before the store applied the batch"),
            ("tsdb.applied", "store applied the batch, WAL and store agree"),
        ),
    ),
    StageSpec(
        name="checkpoint",
        description="periodic atomic snapshots of every stateful stage",
        upstream=("tsdb",),
        crash_points=(
            ("checkpoint.pre", "checkpoint due, nothing written yet"),
            ("checkpoint.mid", "mid-checkpoint-write: a torn file at the final path"),
            ("checkpoint.post", "checkpoint written, before the WAL truncates"),
        ),
    ),
)

#: Protocol-level crash points that belong to a graph *traversal*
#: rather than any single stage. ``drain.mid`` sits between flush-mq
#: and flush-analytics in the graceful drain.
PROTOCOL_POINTS: Tuple[Tuple[str, str], ...] = (
    ("drain.mid", "graceful drain interrupted between stages"),
)


def stage_names() -> Tuple[str, ...]:
    """Every stage name, in dataflow (= drain = checkpoint) order."""
    return tuple(spec.name for spec in TOPOLOGY)


def get_spec(name: str) -> StageSpec:
    """Look one stage up by name."""
    for spec in TOPOLOGY:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown stage {name!r}; known: {', '.join(stage_names())}")


def crash_points() -> Dict[str, str]:
    """The registered crash-point table, derived from the topology.

    Stage-owned points come out in stage declaration order, followed by
    the traversal-protocol points — which is exactly the historical
    hand-maintained ordering of ``repro.faults.crashpoints``.
    """
    points: Dict[str, str] = {}
    for spec in TOPOLOGY:
        for point, description in spec.crash_points:
            if point in points:
                raise ValueError(f"crash point {point!r} declared twice")
            points[point] = description
    for point, description in PROTOCOL_POINTS:
        if point in points:
            raise ValueError(f"crash point {point!r} declared twice")
        points[point] = description
    return points


def validate() -> None:
    """Structural sanity: unique names, upstream edges resolve, edges
    point backwards (the declaration order is a topological order)."""
    seen: Dict[str, int] = {}
    for index, spec in enumerate(TOPOLOGY):
        if spec.name in seen:
            raise ValueError(f"stage {spec.name!r} declared twice")
        seen[spec.name] = index
        for upstream in spec.upstream:
            if upstream not in seen:
                raise ValueError(
                    f"stage {spec.name!r} consumes {upstream!r}, which is "
                    f"not declared before it"
                )


validate()
