"""Scrape-time metric binders for every tier, in one place.

Hot-path structs keep their plain-int counters; these binders register
scrape-time collectors that assign the live totals into the shared
registry — the single read-out for ``ruru metrics``, JSON snapshots
and the self-monitoring exporter, at zero per-packet cost.

Components call their binder from ``__init__`` when handed a
telemetry handle (so a directly constructed pipeline still exposes its
metrics), and the stack graph binds the cross-stage collectors
(durability, supervisor, injector) during assembly. The binder bodies
live here — not on the components — so the metric surface of the
whole stack is reviewable as one module.

This module intentionally imports nothing from the component modules:
binders receive live objects, which keeps the dependency direction
component → stack.metrics lazy and cycle-free.
"""

from __future__ import annotations


def bind_pipeline_metrics(pipeline, registry) -> None:
    """Publish every pipeline/NIC/worker counter through *registry*."""
    stats = pipeline.stats
    simple = {
        "ruru_packets_offered_total": (
            "Frames offered to the NIC.",
            lambda: stats.packets_offered,
        ),
        "ruru_packets_queued_total": (
            "Frames accepted into rx rings.",
            lambda: stats.packets_queued,
        ),
        "ruru_nic_drops_total": (
            "Frames dropped at the NIC (imissed analogue).",
            lambda: stats.nic_drops,
        ),
        "ruru_packets_shed_total": (
            "Frames shed by overload-control policy (not capacity).",
            lambda: stats.packets_shed,
        ),
        "ruru_parse_errors_total": (
            "Frames rejected by the fast parser.",
            lambda: stats.parse_errors,
        ),
        "ruru_scheduling_rounds_total": (
            "Worker scheduling rounds run by the drain loop.",
            lambda: stats.scheduling_rounds,
        ),
        "ruru_measurements_total": (
            "Latency records emitted by all trackers.",
            lambda: sum(w.stats.measurements for w in pipeline.workers),
        ),
        "ruru_nic_rx_packets_total": (
            "Frames received into mbufs (ipackets).",
            lambda: pipeline.nic.stats.ipackets,
        ),
        "ruru_nic_rx_bytes_total": (
            "Bytes received into mbufs (ibytes).",
            lambda: pipeline.nic.stats.ibytes,
        ),
        "ruru_nic_imissed_total": (
            "Frames the NIC could not queue (imissed).",
            lambda: pipeline.nic.stats.imissed,
        ),
        "ruru_nic_ierrors_total": (
            "Malformed frames rejected at classification (ierrors).",
            lambda: pipeline.nic.stats.ierrors,
        ),
    }
    simple_counters = {
        name: (registry.counter(name, help), read)
        for name, (help, read) in simple.items()
    }
    tracker_events = registry.counter(
        "ruru_tracker_events_total",
        help="Handshake tracker events, merged across queues.",
        labels=("event",),
    )
    parse_reasons = registry.counter(
        "ruru_parse_errors_by_reason_total",
        help="Parse-stage drops bucketed by reason.",
        labels=("reason",),
    )
    worker_processed = registry.counter(
        "ruru_worker_packets_processed_total",
        help="Frames drained off each rx ring.",
        labels=("queue",),
    )
    worker_sampled = registry.counter(
        "ruru_worker_packets_sampled_out_total",
        help="Frames skipped by flow sampling, per queue.",
        labels=("queue",),
    )
    nic_queue_rx = registry.counter(
        "ruru_nic_queue_rx_packets_total",
        help="Frames RSS steered into each rx queue.",
        labels=("queue",),
    )
    flow_entries = registry.gauge(
        "ruru_flow_table_entries",
        help="In-flight handshakes resident per queue.",
        labels=("queue",),
    )
    ring_pending = registry.gauge(
        "ruru_rx_ring_pending",
        help="Mbufs waiting in each rx ring.",
        labels=("queue",),
    )
    ring_high_watermark = registry.gauge(
        "ruru_rx_ring_high_watermark",
        help="Deepest occupancy each rx ring has reached.",
        labels=("queue",),
    )
    ring_capacity = registry.gauge(
        "ruru_rx_ring_capacity",
        help="Slots per rx ring (high_watermark/capacity = pressure).",
        labels=("queue",),
    )
    ring_drops = registry.counter(
        "ruru_rx_ring_drops_total",
        help="Enqueues rejected by a full rx ring.",
        labels=("queue",),
    )
    ring_displaced = registry.counter(
        "ruru_rx_ring_displaced_total",
        help="Queued frames evicted by priority admission.",
        labels=("queue",),
    )
    tracker_fields = tuple(type(stats.tracker)().__dataclass_fields__)
    # Workers and rx queues are fixed for the pipeline's lifetime,
    # so their labelled children resolve once here; collect() then
    # assigns straight into child.value without labels() lookups.
    tracker_children = [
        (field_name, tracker_events.labels(field_name))
        for field_name in tracker_fields
    ]
    per_worker = [
        (
            worker,
            worker_processed.labels(worker.queue_id),
            worker_sampled.labels(worker.queue_id),
            flow_entries.labels(worker.queue_id),
        )
        for worker in pipeline.workers
    ]
    per_queue = [
        (
            rx_queue,
            nic_queue_rx.labels(rx_queue.queue_id),
            ring_pending.labels(rx_queue.queue_id),
            ring_high_watermark.labels(rx_queue.queue_id),
            ring_capacity.labels(rx_queue.queue_id),
            ring_drops.labels(rx_queue.queue_id),
            ring_displaced.labels(rx_queue.queue_id),
        )
        for rx_queue in pipeline.nic.queues
    ]

    def collect() -> None:
        workers = pipeline.workers
        for counter, read in simple_counters.values():
            counter.value = read()
        for field_name, child in tracker_children:
            total = 0
            for worker in workers:
                total += getattr(worker.stats, field_name)
            child.value = total
        for reason, count in pipeline.stats.parse_error_reasons.items():
            parse_reasons.labels(reason).value = count
        for worker, processed, sampled, entries in per_worker:
            processed.value = worker.packets_processed
            sampled.value = worker.packets_sampled_out
            entries.set(len(worker.tracker.table))
        q_ipackets = pipeline.nic.stats.q_ipackets
        for (
            rx_queue,
            rx_packets,
            pending,
            high_watermark,
            capacity,
            drops,
            displaced,
        ) in per_queue:
            rx_packets.value = q_ipackets.get(rx_queue.queue_id, 0)
            pending.set(len(rx_queue))
            ring = rx_queue.ring
            high_watermark.set(ring.high_watermark)
            capacity.set(ring.capacity)
            drops.value = ring.drops
            displaced.value = ring.displaced

    registry.register_collector(collect)


def bind_analytics_metrics(service, registry) -> None:
    """Bridge analytics and message-bus counters into *registry*."""
    simple = {
        "ruru_analytics_records_in_total": (
            "Encoded latency records received from the pipeline.",
            lambda: service.records_in,
        ),
        "ruru_analytics_decode_errors_total": (
            "Records that failed frame decoding.",
            lambda: service.decode_errors,
        ),
        "ruru_analytics_filtered_out_total": (
            "Enriched measurements rejected by filter modules.",
            lambda: service.filtered_out,
        ),
        "ruru_analytics_processed_total": (
            "Measurements published downstream (enriched or degraded).",
            lambda: service.processed,
        ),
        "ruru_analytics_dropped_total": (
            "Records dropped with accounting (filtered/unresolved/undecodable).",
            lambda: service.dropped_records,
        ),
        "ruru_analytics_deadlettered_total": (
            "Records routed to the dead-letter queue.",
            lambda: service.deadlettered,
        ),
        "ruru_analytics_enriched_total": (
            "Measurements enriched (and thereby anonymized).",
            lambda: service.enriched_count,
        ),
        "ruru_mq_push_sent_total": (
            "Messages sent by pipeline PUSH sockets.",
            lambda: sum(push.sent for push in service._push_sockets),
        ),
        "ruru_mq_push_dropped_total": (
            "Messages dropped with every PULL peer at its HWM.",
            lambda: sum(push.dropped for push in service._push_sockets),
        ),
        "ruru_mq_peerless_buffered_total": (
            "Messages buffered by a PUSH socket with no peer connected.",
            lambda: sum(
                push.buffered_no_peer for push in service._push_sockets
            ),
        ),
        "ruru_mq_peerless_dropped_total": (
            "Messages discarded by a peerless PUSH past its own HWM.",
            lambda: sum(
                push.dropped_no_peer for push in service._push_sockets
            ),
        ),
        "ruru_mq_pull_received_total": (
            "Messages accepted by the analytics PULL socket.",
            lambda: service.pull.received,
        ),
        "ruru_mq_pull_dropped_total": (
            "Messages dropped at the analytics PULL high-water mark.",
            lambda: service.pull.dropped,
        ),
        "ruru_mq_pub_sent_total": (
            "Enriched messages published toward the frontend.",
            lambda: service.pub.sent,
        ),
    }
    counters = {
        name: (registry.counter(name, help), read)
        for name, (help, read) in simple.items()
    }
    tsdb_points = registry.gauge(
        "ruru_tsdb_points", help="Points resident in the measurement TSDB."
    )
    pull_depth = registry.gauge(
        "ruru_mq_pull_queue_depth",
        help="Messages waiting in the analytics PULL queue.",
    )

    def collect() -> None:
        for counter, read in counters.values():
            counter.value = read()
        tsdb_points.set(service.tsdb.total_points())
        pull_depth.set(len(service.pull))

    registry.register_collector(collect)


def bind_overload_metrics(controller, registry) -> None:
    """Publish the overload controller's ladder, pressure and shed
    ledger through *registry* (and thereby the SLO evaluator and the
    self-monitoring TSDB export)."""
    level = registry.gauge(
        "ruru_overload_level",
        help="Degradation-ladder level: 0=full 1=sampled "
        "2=handshake-only 3=headers-only.",
    )
    level_max = registry.gauge(
        "ruru_overload_level_max",
        help="Deepest ladder level reached this run.",
    )
    transitions = registry.counter(
        "ruru_overload_transitions_total",
        help="Ladder transitions (each one a timestamped event).",
    )
    pressure = registry.gauge(
        "ruru_overload_pressure",
        help="Peak occupancy fraction per watched stage, last tick.",
        labels=("stage",),
    )
    offered = registry.counter(
        "ruru_overload_offered_total",
        help="Frames offered to admission, per class.",
        labels=("class",),
    )
    admitted = registry.counter(
        "ruru_overload_admitted_total",
        help="Frames admitted past the shed ladder, per class.",
        labels=("class",),
    )
    shed = registry.counter(
        "ruru_shed_total",
        help="Load shed by the overload controller, per class and stage.",
        labels=("class", "stage"),
    )
    truncated = registry.counter(
        "ruru_overload_truncated_total",
        help="Frames truncated to snap_len at the headers-only level.",
    )
    mq_offered = registry.counter(
        "ruru_overload_mq_offered_total",
        help="Records offered to the MQ admission gate.",
    )

    def collect() -> None:
        level.set(controller.level)
        level_max.set(controller.level_max)
        transitions.value = len(controller.transitions)
        truncated.value = controller.truncated
        mq_offered.value = controller.mq_offered
        for stage, fraction in controller.pressure_by_stage().items():
            pressure.labels(stage).set(fraction)
        for klass, count in controller.offered.items():
            offered.labels(klass).value = count
        for klass, count in controller.admitted.items():
            admitted.labels(klass).value = count
        for (klass, stage), count in controller.shed_counts().items():
            shed.labels(klass, stage).value = count

    registry.register_collector(collect)


def bind_durability_metrics(stack, registry) -> None:
    """Publish ``ruru_checkpoint_*`` / ``ruru_wal_*`` /
    ``ruru_recovery_*`` through the shared metrics registry."""
    ckpt = stack.checkpointer
    simple = {
        "ruru_checkpoint_total": (
            "Checkpoints written.",
            lambda: ckpt.checkpoints_written,
        ),
        "ruru_checkpoint_bytes_total": (
            "Bytes of checkpoint envelopes written.",
            lambda: ckpt.bytes_written,
        ),
        "ruru_checkpoint_corrupt_skipped_total": (
            "Damaged checkpoints skipped during recovery.",
            lambda: ckpt.corrupt_skipped,
        ),
        "ruru_wal_appends_total": (
            "Write batches appended to the WAL.",
            lambda: stack.wal.appends,
        ),
        "ruru_wal_aborts_total": (
            "Abort (compensation) records appended to the WAL.",
            lambda: stack.wal.aborts,
        ),
        "ruru_wal_bytes_total": (
            "Bytes appended to the WAL.",
            lambda: stack.tsdb.wal_bytes,
        ),
        "ruru_wal_replayed_batches_total": (
            "Batches re-applied from the WAL at recovery.",
            lambda: stack.tsdb.replayed_batches,
        ),
        "ruru_wal_replayed_points_total": (
            "Points re-applied from the WAL at recovery.",
            lambda: stack.tsdb.replayed_points,
        ),
        "ruru_wal_duplicates_skipped_total": (
            "Replay batches skipped by batch-id dedup (double-write guard).",
            lambda: stack.tsdb.duplicates_skipped,
        ),
        "ruru_wal_expired_dropped_total": (
            "Replayed points dropped because retention had passed.",
            lambda: stack.tsdb.expired_dropped,
        ),
        "ruru_recovery_total": (
            "Times this state directory was recovered from.",
            lambda: stack.recovery_count,
        ),
        "ruru_recovery_lost_at_crash_total": (
            "Records lost between the last checkpoint and the kill.",
            lambda: stack.last_lost_at_crash,
        ),
    }
    counters = {
        name: (registry.counter(name, help), read)
        for name, (help, read) in simple.items()
    }
    last_size = registry.gauge(
        "ruru_checkpoint_last_size_bytes",
        help="Size of the most recent checkpoint envelope.",
    )
    last_at = registry.gauge(
        "ruru_checkpoint_last_ns",
        help="Virtual timestamp of the most recent checkpoint.",
    )

    def collect() -> None:
        for counter, read in counters.values():
            counter.value = read()
        info = ckpt.last_info
        if info is not None:
            last_size.set(info.size_bytes)
            last_at.set(info.now_ns)

    registry.register_collector(collect)
