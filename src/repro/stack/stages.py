"""Concrete stage wrappers binding running components to the Stage
protocol.

Each wrapper owns the *lifecycle* of one tier — its slice of batch
processing, its drain steps, and its checkpoint fragment — while the
component itself (pipeline, analytics service, WAL-backed TSDB, …)
keeps owning the behaviour. The builder assembles these into a
:class:`~repro.stack.stage.StageGraph`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mq.codec import decode_enriched
from repro.stack.stage import Stage, StageContext
from repro.stack.topology import get_spec


class OverloadStage(Stage):
    """The backpressure control loop; owns the overload checkpoint
    fragment.

    Runs first in the graph so admission decisions for the incoming
    batch reflect the pressure the *previous* batch left behind —
    exactly the one-poll-loop lag a real controller would have.
    """

    def __init__(self, controller):
        super().__init__(get_spec("overload"))
        self.controller = controller

    def process(self, ctx: StageContext) -> None:
        self.controller.update(ctx.now_ns)

    def state_dict(self) -> Dict:
        return {"overload": self.controller.state_dict()}

    def load_state(self, state: Dict) -> None:
        if "overload" in state:
            self.controller.load_state(state["overload"])

    def bind_telemetry(self, registry, tracer) -> None:
        from repro.stack.metrics import bind_overload_metrics

        bind_overload_metrics(self.controller, registry)


class NicStage(Stage):
    """Frame admission: offer each packet of the batch to the NIC."""

    def __init__(self, pipeline):
        super().__init__(get_spec("nic"))
        self.pipeline = pipeline

    def process(self, ctx: StageContext) -> None:
        ctx.reached("nic.rx")
        for packet in ctx.batch:
            self.pipeline.offer(packet)

    def quiesce(self) -> None:
        self.pipeline.quiesce()

    def drain(self, ctx: StageContext) -> List[str]:
        self.quiesce()
        return ["quiesce"]


class WorkerStage(Stage):
    """The rx worker pool; owns the pipeline's checkpoint fragment."""

    def __init__(self, pipeline):
        super().__init__(get_spec("workers"))
        self.pipeline = pipeline

    def process(self, ctx: StageContext) -> None:
        ctx.reached("worker.poll")
        self.pipeline.drain()

    def flush(self, ctx: StageContext) -> None:
        self.pipeline.drain()

    def drain(self, ctx: StageContext) -> List[str]:
        self.flush(ctx)
        return ["drain-rings"]

    def state_dict(self) -> Dict:
        return {"pipeline": self.pipeline.state_dict()}

    def load_state(self, state: Dict) -> None:
        if "pipeline" in state:
            self.pipeline.load_state(state["pipeline"])


class MqStage(Stage):
    """The PUSH/PULL bus boundary between workers and analytics."""

    def __init__(self, service):
        super().__init__(get_spec("mq"))
        self.service = service

    def process(self, ctx: StageContext) -> None:
        ctx.reached("mq.publish")

    def flush(self, ctx: StageContext) -> None:
        self.service.poll(max_messages=1 << 30)

    def drain(self, ctx: StageContext) -> List[str]:
        self.flush(ctx)
        return ["flush-mq"]


class AnalyticsStage(Stage):
    """Enrichment + fan-out; owns the service's checkpoint fragment."""

    def __init__(self, service, mid_batch_poll: int = 64):
        super().__init__(get_spec("analytics"))
        self.service = service
        self.mid_batch_poll = mid_batch_poll

    def process(self, ctx: StageContext) -> None:
        # Partial drain first, so analytics.ingest really is mid-queue.
        self.service.poll(max_messages=self.mid_batch_poll)
        ctx.reached("analytics.ingest")
        self.service.poll(max_messages=1 << 30)

    def flush(self, ctx: StageContext) -> None:
        self.service.finish()

    def drain(self, ctx: StageContext) -> List[str]:
        ctx.reached("drain.mid")
        self.flush(ctx)
        return ["flush-analytics"]

    def state_dict(self) -> Dict:
        return {"service": self.service.state_dict()}

    def load_state(self, state: Dict) -> None:
        if "service" in state:
            self.service.load_state(state["service"])


class AnomalyStage(Stage):
    """Detector baselines; fed by observers, stateful for checkpoints."""

    def __init__(self, manager):
        super().__init__(get_spec("anomaly"))
        self.manager = manager

    def state_dict(self) -> Dict:
        return {"anomaly": self.manager.state_dict()}

    def load_state(self, state: Dict) -> None:
        if "anomaly" in state:
            self.manager.load_state(state["anomaly"])


class TopkStage(Stage):
    """Heavy-hitter sketch riding the enriched stream."""

    def __init__(self, sketch):
        super().__init__(get_spec("topk"))
        self.sketch = sketch

    def state_dict(self) -> Dict:
        return {"topk": self.sketch.state_dict()}

    def load_state(self, state: Dict) -> None:
        if "topk" in state:
            self.sketch.load_state(state["topk"])


class FrontendStage(Stage):
    """The enriched SUB feed: decode, count, fan out to observers."""

    def __init__(self, sub, observers=()):
        super().__init__(get_spec("frontend"))
        self.sub = sub
        self.observers = list(observers)
        self.received = 0
        self.degraded = 0

    def pump(self) -> int:
        """Drain every queued enriched message through the observers."""
        handled = 0
        for message in self.sub.recv_all():
            measurement = decode_enriched(message.payload[0])
            self.received += 1
            if measurement.degraded:
                self.degraded += 1
            for observe in self.observers:
                observe(measurement)
            handled += 1
        return handled

    def process(self, ctx: StageContext) -> None:
        self.pump()

    def flush(self, ctx: StageContext) -> None:
        self.pump()

    def drain(self, ctx: StageContext) -> List[str]:
        self.pump()
        return ["flush-frontend"]

    def state_dict(self) -> Dict:
        return {
            "frontend": {"received": self.received, "degraded": self.degraded}
        }

    def load_state(self, state: Dict) -> None:
        frontend = state.get("frontend")
        if frontend is not None:
            self.received = int(frontend["received"])
            self.degraded = int(frontend["degraded"])


class TelemetryStage(Stage):
    """Self-monitoring: tick per batch, flush on drain."""

    def __init__(self, telemetry):
        super().__init__(get_spec("telemetry"))
        self.telemetry = telemetry

    def process(self, ctx: StageContext) -> None:
        self.telemetry.tick(ctx.now_ns)

    def flush(self, ctx: StageContext) -> None:
        self.telemetry.flush(ctx.now_ns)

    def drain(self, ctx: StageContext) -> List[str]:
        self.flush(ctx)
        return ["flush-telemetry"]


class TsdbStage(Stage):
    """The WAL-backed store; owns the TSDB checkpoint fragments."""

    def __init__(self, tsdb, wal):
        super().__init__(get_spec("tsdb"))
        self.tsdb = tsdb
        self.wal = wal

    def flush(self, ctx: StageContext) -> None:
        self.wal.sync()

    def drain(self, ctx: StageContext) -> List[str]:
        self.flush(ctx)
        return ["sync-wal"]

    def state_dict(self) -> Dict:
        return {
            "tsdb_meta": self.tsdb.state_dict(),
            # The wrapper's incremental line cache — re-dumping (and
            # re-formatting) the whole store every checkpoint would make
            # checkpoint cost grow with run length.
            "tsdb_lines": list(self.tsdb.applied_lines),
        }

    def load_state(self, state: Dict) -> None:
        if "tsdb_meta" in state:
            self.tsdb.load_state(state["tsdb_meta"])
        if "tsdb_lines" in state:
            # The store restores bypassing both the fault wrapper's dice
            # and the WAL — these points are already durable in the
            # checkpoint being loaded.
            self.tsdb.load_lines(state["tsdb_lines"])


class CheckpointStage(Stage):
    """Periodic checkpoints plus checkpoint-cadence retention.

    The checkpointer is bound by the builder *after* the stack exists
    (its capture callable is the stack's own ``capture_state``).
    """

    def __init__(self, tsdb, retention_ns: Optional[int]):
        super().__init__(get_spec("checkpoint"))
        self.tsdb = tsdb
        self.retention_ns = retention_ns
        self.checkpointer = None
        self.stack = None
        self.last_clean = None

    def process(self, ctx: StageContext) -> None:
        now_ns = ctx.now_ns
        if self.retention_ns is not None and self.checkpointer.due(now_ns):
            # Age the live store on the checkpoint cadence, so neither
            # the store nor the checkpoints grow past the window.
            self.tsdb.enforce_retention(now_ns)
        self.checkpointer.maybe_checkpoint(now_ns)

    def drain(self, ctx: StageContext) -> List[str]:
        self.last_clean = self.checkpointer.checkpoint(ctx.now_ns, clean=True)
        return ["clean-checkpoint"]

    def bind_telemetry(self, registry, tracer) -> None:
        from repro.stack.metrics import bind_durability_metrics

        bind_durability_metrics(self.stack, registry)
