"""repro — a full reproduction of Ruru (SIGCOMM 2017 Posters & Demos).

Ruru is a passive, flow-level end-to-end latency measurement and
visualization pipeline: DPDK fast path → handshake latency engine →
ZeroMQ → geo/AS analytics → InfluxDB + WebSocket/WebGL frontends.
Every stage is reproduced in pure Python (see DESIGN.md for the
substitution table), plus the traffic generation, anomaly detection
and baselines needed to regenerate the paper's evaluation story.

Quick start::

    from repro import RuruPipeline, AucklandLaScenario

    generator = AucklandLaScenario(duration_ns=10**10).build()
    pipeline = RuruPipeline()
    stats = pipeline.run_packets(generator.packets())
    for record in pipeline.measurements[:5]:
        print(record)
"""

from repro.core import (
    HandshakeTracker,
    LatencyRecord,
    PipelineConfig,
    RuruPipeline,
)
from repro.traffic import AucklandLaScenario, GeneratorConfig, TrafficGenerator
from repro.analytics import AnalyticsService, EnrichedMeasurement, Enricher
from repro.geo import GeoDbBuilder, SyntheticGeoPlan
from repro.tsdb import Query, TimeSeriesDatabase
from repro.frontend import LiveMapView, build_ruru_dashboard
from repro.anomaly import AnomalyManager
from repro.mq import Context
from repro.runtime import RuruRuntime, RuntimeReport
from repro.stack import (
    PRESETS,
    RuruStack,
    StackBuilder,
    build_chaos_stack,
    build_durable_stack,
    build_live_stack,
    build_measure_stack,
)

__version__ = "1.0.0"

__all__ = [
    "HandshakeTracker",
    "LatencyRecord",
    "PipelineConfig",
    "RuruPipeline",
    "AucklandLaScenario",
    "GeneratorConfig",
    "TrafficGenerator",
    "AnalyticsService",
    "EnrichedMeasurement",
    "Enricher",
    "GeoDbBuilder",
    "SyntheticGeoPlan",
    "Query",
    "TimeSeriesDatabase",
    "LiveMapView",
    "build_ruru_dashboard",
    "AnomalyManager",
    "Context",
    "PRESETS",
    "RuruRuntime",
    "RuntimeReport",
    "RuruStack",
    "StackBuilder",
    "build_chaos_stack",
    "build_durable_stack",
    "build_live_stack",
    "build_measure_stack",
    "__version__",
]
