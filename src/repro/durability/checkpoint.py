"""Periodic, atomic, versioned checkpoints on the virtual clock.

A checkpoint is one :mod:`repro.durability.codec` envelope holding the
``state_dict`` of every stateful tier — flow tables mid-handshake,
the open aggregation window, anomaly baselines, the resilience ledger,
the DLQ, and a full line-protocol dump of the TSDB together with the
WAL high-water mark it covers.

Write discipline: serialize to ``<name>.tmp``, fsync, then
``os.replace`` onto the final name — so the final path either holds a
complete envelope or the previous one, never a half-written file, even
under kill -9. The last *keep* checkpoints are retained and
:meth:`Checkpointer.latest_valid` walks them newest-first, skipping
anything the codec rejects: a torn or bit-flipped newest checkpoint
degrades recovery to the previous one instead of failing it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.durability.codec import SnapshotError, decode_snapshot, encode_snapshot

CHECKPOINT_PREFIX = "ckpt-"
CHECKPOINT_SUFFIX = ".snap"


@dataclass(frozen=True)
class CheckpointInfo:
    """One checkpoint file's identity and size."""

    path: str
    seq: int
    now_ns: int
    size_bytes: int


def _parse_name(name: str) -> Optional[Tuple[int, int]]:
    """``ckpt-<seq>-<now_ns>.snap`` → (seq, now_ns), else None."""
    if not (name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX)):
        return None
    stem = name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
    parts = stem.split("-")
    if len(parts) != 2:
        return None
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        return None


class Checkpointer:
    """Owns one state directory's checkpoint files.

    Args:
        state_dir: directory for ``ckpt-<seq>-<now>.snap`` files
            (created on first write).
        capture: zero-arg callable returning the full JSON-safe state
            of the running stack (the runtime's ``capture_state``).
        interval_ns: virtual-time cadence for :meth:`maybe_checkpoint`.
        keep: checkpoints retained; older ones are pruned after each
            successful write.
        crash_schedule: optional
            :class:`~repro.faults.crashpoints.CrashSchedule` — the
            checkpoint write path is itself a crash surface and
            instruments ``checkpoint.pre`` / ``mid`` / ``post``.
        on_written: called with each new :class:`CheckpointInfo`
            (the runtime truncates the WAL here).
        fsync: fsync the tmp file before the atomic rename. Same
            policy as the WAL: the recovery tests simulate crashes
            in-process, where a flush plus ``os.replace`` suffices;
            real deployments pay the fsync.
    """

    def __init__(
        self,
        state_dir: str,
        capture: Callable[[], dict],
        interval_ns: int = 1_000_000_000,
        keep: int = 2,
        crash_schedule=None,
        on_written: Optional[Callable[[CheckpointInfo], None]] = None,
        fsync: bool = False,
    ):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.state_dir = str(state_dir)
        self.capture = capture
        self.interval_ns = interval_ns
        self.keep = keep
        self.crash_schedule = crash_schedule
        self.on_written = on_written
        self.fsync = fsync
        self.seq = 0
        self.checkpoints_written = 0
        self.bytes_written = 0
        self.last_checkpoint_ns: Optional[int] = None
        self.last_info: Optional[CheckpointInfo] = None
        self.corrupt_skipped = 0

    def _reached(self, point: str) -> None:
        if self.crash_schedule is not None:
            self.crash_schedule.reached(point)

    # -- writing ------------------------------------------------------------

    def due(self, now_ns: int) -> bool:
        return (
            self.last_checkpoint_ns is None
            or now_ns - self.last_checkpoint_ns >= self.interval_ns
        )

    def maybe_checkpoint(self, now_ns: int) -> Optional[CheckpointInfo]:
        """Write a checkpoint if the interval has elapsed."""
        if not self.due(now_ns):
            return None
        return self.checkpoint(now_ns)

    def checkpoint(self, now_ns: int, clean: bool = False) -> CheckpointInfo:
        """Capture and write one checkpoint unconditionally.

        Args:
            now_ns: the virtual time stamped into the filename and
                envelope.
            clean: mark this as a drain-written checkpoint (nothing in
                flight behind it) — recovery reports distinguish a
                clean resume from a crash resume.
        """
        self._reached("checkpoint.pre")
        state = self.capture()
        state["checkpoint"] = {"now_ns": now_ns, "clean": clean, "seq": self.seq + 1}
        blob = encode_snapshot(state)

        os.makedirs(self.state_dir, exist_ok=True)
        self.seq += 1
        name = f"{CHECKPOINT_PREFIX}{self.seq}-{now_ns}{CHECKPOINT_SUFFIX}"
        final_path = os.path.join(self.state_dir, name)
        tmp_path = final_path + ".tmp"

        schedule = self.crash_schedule
        if schedule is not None and schedule.will_fire("checkpoint.mid"):
            # Simulate the non-atomic failure mode the tmp+rename
            # discipline exists to prevent: a torn write at the final
            # path. latest_valid() must skip this file.
            with open(final_path, "wb") as handle:
                handle.write(blob[: max(1, len(blob) // 2)])
            schedule.reached("checkpoint.mid")
        self._reached("checkpoint.mid")

        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, final_path)

        info = CheckpointInfo(
            path=final_path, seq=self.seq, now_ns=now_ns, size_bytes=len(blob)
        )
        self.checkpoints_written += 1
        self.bytes_written += len(blob)
        self.last_checkpoint_ns = now_ns
        self.last_info = info
        self._prune()
        # checkpoint.post sits between the durable checkpoint and the
        # WAL truncation in on_written: a crash here leaves stale WAL
        # entries whose replay the batch-id dedup must absorb.
        self._reached("checkpoint.post")
        if self.on_written is not None:
            self.on_written(info)
        return info

    def _prune(self) -> None:
        for info in self.list_checkpoints()[self.keep :]:
            try:
                os.remove(info.path)
            except OSError:
                pass

    # -- reading ------------------------------------------------------------

    def list_checkpoints(self) -> List[CheckpointInfo]:
        """Every checkpoint file present, newest first."""
        if not os.path.isdir(self.state_dir):
            return []
        infos: List[CheckpointInfo] = []
        for name in os.listdir(self.state_dir):
            parsed = _parse_name(name)
            if parsed is None:
                continue
            path = os.path.join(self.state_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            infos.append(
                CheckpointInfo(path=path, seq=parsed[0], now_ns=parsed[1], size_bytes=size)
            )
        infos.sort(key=lambda info: info.seq, reverse=True)
        return infos

    def latest_valid(self) -> Optional[Tuple[CheckpointInfo, dict]]:
        """Newest checkpoint that decodes cleanly, skipping damage.

        Also resynchronizes :attr:`seq` so post-recovery checkpoints
        never collide with surviving files.
        """
        skipped = 0
        for info in self.list_checkpoints():
            self.seq = max(self.seq, info.seq)
            try:
                with open(info.path, "rb") as handle:
                    state = decode_snapshot(handle.read())
            except (SnapshotError, OSError):
                skipped += 1
                continue
            self.corrupt_skipped = skipped
            return info, state
        self.corrupt_skipped = skipped
        return None
