"""The durable Ruru stack: chaos wiring plus checkpoint/WAL/drain.

:class:`DurableRuntime` assembles the same full pipeline + analytics
stack as :class:`~repro.faults.chaos.ChaosHarness` — optionally under
the same named fault profiles — and adds the machinery that makes
``kill -9`` recoverable with bounded, accounted-for loss:

* the TSDB sits behind a :class:`~repro.durability.wal.DurableTsdb`
  (write-ahead log, monotonic batch ids);
* a :class:`~repro.durability.checkpoint.Checkpointer` snapshots every
  stateful tier between feed batches on the virtual clock — between
  batches the rx rings and the PULL queue are empty, so each
  checkpoint is a consistent cut;
* :meth:`DurableRuntime.shutdown` is the graceful drain protocol:
  quiesce the NIC, drain workers, flush MQ → analytics → TSDB in
  dependency order, sync the WAL, and write a final *clean*
  checkpoint;
* anomaly detectors and a top-k heavy-hitter sketch ride the enriched
  stream, so their baselines are part of every checkpoint.

Feeding is externally driven (:meth:`process_batch`): the recovery
harness plays the network, which is what makes "packets handed to a
dead process are gone" representable at all.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.analytics.service import AnalyticsService, make_pipeline_sink
from repro.analytics.topk import SpaceSaving
from repro.anomaly.manager import AnomalyManager
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.durability.checkpoint import CheckpointInfo, Checkpointer
from repro.durability.wal import DurableTsdb, WriteAheadLog
from repro.faults.adapters import (
    FaultyPushSocket,
    FlakyAsnDatabase,
    FlakyGeoDatabase,
    FlakyTimeSeriesDatabase,
)
from repro.faults.injector import FaultInjector
from repro.faults.profiles import FaultProfile, get_profile
from repro.geo.builder import GeoDbBuilder
from repro.mq.codec import decode_enriched
from repro.mq.socket import Context
from repro.obs import Telemetry
from repro.resilience import ConservationLedger, ResilienceLayer, Supervisor
from repro.traffic.scenarios import AucklandLaScenario
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.retention import RetentionPolicy

NS_PER_S = 1_000_000_000

STATE_FORMAT = 1


@dataclass
class DrainReport:
    """What the graceful shutdown protocol flushed, stage by stage."""

    ledger: ConservationLedger
    rejected_while_quiesced: int
    retries_drained: int
    points_written: int
    final_checkpoint: Optional[CheckpointInfo]
    wal_appends: int
    duration_s: float
    stages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Drained clean: conservation holds and a checkpoint landed."""
        return self.ledger.ok and self.final_checkpoint is not None

    def render(self) -> str:
        lines = [
            "graceful drain: " + " -> ".join(self.stages),
            f"  conservation: {self.ledger}",
            f"  rejected while quiesced: {self.rejected_while_quiesced}",
            f"  points written: {self.points_written} "
            f"({self.wal_appends} WAL appends, {self.retries_drained} retries drained)",
        ]
        if self.final_checkpoint is not None:
            lines.append(
                f"  clean checkpoint: {os.path.basename(self.final_checkpoint.path)} "
                f"({self.final_checkpoint.size_bytes} bytes)"
            )
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


class DurableRuntime:
    """One crash-safe Ruru stack bound to a state directory.

    Args:
        state_dir: where checkpoints and the WAL live; a second
            runtime pointed at the same directory is "the restarted
            process".
        profile: fault profile name or object ("clean" for none).
        seed: drives workload, faults, and retry jitter.
        duration_s / rate / queues: traffic scenario shape.
        checkpoint_interval_ns: virtual-time checkpoint cadence.
        keep_checkpoints: files retained on disk.
        retention_ns: optional TSDB retention policy. The live store
            is aged on the checkpoint cadence (bounding both the store
            and the checkpoints), and recovery must not resurrect
            points past the window (see ``replay_wal``).
        crash_schedule: arms a deterministic kill point.
        fsync_wal: fsync every WAL append and every checkpoint tmp
            file (off for in-process tests, where a flush plus the
            atomic rename suffices; real deployments turn it on).
    """

    def __init__(
        self,
        state_dir: str,
        profile: Union[str, FaultProfile] = "clean",
        seed: int = 42,
        duration_s: float = 8.0,
        rate: float = 40.0,
        queues: int = 2,
        checkpoint_interval_ns: int = NS_PER_S,
        keep_checkpoints: int = 2,
        retention_ns: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        crash_schedule=None,
        fsync_wal: bool = False,
    ):
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.profile = (
            get_profile(profile) if isinstance(profile, str) else profile
        )
        self.seed = seed
        self.queues = queues
        self.retention_ns = retention_ns
        self.crash_schedule = crash_schedule
        self.injector = FaultInjector(self.profile, seed=seed)
        self.telemetry = telemetry or Telemetry()
        self.generator = AucklandLaScenario(
            duration_ns=int(duration_s * NS_PER_S),
            mean_flows_per_s=rate,
            seed=seed,
            diurnal=False,
        ).build()

        geo, asn = GeoDbBuilder(plan=self.generator.plan).build()
        if self.profile.geo_failure_rate > 0:
            geo = FlakyGeoDatabase(geo, self.injector)
        if self.profile.asn_failure_rate > 0:
            asn = FlakyAsnDatabase(asn, self.injector)

        store = TimeSeriesDatabase()
        if retention_ns is not None:
            store.add_retention_policy(RetentionPolicy(duration_ns=retention_ns))
        flaky = FlakyTimeSeriesDatabase(store, self.injector)
        self.wal = WriteAheadLog(
            os.path.join(self.state_dir, "tsdb.wal"), fsync=fsync_wal
        )
        self.tsdb = DurableTsdb(flaky, self.wal, crash_schedule=crash_schedule)

        self.resilience = ResilienceLayer(seed=seed)
        self.supervisor = Supervisor()
        context = Context()
        self.service = AnalyticsService(
            context,
            geo,
            asn,
            tsdb=self.tsdb,
            telemetry=self.telemetry,
            resilience=self.resilience,
        )
        flaky.now_fn = lambda: self.service.now_ns
        self.supervisor.bind_registry(self.telemetry.registry)
        self.injector.bind_registry(self.telemetry.registry)

        self.anomaly = AnomalyManager()
        self.topk: SpaceSaving = SpaceSaving(capacity=100)
        self.frontend = self.service.subscribe_frontend(hwm=1 << 20)
        self.frontend_received = 0
        self.frontend_degraded = 0

        push = self.service.connect_pipeline()
        sink = make_pipeline_sink(
            FaultyPushSocket(push, self.injector),
            tracer=self.telemetry.tracer,
        )
        self.pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=queues),
            sink=sink,
            observers=[self.anomaly.observe_packet],
            telemetry=self.telemetry,
            supervisor=self.supervisor,
            poll_wrapper=self.injector.crashy_poll,
        )
        self.checkpointer = Checkpointer(
            state_dir=self.state_dir,
            capture=self.capture_state,
            interval_ns=checkpoint_interval_ns,
            keep=keep_checkpoints,
            crash_schedule=crash_schedule,
            on_written=self._after_checkpoint,
            fsync=fsync_wal,
        )
        self.recovered_from: Optional[CheckpointInfo] = None
        self.recovery_count = 0
        self.last_lost_at_crash = 0
        self._bind_registry(self.telemetry.registry)

    # -- feeding ------------------------------------------------------------

    def _reached(self, point: str) -> None:
        if self.crash_schedule is not None:
            self.crash_schedule.reached(point)

    @property
    def now_ns(self) -> int:
        """The stack's virtual now (whichever tier has seen furthest)."""
        return max(self.pipeline.clock.now_ns, self.service.now_ns)

    def process_batch(self, batch) -> None:
        """Run one feed batch end to end: NIC → workers → MQ →
        analytics → frontend, then checkpoint if due.

        Every registered stage-boundary crash point is instrumented
        here; after the batch the rings and queues are empty, which is
        what makes the trailing checkpoint a consistent cut.
        """
        self._reached("nic.rx")
        for packet in batch:
            self.pipeline.offer(packet)
        self._reached("worker.poll")
        self.pipeline.drain()
        self._reached("mq.publish")
        # Partial drain first, so analytics.ingest really is mid-queue.
        self.service.poll(max_messages=64)
        self._reached("analytics.ingest")
        self.service.poll(max_messages=1 << 30)
        self._drain_frontend()
        self.telemetry.tick(self.now_ns)
        if self.retention_ns is not None and self.checkpointer.due(self.now_ns):
            # Age the live store on the checkpoint cadence, so neither
            # the store nor the checkpoints grow past the window.
            self.tsdb.enforce_retention(self.now_ns)
        self.checkpointer.maybe_checkpoint(self.now_ns)

    def _drain_frontend(self) -> None:
        for message in self.frontend.recv_all():
            measurement = decode_enriched(message.payload[0])
            self.frontend_received += 1
            if measurement.degraded:
                self.frontend_degraded += 1
            self.anomaly.observe_measurement(measurement)
            self.topk.add(measurement.location_pair)

    def run(self, shutdown_flag=None) -> DrainReport:
        """Feed the whole scenario, then drain gracefully.

        Args:
            shutdown_flag: zero-arg callable checked between batches;
                truthy → stop feeding and drain (the SIGINT/SIGTERM
                path of ``ruru live``).
        """
        batch = []
        for packet in self.injector.packet_stream(self.generator.packets()):
            batch.append(packet)
            if len(batch) >= self.pipeline.feed_batch:
                self.process_batch(batch)
                batch = []
                if shutdown_flag is not None and shutdown_flag():
                    return self.shutdown()
        if batch:
            self.process_batch(batch)
        return self.shutdown()

    # -- graceful drain ------------------------------------------------------

    def shutdown(self) -> DrainReport:
        """The graceful drain protocol, in dependency order.

        quiesce NIC → drain rx rings → flush MQ into analytics →
        flush aggregation windows and retry queue into the TSDB →
        flush telemetry → sync the WAL → final clean checkpoint.
        A kill mid-drain (``drain.mid``) is recoverable like any other
        crash point: the periodic checkpoints still stand.
        """
        started = time.perf_counter()
        stages: List[str] = []
        retries_before = self.resilience.retries

        self.pipeline.quiesce()
        stages.append("quiesce")
        self.pipeline.drain()
        stages.append("drain-rings")
        self.service.poll(max_messages=1 << 30)
        stages.append("flush-mq")
        self._reached("drain.mid")
        self.service.finish()
        stages.append("flush-analytics")
        self._drain_frontend()
        stages.append("flush-frontend")
        self.telemetry.flush(self.now_ns)
        stages.append("flush-telemetry")
        self.wal.sync()
        stages.append("sync-wal")
        info = self.checkpointer.checkpoint(self.now_ns, clean=True)
        stages.append("clean-checkpoint")

        return DrainReport(
            ledger=self.service.conservation_ledger(),
            rejected_while_quiesced=self.pipeline.stats.packets_rejected_quiesced,
            retries_drained=self.resilience.retries - retries_before,
            points_written=self.resilience.points_written,
            final_checkpoint=info,
            wal_appends=self.wal.appends,
            duration_s=time.perf_counter() - started,
            stages=stages,
        )

    # -- checkpoint capture/restore -----------------------------------------

    def capture_state(self) -> dict:
        """One JSON-safe snapshot of every stateful tier."""
        return {
            "format": STATE_FORMAT,
            "meta": {
                "profile": self.profile.name,
                "seed": self.seed,
                "queues": self.queues,
            },
            "pipeline": self.pipeline.state_dict(),
            "service": self.service.state_dict(),
            "anomaly": self.anomaly.state_dict(),
            "topk": self.topk.state_dict(),
            "tsdb_meta": self.tsdb.state_dict(),
            # The wrapper's incremental line cache — re-dumping (and
            # re-formatting) the whole store every checkpoint would make
            # checkpoint cost grow with run length.
            "tsdb_lines": list(self.tsdb.applied_lines),
            "frontend": {
                "received": self.frontend_received,
                "degraded": self.frontend_degraded,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`capture_state` snapshot into this stack."""
        if int(state.get("format", 0)) != STATE_FORMAT:
            raise ValueError(
                f"unsupported state format {state.get('format')!r}"
            )
        meta = state["meta"]
        if int(meta["queues"]) != self.queues:
            raise ValueError(
                f"checkpoint built with {meta['queues']} queues, "
                f"runtime has {self.queues}"
            )
        self.pipeline.load_state(state["pipeline"])
        self.service.load_state(state["service"])
        self.anomaly.load_state(state["anomaly"])
        self.topk.load_state(state["topk"])
        self.tsdb.load_state(state["tsdb_meta"])
        # The store restores bypassing both the fault wrapper's dice
        # and the WAL — these points are already durable in the
        # checkpoint being loaded.
        self.tsdb.load_lines(state["tsdb_lines"])
        frontend = state["frontend"]
        self.frontend_received = int(frontend["received"])
        self.frontend_degraded = int(frontend["degraded"])

    def _after_checkpoint(self, info: CheckpointInfo) -> None:
        # The checkpoint's TSDB dump covers every applied batch, so the
        # log restarts empty; batch ids stay monotonic across the
        # truncation, which is what keeps replay dedup sound if we die
        # before this line runs.
        self.wal.truncate()

    # -- telemetry -----------------------------------------------------------

    def _bind_registry(self, registry) -> None:
        """Publish ``ruru_checkpoint_*`` / ``ruru_wal_*`` /
        ``ruru_recovery_*`` through the shared metrics registry."""
        ckpt = self.checkpointer
        simple = {
            "ruru_checkpoint_total": (
                "Checkpoints written.",
                lambda: ckpt.checkpoints_written,
            ),
            "ruru_checkpoint_bytes_total": (
                "Bytes of checkpoint envelopes written.",
                lambda: ckpt.bytes_written,
            ),
            "ruru_checkpoint_corrupt_skipped_total": (
                "Damaged checkpoints skipped during recovery.",
                lambda: ckpt.corrupt_skipped,
            ),
            "ruru_wal_appends_total": (
                "Write batches appended to the WAL.",
                lambda: self.wal.appends,
            ),
            "ruru_wal_aborts_total": (
                "Abort (compensation) records appended to the WAL.",
                lambda: self.wal.aborts,
            ),
            "ruru_wal_bytes_total": (
                "Bytes appended to the WAL.",
                lambda: self.tsdb.wal_bytes,
            ),
            "ruru_wal_replayed_batches_total": (
                "Batches re-applied from the WAL at recovery.",
                lambda: self.tsdb.replayed_batches,
            ),
            "ruru_wal_replayed_points_total": (
                "Points re-applied from the WAL at recovery.",
                lambda: self.tsdb.replayed_points,
            ),
            "ruru_wal_duplicates_skipped_total": (
                "Replay batches skipped by batch-id dedup (double-write guard).",
                lambda: self.tsdb.duplicates_skipped,
            ),
            "ruru_wal_expired_dropped_total": (
                "Replayed points dropped because retention had passed.",
                lambda: self.tsdb.expired_dropped,
            ),
            "ruru_recovery_total": (
                "Times this state directory was recovered from.",
                lambda: self.recovery_count,
            ),
            "ruru_recovery_lost_at_crash_total": (
                "Records lost between the last checkpoint and the kill.",
                lambda: self.last_lost_at_crash,
            ),
        }
        counters = {
            name: (registry.counter(name, help), read)
            for name, (help, read) in simple.items()
        }
        last_size = registry.gauge(
            "ruru_checkpoint_last_size_bytes",
            help="Size of the most recent checkpoint envelope.",
        )
        last_at = registry.gauge(
            "ruru_checkpoint_last_ns",
            help="Virtual timestamp of the most recent checkpoint.",
        )

        def collect() -> None:
            for counter, read in counters.values():
                counter.value = read()
            info = ckpt.last_info
            if info is not None:
                last_size.set(info.size_bytes)
                last_at.set(info.now_ns)

        registry.register_collector(collect)
