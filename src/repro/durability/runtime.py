"""The durable Ruru stack: chaos wiring plus checkpoint/WAL/drain.

:class:`DurableRuntime` is a thin configuration of the ``durable``
stack preset (:func:`repro.stack.build_durable_stack`): the same full
pipeline + analytics stack as :class:`~repro.faults.chaos.ChaosHarness`
— optionally under the same named fault profiles — plus the machinery
that makes ``kill -9`` recoverable with bounded, accounted-for loss:

* the TSDB sits behind a :class:`~repro.durability.wal.DurableTsdb`
  (write-ahead log, monotonic batch ids);
* a :class:`~repro.durability.checkpoint.Checkpointer` snapshots every
  stateful tier between feed batches on the virtual clock — between
  batches the rx rings and the PULL queue are empty, so each
  checkpoint is a consistent cut;
* :meth:`DurableRuntime.shutdown` is the graceful drain protocol,
  derived from the stage graph's dependency order: quiesce the NIC,
  drain workers, flush MQ → analytics → TSDB, sync the WAL, and write
  a final *clean* checkpoint;
* anomaly detectors and a top-k heavy-hitter sketch ride the enriched
  stream, so their baselines are part of every checkpoint.

Feeding is externally driven (:meth:`process_batch`): the recovery
harness plays the network, which is what makes "packets handed to a
dead process are gone" representable at all.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.durability.checkpoint import CheckpointInfo
from repro.faults.profiles import FaultProfile
from repro.obs import Telemetry
from repro.resilience import ConservationLedger
from repro.stack.builder import NS_PER_S, STATE_FORMAT, build_durable_stack

__all__ = [
    "NS_PER_S",
    "STATE_FORMAT",
    "DrainReport",
    "DurableRuntime",
]


@dataclass
class DrainReport:
    """What the graceful shutdown protocol flushed, stage by stage."""

    ledger: ConservationLedger
    rejected_while_quiesced: int
    retries_drained: int
    points_written: int
    final_checkpoint: Optional[CheckpointInfo]
    wal_appends: int
    duration_s: float
    stages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Drained clean: conservation holds and a checkpoint landed."""
        return self.ledger.ok and self.final_checkpoint is not None

    def render(self) -> str:
        lines = [
            "graceful drain: " + " -> ".join(self.stages),
            f"  conservation: {self.ledger}",
            f"  rejected while quiesced: {self.rejected_while_quiesced}",
            f"  points written: {self.points_written} "
            f"({self.wal_appends} WAL appends, {self.retries_drained} retries drained)",
        ]
        if self.final_checkpoint is not None:
            lines.append(
                f"  clean checkpoint: {os.path.basename(self.final_checkpoint.path)} "
                f"({self.final_checkpoint.size_bytes} bytes)"
            )
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


class DurableRuntime:
    """One crash-safe Ruru stack bound to a state directory.

    Args:
        state_dir: where checkpoints and the WAL live; a second
            runtime pointed at the same directory is "the restarted
            process".
        profile: fault profile name or object ("clean" for none).
        seed: drives workload, faults, and retry jitter.
        duration_s / rate / queues: traffic scenario shape.
        checkpoint_interval_ns: virtual-time checkpoint cadence.
        keep_checkpoints: files retained on disk.
        retention_ns: optional TSDB retention policy. The live store
            is aged on the checkpoint cadence (bounding both the store
            and the checkpoints), and recovery must not resurrect
            points past the window (see ``replay_wal``).
        crash_schedule: arms a deterministic kill point.
        fsync_wal: fsync every WAL append and every checkpoint tmp
            file (off for in-process tests, where a flush plus the
            atomic rename suffices; real deployments turn it on).
    """

    def __init__(
        self,
        state_dir: str,
        profile: Union[str, FaultProfile] = "clean",
        seed: int = 42,
        duration_s: float = 8.0,
        rate: float = 40.0,
        queues: int = 2,
        checkpoint_interval_ns: int = NS_PER_S,
        keep_checkpoints: int = 2,
        retention_ns: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        crash_schedule=None,
        fsync_wal: bool = False,
        overload: bool = False,
    ):
        self.stack = build_durable_stack(
            state_dir,
            profile=profile,
            seed=seed,
            duration_s=duration_s,
            rate=rate,
            queues=queues,
            checkpoint_interval_ns=checkpoint_interval_ns,
            keep_checkpoints=keep_checkpoints,
            retention_ns=retention_ns,
            telemetry=telemetry,
            crash_schedule=crash_schedule,
            fsync_wal=fsync_wal,
            overload=overload,
        )
        stack = self.stack
        self.state_dir = stack.state_dir
        self.profile = stack.profile
        self.seed = stack.seed
        self.queues = stack.queues
        self.retention_ns = stack.retention_ns
        self.crash_schedule = stack.crash_schedule
        self.injector = stack.injector
        self.telemetry = stack.telemetry
        self.generator = stack.generator
        self.wal = stack.wal
        self.tsdb = stack.tsdb
        self.resilience = stack.resilience
        self.supervisor = stack.supervisor
        self.service = stack.service
        self.anomaly = stack.anomaly
        self.topk = stack.topk
        self.frontend = stack.frontend
        self.pipeline = stack.pipeline
        self.checkpointer = stack.checkpointer
        self.overload = stack.overload

    # -- recovery bookkeeping (lives on the stack so the durability
    # -- metric collectors see updates made through either handle) ----------

    @property
    def recovered_from(self) -> Optional[CheckpointInfo]:
        return self.stack.recovered_from

    @recovered_from.setter
    def recovered_from(self, info: Optional[CheckpointInfo]) -> None:
        self.stack.recovered_from = info

    @property
    def recovery_count(self) -> int:
        return self.stack.recovery_count

    @recovery_count.setter
    def recovery_count(self, count: int) -> None:
        self.stack.recovery_count = count

    @property
    def last_lost_at_crash(self) -> int:
        return self.stack.last_lost_at_crash

    @last_lost_at_crash.setter
    def last_lost_at_crash(self, lost: int) -> None:
        self.stack.last_lost_at_crash = lost

    @property
    def frontend_received(self) -> int:
        return self.stack.frontend_received

    @property
    def frontend_degraded(self) -> int:
        return self.stack.frontend_degraded

    # -- feeding ------------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """The stack's virtual now (whichever tier has seen furthest)."""
        return self.stack.now_ns

    def process_batch(self, batch) -> None:
        """Run one feed batch end to end along the stage graph: NIC →
        workers → MQ → analytics → frontend, then checkpoint if due.

        Every registered stage-boundary crash point is instrumented by
        the stage wrappers; after the batch the rings and queues are
        empty, which is what makes the trailing checkpoint a
        consistent cut.
        """
        self.stack.process_batch(batch)

    def run(self, shutdown_flag=None) -> DrainReport:
        """Feed the whole scenario, then drain gracefully.

        Args:
            shutdown_flag: zero-arg callable checked between batches;
                truthy → stop feeding and drain (the SIGINT/SIGTERM
                path of ``ruru live``).
        """
        batch = []
        for packet in self.stack.packet_stream():
            batch.append(packet)
            if len(batch) >= self.pipeline.feed_batch:
                self.process_batch(batch)
                batch = []
                if shutdown_flag is not None and shutdown_flag():
                    return self.shutdown()
        # The trailing partial batch honours the flag too: a shutdown
        # raised mid-stream must not feed one more burst.
        if batch and (shutdown_flag is None or not shutdown_flag()):
            self.process_batch(batch)
        return self.shutdown()

    # -- graceful drain ------------------------------------------------------

    def shutdown(self) -> DrainReport:
        """The graceful drain protocol, in stage-graph dependency order.

        quiesce NIC → drain rx rings → flush MQ into analytics →
        flush aggregation windows and retry queue into the TSDB →
        flush telemetry → sync the WAL → final clean checkpoint.
        The report's stage list is what the graph traversal actually
        performed, not a hand-maintained copy. A kill mid-drain
        (``drain.mid``) is recoverable like any other crash point: the
        periodic checkpoints still stand.
        """
        started = time.perf_counter()
        retries_before = self.resilience.retries
        stages, final_checkpoint = self.stack.drain()
        return DrainReport(
            ledger=self.service.conservation_ledger(),
            rejected_while_quiesced=self.pipeline.stats.packets_rejected_quiesced,
            retries_drained=self.resilience.retries - retries_before,
            points_written=self.resilience.points_written,
            final_checkpoint=final_checkpoint,
            wal_appends=self.wal.appends,
            duration_s=time.perf_counter() - started,
            stages=stages,
        )

    # -- checkpoint capture/restore -----------------------------------------

    def capture_state(self) -> dict:
        """One JSON-safe snapshot of every stateful tier."""
        return self.stack.capture_state()

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`capture_state` snapshot into this stack."""
        self.stack.load_state(state)
