"""Per-shard checkpoint + WAL namespacing over the PR 3 machinery.

Each shard gets its own corner of the state directory::

    <state_dir>/shards/<shard-name>/ckpt-<seq>-<now>.snap
    <state_dir>/shards/<shard-name>/acks.wal

The parent owns both artifacts (children can die at any instant, the
parent is the durable actor): on a checkpoint cadence it asks the
child for its ``state_dict`` and writes it through the atomic
:class:`~repro.durability.checkpoint.Checkpointer`; between
checkpoints every *acked* batch's counter delta is appended to the
shard's :class:`~repro.durability.wal.WriteAheadLog` (encoded as one
line-protocol point, so the CRC framing, torn-tail tolerance and
batch-id dedup are reused verbatim rather than reimplemented).

Recovery of a crashed shard is the same two-step as the TSDB's:
newest valid checkpoint, then replay of the WAL deltas above its
high-water mark. The restored shard's self-reported ledger then
matches the parent's per-shard accounting exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.durability.checkpoint import Checkpointer, CheckpointInfo
from repro.durability.wal import WriteAheadLog
from repro.tsdb.point import Point

SHARD_STATE_FORMAT = 1
_ACK_MEASUREMENT = "shard_ack"


@dataclass
class ShardRecovery:
    """What a crashed shard restarts from."""

    state: Optional[dict]  # the checkpointed worker state_dict, if any
    deltas: List[dict] = field(default_factory=list)
    last_acked_seq: int = 0
    torn_tail: bool = False

    @property
    def from_checkpoint(self) -> bool:
        return self.state is not None


class ShardStateStore:
    """One shard's durable corner of the state directory."""

    def __init__(
        self,
        state_dir: str,
        shard_name: str,
        keep: int = 2,
        fsync: bool = False,
    ):
        self.shard_name = shard_name
        self.dir = os.path.join(str(state_dir), "shards", shard_name)
        os.makedirs(self.dir, exist_ok=True)
        self._pending_state: dict = {}
        self.checkpointer = Checkpointer(
            state_dir=self.dir,
            capture=lambda: dict(self._pending_state),
            keep=keep,
            fsync=fsync,
        )
        self.wal = WriteAheadLog(os.path.join(self.dir, "acks.wal"), fsync=fsync)
        self.acks_logged = 0

    # -- writing -------------------------------------------------------------

    def append_ack(
        self, seq: int, processed: int, parse_errors: int, records: int
    ) -> None:
        """Log one acked batch's counter delta (WAL batch id = seq)."""
        point = Point(
            measurement=_ACK_MEASUREMENT,
            timestamp_ns=int(seq),
            fields={
                "processed": int(processed),
                "parse_errors": int(parse_errors),
                "records": int(records),
            },
        )
        self.wal.append(int(seq), [point])
        self.acks_logged += 1

    def checkpoint(
        self, worker_state: dict, now_ns: int, last_acked_seq: int
    ) -> CheckpointInfo:
        """Atomically persist *worker_state*, then truncate the WAL.

        The checkpoint records the ack high-water mark it covers, so a
        crash between the write and the truncation replays only deltas
        above the mark — the same stale-WAL dedup the TSDB relies on.
        """
        self._pending_state = {
            "format": SHARD_STATE_FORMAT,
            "shard": {
                "name": self.shard_name,
                "last_acked_seq": int(last_acked_seq),
            },
            "worker": worker_state,
        }
        info = self.checkpointer.checkpoint(int(now_ns))
        self.wal.truncate()
        return info

    def close(self) -> None:
        self.wal.close()

    # -- recovery ------------------------------------------------------------

    def load(self) -> ShardRecovery:
        """Newest valid checkpoint plus the WAL deltas above its mark."""
        found = self.checkpointer.latest_valid()
        if found is None:
            worker_state = None
            high_water = 0
        else:
            _, snapshot = found
            if int(snapshot.get("format", 0)) != SHARD_STATE_FORMAT:
                raise ValueError(
                    f"unsupported shard state format "
                    f"{snapshot.get('format')!r} for {self.shard_name}"
                )
            worker_state = snapshot["worker"]
            high_water = int(snapshot["shard"]["last_acked_seq"])
        replay = self.wal.replay()
        deltas: List[dict] = []
        last_acked = high_water
        for batch_id, points in replay.live_batches(high_water):
            if not points or points[0].measurement != _ACK_MEASUREMENT:
                continue
            fields = points[0].fields
            deltas.append(
                {
                    "seq": int(batch_id),
                    "processed": int(fields["processed"]),
                    "parse_errors": int(fields["parse_errors"]),
                    "records": int(fields["records"]),
                }
            )
            last_acked = max(last_acked, int(batch_id))
        deltas.sort(key=lambda delta: delta["seq"])
        return ShardRecovery(
            state=worker_state,
            deltas=deltas,
            last_acked_seq=last_acked,
            torn_tail=replay.torn_tail,
        )
