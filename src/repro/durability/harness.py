"""Kill-anywhere recovery trials: crash at a named point, recover,
prove the invariants.

One :class:`RecoveryTrial` is the full story of one crash:

1. Materialize the (profile, seed) workload once — the harness plays
   the *network*, which outlives any process.
2. Run a :class:`~repro.durability.runtime.DurableRuntime` with a
   :class:`~repro.faults.crashpoints.CrashSchedule` armed at one
   registered point. The :class:`SimulatedCrash` (a BaseException,
   like the real signal) escapes every handler and "kills" the
   process; the dead runtime object is abandoned, exactly as dead
   memory would be.
3. Build a fresh stack on the same state directory and
   :func:`~repro.durability.recovery.recover_runtime` it, handing over
   the observer's external ingest count.
4. Feed the packets the dead process never received — packets already
   handed over are gone, that loss is the point — then drain
   gracefully.

Invariants asserted per (profile, seed, crash_point):

* the armed crash actually fired at its point;
* the reconciled ledger balances with an explicit, non-negative
  ``lost_at_crash``;
* an immediate second WAL replay applies **zero** batches — the
  batch-id dedup makes replay idempotent, so nothing double-writes;
* after resuming and draining, the extended equation still balances
  over the *whole* trial (observer total vs final counters);
* the resumed run ends in a clean checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.durability.recovery import RecoveryReport, recover_runtime
from repro.durability.runtime import DrainReport, DurableRuntime
from repro.faults.crashpoints import CRASH_POINTS, CrashSchedule, SimulatedCrash
from repro.faults.profiles import FaultProfile
from repro.resilience.invariants import DurabilityLedger

NS_PER_S = 1_000_000_000


@dataclass
class RecoveryTrial:
    """The verdict of one crash → recover → resume → drain cycle."""

    profile: str
    seed: int
    crash_point: str
    hit: int
    crashed: bool
    crash_passes: int
    observed_at_crash: int
    recovery: Optional[RecoveryReport]
    double_replay_applied: int
    final_ledger: Optional[DurabilityLedger]
    final_drain: Optional[DrainReport]

    @property
    def ok(self) -> bool:
        return (
            self.crashed
            and self.recovery is not None
            and self.recovery.ok
            and self.double_replay_applied == 0
            and self.final_ledger is not None
            and self.final_ledger.ok
            and self.final_drain is not None
            and self.final_drain.ok
        )

    @property
    def lost_at_crash(self) -> int:
        return self.recovery.lost_at_crash if self.recovery else 0

    def counts(self) -> Dict[str, int]:
        """Deterministic signature: two same-triple trials must match."""
        assert self.recovery is not None and self.final_ledger is not None
        return {
            "crash_passes": self.crash_passes,
            "observed_at_crash": self.observed_at_crash,
            "lost_at_crash": self.recovery.lost_at_crash,
            "replayed_batches": self.recovery.replayed_batches,
            "replayed_points": self.recovery.replayed_points,
            "duplicates_skipped": self.recovery.duplicates_skipped,
            "expired_dropped": self.recovery.expired_dropped,
            "final_observed": self.final_ledger.observed_ingested,
            "final_processed": self.final_ledger.processed,
            "final_dropped": self.final_ledger.dropped,
            "final_deadlettered": self.final_ledger.deadlettered,
        }

    def render(self) -> str:
        lines = [
            f"recovery trial: profile={self.profile!r} seed={self.seed} "
            f"crash_point={self.crash_point!r} (hit {self.hit})",
            f"  crashed: {self.crashed} "
            f"(boundary crossed {self.crash_passes}x)",
        ]
        if self.recovery is not None:
            lines.extend("  " + line for line in self.recovery.render().splitlines())
        lines.append(
            f"  double-replay applied: {self.double_replay_applied} "
            f"(must be 0 — idempotence)"
        )
        if self.final_ledger is not None:
            lines.append(f"  whole-trial ledger: {self.final_ledger}")
        lines.append("verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


class RecoveryHarness:
    """Runs kill-anywhere trials against one state directory.

    Args:
        state_dir: scratch directory; each trial wipes and reuses it.
        profile / seed: workload + fault identity (the trial triple's
            first two coordinates).
        duration_s / rate / queues: scenario shape — kept small enough
            that a full sweep over every crash point stays fast.
        checkpoint_interval_ns: periodic checkpoint cadence.
        retention_ns: optional TSDB retention, for the
            points-past-retention-at-recovery tests.
    """

    def __init__(
        self,
        state_dir: str,
        profile: Union[str, FaultProfile] = "clean",
        seed: int = 42,
        duration_s: float = 6.0,
        rate: float = 30.0,
        queues: int = 2,
        checkpoint_interval_ns: int = NS_PER_S,
        retention_ns: Optional[int] = None,
    ):
        self.state_dir = str(state_dir)
        self.profile = profile
        self.seed = seed
        self.duration_s = duration_s
        self.rate = rate
        self.queues = queues
        self.checkpoint_interval_ns = checkpoint_interval_ns
        self.retention_ns = retention_ns

    def _make_runtime(self, crash_schedule=None) -> DurableRuntime:
        return DurableRuntime(
            state_dir=self.state_dir,
            profile=self.profile,
            seed=self.seed,
            duration_s=self.duration_s,
            rate=self.rate,
            queues=self.queues,
            checkpoint_interval_ns=self.checkpoint_interval_ns,
            retention_ns=self.retention_ns,
            crash_schedule=crash_schedule,
        )

    def _wipe_state_dir(self) -> None:
        import os
        import shutil

        if os.path.isdir(self.state_dir):
            shutil.rmtree(self.state_dir)
        os.makedirs(self.state_dir, exist_ok=True)

    def run_trial(self, crash_point: str, hit: int = 1) -> RecoveryTrial:
        """One full crash/recover/resume/drain cycle at *crash_point*."""
        if crash_point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {crash_point!r}")
        self._wipe_state_dir()

        # The observer outlives the process — the software analogue of
        # the optical tap's hardware counters.
        observed = {"count": 0}

        def observe() -> None:
            observed["count"] += 1

        schedule = CrashSchedule().arm(crash_point, hit=hit)
        victim = self._make_runtime(crash_schedule=schedule)
        victim.service.ingest_observer = observe

        # The network: materialized once, consumed exactly once.
        packets = list(
            victim.injector.packet_stream(victim.generator.packets())
        )
        feed_batch = victim.pipeline.feed_batch
        batches = [
            packets[i : i + feed_batch]
            for i in range(0, len(packets), feed_batch)
        ]

        crashed = False
        fed = 0
        try:
            for batch in batches:
                fed += 1  # handed to the process — gone if it dies now
                victim.process_batch(batch)
            victim.shutdown()
        except SimulatedCrash:
            crashed = True
        crash_passes = schedule.passes.get(crash_point, 0)
        observed_at_crash = observed["count"]
        del victim  # dead memory

        if not crashed:
            return RecoveryTrial(
                profile=str(getattr(self.profile, "name", self.profile)),
                seed=self.seed,
                crash_point=crash_point,
                hit=hit,
                crashed=False,
                crash_passes=crash_passes,
                observed_at_crash=observed_at_crash,
                recovery=None,
                double_replay_applied=0,
                final_ledger=None,
                final_drain=None,
            )

        # The restarted process: same directory, fresh everything else.
        survivor = self._make_runtime()
        survivor.service.ingest_observer = observe
        recovery = recover_runtime(survivor, observed_ingested=observed_at_crash)

        # Idempotence probe: replaying the same WAL again must apply
        # nothing — every batch is now at or below the high-water mark.
        applied_before = survivor.tsdb.replayed_batches
        survivor.tsdb.replay_wal(now_ns=survivor.now_ns)
        double_replay_applied = survivor.tsdb.replayed_batches - applied_before

        for batch in batches[fed:]:
            survivor.process_batch(batch)
        final_drain = survivor.shutdown()

        final_ledger = DurabilityLedger(
            observed_ingested=observed["count"],
            processed=final_drain.ledger.processed,
            dropped=final_drain.ledger.dropped,
            deadlettered=final_drain.ledger.deadlettered,
            lost_at_crash=recovery.lost_at_crash,
        )
        return RecoveryTrial(
            profile=str(getattr(self.profile, "name", self.profile)),
            seed=self.seed,
            crash_point=crash_point,
            hit=hit,
            crashed=True,
            crash_passes=crash_passes,
            observed_at_crash=observed_at_crash,
            recovery=recovery,
            double_replay_applied=double_replay_applied,
            final_ledger=final_ledger,
            final_drain=final_drain,
        )

    def sweep(self, hit: int = 1) -> Dict[str, RecoveryTrial]:
        """One trial per registered crash point."""
        return {
            point: self.run_trial(point, hit=hit) for point in CRASH_POINTS
        }


def run_recovery_trial(
    state_dir: str,
    crash_point: str,
    profile: Union[str, FaultProfile] = "clean",
    seed: int = 42,
    hit: int = 1,
    **kwargs,
) -> RecoveryTrial:
    """One-call trial (what the CLI smoke and CI use)."""
    harness = RecoveryHarness(
        state_dir=state_dir, profile=profile, seed=seed, **kwargs
    )
    return harness.run_trial(crash_point, hit=hit)
