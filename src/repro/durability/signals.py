"""SIGINT/SIGTERM → graceful drain, for the long-running CLI commands.

``ruru live`` and ``ruru chaos`` run until the workload ends or the
operator stops them. A kill -9 is what the recovery machinery exists
for; a polite SIGINT/SIGTERM deserves better — finish the batch in
hand, run the full drain protocol, and leave a clean checkpoint.

:class:`GracefulShutdown` is the smallest thing that does this: a
context manager that installs flag-setting handlers (the handler does
nothing but set a flag — no I/O, no raising out of arbitrary stack
frames) and restores the previous handlers on exit. The run loop polls
:meth:`requested` between batches. A second signal while draining
falls through to the previous handler, so a stuck drain can still be
interrupted the ordinary way.
"""

from __future__ import annotations

import signal
from typing import List, Optional, Tuple


class GracefulShutdown:
    """Flag-setting SIGINT/SIGTERM trap, scoped to a ``with`` block."""

    def __init__(self, signals: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)):
        self.signals = signals
        self._requested_by: Optional[int] = None
        self._previous: List[Tuple[int, object]] = []

    def _handle(self, signum, frame) -> None:
        if self._requested_by is not None:
            # Second signal: the operator means it. Re-raise through
            # the original disposition (usually KeyboardInterrupt).
            previous = dict(self._previous).get(signum)
            if callable(previous):
                previous(signum, frame)
                return
            raise KeyboardInterrupt
        self._requested_by = signum

    def __enter__(self) -> "GracefulShutdown":
        self._previous = [
            (signum, signal.getsignal(signum)) for signum in self.signals
        ]
        for signum in self.signals:
            signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous:
            signal.signal(signum, previous)
        self._previous = []

    def requested(self) -> bool:
        """Has a shutdown signal arrived? (The run loop's flag poll.)"""
        return self._requested_by is not None

    @property
    def signal_name(self) -> Optional[str]:
        if self._requested_by is None:
            return None
        try:
            return signal.Signals(self._requested_by).name
        except ValueError:
            return str(self._requested_by)
