"""``repro.durability`` — crash-safe state for the whole pipeline.

The paper's value proposition is *continuous* monitoring: the firewall
anomaly was caught because Ruru was up during a nightly maintenance
window — exactly when operational restarts happen. PR 2 made the
pipeline degrade gracefully while the process lives; this subsystem
makes a ``kill -9`` at any point recoverable with bounded,
accounted-for loss:

* :mod:`~repro.durability.codec` — the versioned, checksummed snapshot
  envelope. Truncated or corrupted snapshots fail as a typed
  :class:`SnapshotError`; partial state is never loaded.
* :mod:`~repro.durability.wal` — a write-ahead log in front of
  :mod:`repro.tsdb.storage` with monotonic batch ids, so restored runs
  never double-write points.
* :mod:`~repro.durability.checkpoint` — the periodic checkpointer (on
  the virtual clock) persisting flow tables, aggregators, anomaly
  baselines, the resilience ledger and the DLQ; atomic writes, with
  fallback to the newest *valid* checkpoint on corruption.
* :mod:`~repro.durability.runtime` — :class:`DurableRuntime`, the
  assembled stack with graceful drain and ``ruru_checkpoint_*`` /
  ``ruru_wal_*`` / ``ruru_recovery_*`` metrics.
* :mod:`~repro.durability.recovery` — hot restart: load the latest
  valid checkpoint, replay the WAL idempotently, reconcile the ledger
  with an explicit ``lost_at_crash`` term, resume.
* :mod:`~repro.durability.harness` — the kill-anywhere recovery
  harness: deterministic crash points at every stage boundary,
  post-recovery invariants per (profile, seed, crash point).
"""

from __future__ import annotations

from repro.durability.checkpoint import CheckpointInfo, Checkpointer
from repro.durability.codec import SnapshotError, decode_snapshot, encode_snapshot
from repro.durability.harness import RecoveryHarness, RecoveryTrial, run_recovery_trial
from repro.durability.recovery import RecoveryReport, recover_runtime
from repro.durability.runtime import DrainReport, DurableRuntime
from repro.durability.signals import GracefulShutdown
from repro.durability.wal import DurableTsdb, WalError, WriteAheadLog

__all__ = [
    "CheckpointInfo",
    "Checkpointer",
    "DrainReport",
    "DurableRuntime",
    "DurableTsdb",
    "GracefulShutdown",
    "RecoveryHarness",
    "RecoveryReport",
    "RecoveryTrial",
    "SnapshotError",
    "WalError",
    "WriteAheadLog",
    "decode_snapshot",
    "encode_snapshot",
    "recover_runtime",
    "run_recovery_trial",
]
