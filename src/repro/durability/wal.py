"""Write-ahead log in front of the TSDB, with idempotent replay.

The measurement store is in-memory; a kill -9 takes every point with
it. Durability therefore comes from two artifacts on disk: the
periodic checkpoint (a full dump plus the WAL high-water mark it
covers) and this log, which records every write batch *before* the
store applies it. Recovery = load checkpoint, then re-apply exactly
the WAL batches the checkpoint has not seen.

Exactly-once is an accounting argument, not a hope:

* every batch carries a **monotonic batch id** assigned by
  :class:`DurableTsdb`;
* the checkpoint records ``last_applied_batch_id``;
* replay applies only ids *above* that mark and counts the rest as
  ``duplicates_skipped`` — a batch can never land twice;
* a write the store *rejected* (fault-injected outage) appends an
  **abort record** for its id, so replay does not resurrect batches
  the retry machinery re-submitted under a later id.

Torn tails are expected, not fatal: a crash mid-append leaves a
partial frame at the end of the file. Replay verifies each frame's
CRC and stops cleanly at the first damaged one — the torn frame's
batch never reached the store either, so stopping is correct.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterable, List, Optional, Tuple

from repro.tsdb.line_protocol import format_point, parse_line
from repro.tsdb.point import Point

WAL_MAGIC = b"RWAL"
_RECORD_DATA = 0
_RECORD_ABORT = 1
# magic | type(1) | batch_id(8) | payload_len(4) | crc32(4)
_FRAME = struct.Struct("!4sBQII")


class WalError(ValueError):
    """The log is unusable (not a torn tail — structural damage)."""


class WriteAheadLog:
    """Framed, CRC-guarded append log of point batches.

    Args:
        path: backing file; created on first append.
        fsync: call ``os.fsync`` after every append. The recovery
            tests simulate crashes in-process, where a flush suffices;
            real deployments pay the fsync.
    """

    def __init__(self, path: str, fsync: bool = False):
        self.path = str(path)
        self.fsync = fsync
        self._file = None
        self.appends = 0
        self.aborts = 0

    # -- writing ------------------------------------------------------------

    def _handle(self):
        if self._file is None:
            self._file = open(self.path, "ab")
        return self._file

    def _append_frame(self, record_type: int, batch_id: int, payload: bytes) -> None:
        frame = _FRAME.pack(
            WAL_MAGIC, record_type, batch_id, len(payload), zlib.crc32(payload)
        )
        handle = self._handle()
        handle.write(frame + payload)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def append(self, batch_id: int, points: Iterable[Point]) -> int:
        """Log one batch before the store sees it; returns bytes written."""
        return self.append_lines(batch_id, [format_point(p) for p in points])

    def append_lines(self, batch_id: int, lines: List[str]) -> int:
        """Like :meth:`append`, for points already in line protocol —
        lets the caller format each point exactly once and reuse the
        lines for its checkpoint cache."""
        payload = "\n".join(lines).encode("utf-8")
        self._append_frame(_RECORD_DATA, batch_id, payload)
        self.appends += 1
        return _FRAME.size + len(payload)

    def append_abort(self, batch_id: int) -> None:
        """Compensation record: the store rejected this batch, so a
        later replay must not apply it (the retry queue owns it now)."""
        self._append_frame(_RECORD_ABORT, batch_id, b"")
        self.aborts += 1

    def sync(self) -> None:
        """Flush (and fsync) any buffered frames — the drain path."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def truncate(self) -> None:
        """Drop every frame — called once a checkpoint covers them."""
        self.close()
        with open(self.path, "wb"):
            pass

    # -- replay -------------------------------------------------------------

    def replay(self) -> "WalReplay":
        """Read the log back; tolerant of exactly one torn tail frame."""
        batches: List[Tuple[int, List[Point]]] = []
        aborted = set()
        torn_tail = False
        if not os.path.exists(self.path):
            return WalReplay(batches=[], aborted_ids=set(), torn_tail=False)
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset < len(data):
            header = data[offset : offset + _FRAME.size]
            if len(header) < _FRAME.size:
                torn_tail = True
                break
            magic, record_type, batch_id, length, crc = _FRAME.unpack(header)
            if magic != WAL_MAGIC:
                raise WalError(
                    f"bad frame magic at offset {offset}: {magic!r}"
                )
            payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn_tail = True
                break
            if record_type == _RECORD_ABORT:
                aborted.add(batch_id)
            elif record_type == _RECORD_DATA:
                points = [
                    parse_line(line)
                    for line in payload.decode("utf-8").splitlines()
                    if line
                ]
                batches.append((batch_id, points))
            else:
                raise WalError(f"unknown record type {record_type}")
            offset += _FRAME.size + length
        return WalReplay(batches=batches, aborted_ids=aborted, torn_tail=torn_tail)


class WalReplay:
    """The decoded contents of one log, ready to re-apply."""

    def __init__(
        self,
        batches: List[Tuple[int, List[Point]]],
        aborted_ids: set,
        torn_tail: bool,
    ):
        self.batches = batches
        self.aborted_ids = aborted_ids
        self.torn_tail = torn_tail

    @property
    def max_batch_id(self) -> int:
        ids = [batch_id for batch_id, _ in self.batches]
        ids.extend(self.aborted_ids)
        return max(ids, default=0)

    def live_batches(self, after_batch_id: int) -> List[Tuple[int, List[Point]]]:
        """Batches that must re-apply: above the checkpoint's high-water
        mark and never aborted."""
        return [
            (batch_id, points)
            for batch_id, points in self.batches
            if batch_id > after_batch_id and batch_id not in self.aborted_ids
        ]


class DurableTsdb:
    """TSDB wrapper: every batch goes through the WAL first.

    Drop-in where a ``TimeSeriesDatabase`` (or a flaky wrapper around
    one) is expected — reads and queries delegate untouched; only
    ``write``/``write_batch`` gain the log-then-apply discipline and
    the monotonic batch ids that make replay idempotent.
    """

    def __init__(self, inner, wal: WriteAheadLog, crash_schedule=None):
        self.inner = inner
        self.wal = wal
        self.crash_schedule = crash_schedule
        self.next_batch_id = 1
        self.last_applied_batch_id = 0
        self.duplicates_skipped = 0
        self.wal_bytes = 0
        self.replayed_batches = 0
        self.replayed_points = 0
        self.expired_dropped = 0
        # Line-protocol mirror of every applied point, maintained
        # incrementally so checkpoints serialize it without re-walking
        # (and re-formatting) the whole store each second. Each point
        # is formatted exactly once, shared with its WAL frame.
        self.applied_lines: List[str] = []

    def _reached(self, point: str) -> None:
        if self.crash_schedule is not None:
            self.crash_schedule.reached(point)

    def write(self, point: Point) -> None:
        self.write_batch([point])

    def write_batch(self, points) -> int:
        points = list(points)
        if not points:
            return 0
        batch_id = self.next_batch_id
        lines = [format_point(p) for p in points]
        self._reached("tsdb.wal.pre")
        self.wal_bytes += self.wal.append_lines(batch_id, lines)
        self.next_batch_id = batch_id + 1
        self._reached("tsdb.wal.post")
        try:
            count = self.inner.write_batch(points)
        except BaseException:
            # The store rejected the batch (fault injection) or the
            # process is crashing. Either way the logged intent must
            # not replay: on rejection the retry queue re-submits the
            # points under a fresh id; on a crash the abort never hits
            # the disk and replay correctly applies the batch.
            self.wal.append_abort(batch_id)
            raise
        self.last_applied_batch_id = batch_id
        self.applied_lines.extend(lines)
        self._reached("tsdb.applied")
        return count

    # -- recovery -----------------------------------------------------------

    def replay_wal(self, now_ns: Optional[int] = None) -> "WalReplay":
        """Re-apply logged batches the checkpoint has not covered.

        Batches at or below ``last_applied_batch_id`` (restored from
        the checkpoint) are counted as duplicates and skipped — the
        no-double-write guarantee. With *now_ns* given, retention
        policies run afterwards so points already past retention are
        dropped instead of resurrected, and the drop is counted.
        """
        replay = self.wal.replay()
        for batch_id, points in replay.batches:
            if batch_id <= self.last_applied_batch_id:
                self.duplicates_skipped += 1
        for batch_id, points in replay.live_batches(self.last_applied_batch_id):
            self.inner.write_batch(points)
            self.applied_lines.extend(format_point(p) for p in points)
            self.replayed_batches += 1
            self.replayed_points += len(points)
            self.last_applied_batch_id = batch_id
        self.next_batch_id = max(self.next_batch_id, replay.max_batch_id + 1)
        if now_ns is not None:
            self.expired_dropped += self.enforce_retention(now_ns)
        return replay

    def load_lines(self, lines) -> int:
        """Restore the store from checkpointed line protocol, bypassing
        the WAL (these points are already durable in the checkpoint)."""
        lines = list(lines)
        count = self.inner.load_lines(lines)
        self.applied_lines = lines
        return count

    def enforce_retention(self, now_ns: int) -> int:
        """Run the inner store's retention, keeping the line cache in
        step. When every policy is store-wide the cache is pruned by
        each line's trailing timestamp (same ``ts >= cutoff`` rule as
        ``Series.truncate_before``); measurement-scoped policies fall
        back to a full re-dump."""
        dropped = self.inner.enforce_retention(now_ns)
        if dropped:
            policies = getattr(self.inner, "retention_policies", [])
            if policies and all(p.measurement is None for p in policies):
                cutoff = now_ns - min(p.duration_ns for p in policies)
                self.applied_lines = [
                    line
                    for line in self.applied_lines
                    if int(line.rsplit(" ", 1)[1]) >= cutoff
                ]
            else:
                self.applied_lines = list(self.inner.dump_lines())
        return dropped

    # -- durability ---------------------------------------------------------

    def state_dict(self) -> dict:
        """The wrapper's own counters for the checkpoint (the inner
        store's contents are dumped separately, as line protocol)."""
        return {
            "next_batch_id": self.next_batch_id,
            "last_applied_batch_id": self.last_applied_batch_id,
            "duplicates_skipped": self.duplicates_skipped,
            "wal_bytes": self.wal_bytes,
        }

    def load_state(self, state: dict) -> None:
        self.next_batch_id = int(state["next_batch_id"])
        self.last_applied_batch_id = int(state["last_applied_batch_id"])
        self.duplicates_skipped = int(state["duplicates_skipped"])
        self.wal_bytes = int(state["wal_bytes"])

    def __getattr__(self, name):
        return getattr(self.inner, name)
