"""Hot restart: checkpoint load, WAL replay, ledger reconciliation.

``ruru recover`` and the kill-anywhere harness both come through
:func:`recover_runtime`. Given a freshly built
:class:`~repro.durability.runtime.DurableRuntime` pointed at a state
directory the dead process left behind, it

1. finds the newest checkpoint that decodes cleanly (torn or
   bit-flipped files are skipped, falling back to the previous one);
2. restores every tier's state from it — or cold-starts if nothing
   valid survives;
3. replays the WAL idempotently: batches the checkpoint already
   covers are skipped by batch-id dedup, aborted batches never apply,
   a torn tail stops replay cleanly, and replayed points already past
   retention are dropped, not resurrected;
4. reconciles the ledger. With the outside observer's ingest count
   (the harness's stand-in for the tap's hardware counters) the loss
   window is explicit::

       lost_at_crash = observed_ingested - checkpoint.ingested

   and the extended conservation equation must balance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.durability.checkpoint import CheckpointInfo
from repro.resilience.invariants import ConservationLedger, DurabilityLedger


@dataclass
class RecoveryReport:
    """Everything one recovery decided and re-applied."""

    checkpoint: Optional[CheckpointInfo]
    clean_shutdown: bool
    cold_start: bool
    corrupt_skipped: int
    recovered_now_ns: int
    replayed_batches: int
    replayed_points: int
    duplicates_skipped: int
    torn_tail: bool
    expired_dropped: int
    ledger: ConservationLedger
    durability_ledger: Optional[DurabilityLedger]
    duration_s: float

    @property
    def ok(self) -> bool:
        """Recovered with every record accounted for."""
        if self.durability_ledger is not None:
            return self.durability_ledger.ok
        return self.ledger.ok

    @property
    def lost_at_crash(self) -> int:
        if self.durability_ledger is None:
            return 0
        return self.durability_ledger.lost_at_crash

    def render(self) -> str:
        lines = ["recovery report:"]
        if self.cold_start:
            lines.append("  no usable checkpoint — cold start")
        else:
            assert self.checkpoint is not None
            lines.append(
                f"  checkpoint: seq={self.checkpoint.seq} "
                f"t={self.checkpoint.now_ns / 1e9:.3f}s "
                f"{self.checkpoint.size_bytes} bytes "
                f"({'clean shutdown' if self.clean_shutdown else 'crash'})"
            )
        if self.corrupt_skipped:
            lines.append(f"  damaged checkpoints skipped: {self.corrupt_skipped}")
        lines.append(
            f"  wal replay: {self.replayed_batches} batches "
            f"({self.replayed_points} points) re-applied, "
            f"{self.duplicates_skipped} duplicates skipped"
            + (", torn tail tolerated" if self.torn_tail else "")
        )
        if self.expired_dropped:
            lines.append(
                f"  retention at recovery: {self.expired_dropped} "
                f"expired points dropped, not resurrected"
            )
        if self.durability_ledger is not None:
            lines.append(f"  reconciliation: {self.durability_ledger}")
        else:
            lines.append(f"  checkpoint ledger: {self.ledger}")
        lines.append(f"  recovered in {self.duration_s * 1e3:.1f} ms")
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def recover_runtime(runtime, observed_ingested: Optional[int] = None) -> RecoveryReport:
    """Recover *runtime* from its state directory.

    Args:
        runtime: a freshly constructed
            :class:`~repro.durability.runtime.DurableRuntime` bound to
            the directory the previous process used. Its state is
            replaced in place.
        observed_ingested: the outside observer's count of records that
            entered the analytics tier before the kill. When given,
            the report carries the reconciled
            :class:`~repro.resilience.DurabilityLedger` with its
            explicit ``lost_at_crash``.
    """
    started = time.perf_counter()
    found = runtime.checkpointer.latest_valid()
    cold_start = found is None
    clean = False
    info: Optional[CheckpointInfo] = None
    if found is not None:
        info, state = found
        clean = bool(state.get("checkpoint", {}).get("clean", False))
        runtime.load_state(state)
        runtime.recovered_from = info

    # Replay what the checkpoint has not covered. Retention runs at
    # the recovered clock so aged-out points stay gone.
    replay = runtime.tsdb.replay_wal(now_ns=runtime.now_ns)

    ledger = runtime.service.conservation_ledger()
    durability_ledger = None
    if observed_ingested is not None:
        durability_ledger = DurabilityLedger.from_checkpoint(
            observed_ingested, ledger
        )
        runtime.last_lost_at_crash = durability_ledger.lost_at_crash
    runtime.recovery_count += 1

    return RecoveryReport(
        checkpoint=info,
        clean_shutdown=clean,
        cold_start=cold_start,
        corrupt_skipped=runtime.checkpointer.corrupt_skipped,
        recovered_now_ns=runtime.now_ns,
        replayed_batches=runtime.tsdb.replayed_batches,
        replayed_points=runtime.tsdb.replayed_points,
        duplicates_skipped=runtime.tsdb.duplicates_skipped,
        torn_tail=replay.torn_tail,
        expired_dropped=runtime.tsdb.expired_dropped,
        ledger=ledger,
        durability_ledger=durability_ledger,
        duration_s=time.perf_counter() - started,
    )
