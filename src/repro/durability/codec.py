"""The snapshot envelope: versioned, length-framed, checksummed.

A checkpoint that can be half-read is worse than no checkpoint — a
recovery that loads partial flow-table state silently violates the
count-conservation ledger it exists to protect. The envelope makes the
failure mode binary: :func:`decode_snapshot` either returns the exact
dictionary :func:`encode_snapshot` was given, or raises
:class:`SnapshotError`. Never a subset, never a leaked
``json.JSONDecodeError`` or ``struct.error``.

Layout::

    MAGIC(8) | version(1) | payload_len(4, BE) | crc32(4, BE) | payload

The payload is UTF-8 JSON (every component contributes a plain-dict
``state_dict()``; raw bytes such as DLQ payloads are base64'd by their
owners). The CRC covers the payload, so any truncation or bit flip —
the failure modes a ``kill -9`` mid-write or a corrupting disk
produce — fails closed.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict

SNAPSHOT_MAGIC = b"RURUSNAP"
SNAPSHOT_VERSION = 1

_HEADER = struct.Struct("!8sBII")  # magic, version, payload_len, crc32


class SnapshotError(ValueError):
    """A snapshot failed to decode: wrong magic/version, truncation,
    checksum mismatch, or malformed payload. The caller must treat the
    snapshot as absent — partial state is never returned."""


def encode_snapshot(state: Dict[str, Any]) -> bytes:
    """Serialize a snapshot dictionary into the framed envelope."""
    try:
        payload = json.dumps(
            state, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"state is not snapshot-serializable: {exc}") from exc
    header = _HEADER.pack(
        SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(payload), zlib.crc32(payload)
    )
    return header + payload


def decode_snapshot(data: bytes) -> Dict[str, Any]:
    """Parse an envelope back into the snapshot dictionary.

    Raises :class:`SnapshotError` on any damage; never returns partial
    state.
    """
    if len(data) < _HEADER.size:
        raise SnapshotError(
            f"snapshot too short: {len(data)} < {_HEADER.size} header bytes"
        )
    magic, version, payload_len, crc = _HEADER.unpack_from(data, 0)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"bad snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(f"unknown snapshot version {version}")
    payload = data[_HEADER.size:]
    if len(payload) != payload_len:
        raise SnapshotError(
            f"snapshot payload length {len(payload)} != framed {payload_len}"
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotError("snapshot checksum mismatch")
    try:
        state = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # Reachable only on a CRC collision; still fail typed.
        raise SnapshotError(f"snapshot payload undecodable: {exc}") from exc
    if not isinstance(state, dict):
        raise SnapshotError(
            f"snapshot payload is {type(state).__name__}, expected object"
        )
    return state
