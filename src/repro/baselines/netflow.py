"""NetFlow-style flow accounting — the "conventional tool" baseline.

The paper's motivation names NetFlow among the tools that "only
provide aggregate statistics of network traffic over relatively long
timescales". To make that claim measurable, this module implements
the relevant half of a NetFlow v5-shaped exporter: per-flow records
keyed by the 5-tuple, byte/packet counters, first/last timestamps,
TCP flag accumulation, and the active/inactive timeouts that chop
long flows into records.

What a NetFlow record *cannot* contain is the point: there is no
latency field. The E4 comparison runs this exporter over the firewall-
glitch trace and shows its 5-minute octet/flow aggregates are blind
to a 4000 ms handshake delay that Ruru pinpoints per flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.parser import ParsedPacket

NS_PER_S = 1_000_000_000

FlowTuple = Tuple[int, int, int, int, int]  # src, dst, sport, dport, proto


@dataclass
class NetflowRecord:
    """One exported flow record (v5-shaped fields)."""

    key: FlowTuple
    first_ns: int
    last_ns: int
    packets: int = 0
    octets: int = 0
    tcp_flags: int = 0

    @property
    def duration_ns(self) -> int:
        return self.last_ns - self.first_ns


class NetflowExporter:
    """Flow cache with active/inactive timeout expiry.

    Args:
        active_timeout_ns: flows longer than this are exported and
            restarted (default 30 min, Cisco's default).
        inactive_timeout_ns: flows idle this long are exported
            (default 15 s).
    """

    def __init__(
        self,
        active_timeout_ns: int = 1800 * NS_PER_S,
        inactive_timeout_ns: int = 15 * NS_PER_S,
    ):
        if active_timeout_ns <= 0 or inactive_timeout_ns <= 0:
            raise ValueError("timeouts must be positive")
        self.active_timeout_ns = active_timeout_ns
        self.inactive_timeout_ns = inactive_timeout_ns
        self._cache: Dict[FlowTuple, NetflowRecord] = {}
        self.exported: List[NetflowRecord] = []
        self.packets_seen = 0
        # Expiry is swept periodically (as real exporters do), not per
        # packet — a full-cache scan per packet would be O(n²).
        self._sweep_interval_ns = max(
            min(inactive_timeout_ns, active_timeout_ns) // 4, 1
        )
        self._last_sweep_ns = 0

    def on_packet(self, packet: ParsedPacket) -> None:
        """Account one packet (directional key, as NetFlow does)."""
        self.packets_seen += 1
        now = packet.timestamp_ns
        if now - self._last_sweep_ns >= self._sweep_interval_ns:
            self._expire(now)
            self._last_sweep_ns = now
        key: FlowTuple = (
            packet.src_ip, packet.dst_ip, packet.src_port, packet.dst_port, 6
        )
        record = self._cache.get(key)
        if record is None:
            record = NetflowRecord(key=key, first_ns=now, last_ns=now)
            self._cache[key] = record
        record.packets += 1
        record.octets += packet.payload_len + 40  # headers approximated
        record.last_ns = max(record.last_ns, now)
        record.tcp_flags |= packet.flags
        if packet.is_rst or packet.is_fin:
            # TCP teardown exports immediately, per v5 behaviour.
            self.exported.append(self._cache.pop(key))

    def _expire(self, now_ns: int) -> None:
        stale = [
            key for key, record in self._cache.items()
            if now_ns - record.last_ns > self.inactive_timeout_ns
            or now_ns - record.first_ns > self.active_timeout_ns
        ]
        for key in stale:
            self.exported.append(self._cache.pop(key))

    def flush(self) -> List[NetflowRecord]:
        """End of stream: export everything still cached."""
        self.exported.extend(self._cache.values())
        self._cache.clear()
        return self.exported

    def run(self, packets: Iterable[ParsedPacket]) -> List[NetflowRecord]:
        """Process a whole stream and return all records."""
        for packet in packets:
            self.on_packet(packet)
        return self.flush()

    # -- the aggregate views operators actually look at -------------------

    def aggregate(
        self, interval_ns: int = 300 * NS_PER_S
    ) -> Dict[int, Dict[str, float]]:
        """Octets/packets/flows per interval — the 5-minute graphs.

        This is the entire visibility NetFlow gives an operator, and
        the structure of the paper's claim: nothing here moves when a
        handshake takes 4 seconds longer.
        """
        out: Dict[int, Dict[str, float]] = {}
        for record in self.exported:
            window = (record.first_ns // interval_ns) * interval_ns
            cell = out.setdefault(
                window, {"octets": 0.0, "packets": 0.0, "flows": 0.0}
            )
            cell["octets"] += record.octets
            cell["packets"] += record.packets
            cell["flows"] += 1
        return out

    def latency_visibility(self) -> Optional[float]:
        """What NetFlow knows about latency: nothing.

        Kept as an explicit, documented None — the comparison benches
        call it so the contrast is in the code, not just prose.
        """
        return None
