"""pping-style passive RTT estimation from TCP timestamps.

Pollere's *pping* matches the RFC 7323 timestamp echo: when a packet
carries TSval *v*, remember when it passed the tap; when a packet in
the opposite direction echoes TSecr == *v*, the elapsed tap time is
one RTT sample *for that direction's far side*. Unlike Ruru's
handshake method (exactly one internal+external sample per flow, at
connection start), pping keeps sampling for as long as a flow carries
timestamps — at the price of tracking every packet and holding TSval
state per flow.

This implementation follows pping's core rules: only the first
occurrence of a TSval is recorded (retransmits must not shrink RTT),
pure ACKs do not create TSval entries (their echo would measure the
application's think time, not the path), and state ages out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.flow_table import canonical_flow_key
from repro.net.parser import ParsedPacket

NS_PER_S = 1_000_000_000

# (canonical flow key, direction flag, tsval)
_TsKey = Tuple[tuple, bool, int]


@dataclass(frozen=True)
class RttSample:
    """One passive RTT sample.

    ``toward_src`` True means the RTT covers tap↔(the packet's
    source side) — i.e. the echo came back from that side.
    """

    flow_key: tuple
    timestamp_ns: int
    rtt_ns: int
    toward_src: bool

    @property
    def rtt_ms(self) -> float:
        return self.rtt_ns / 1e6


class PpingEstimator:
    """Streaming TSval/TSecr matcher."""

    def __init__(self, state_timeout_ns: int = 60 * NS_PER_S, max_entries: int = 1 << 20):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.state_timeout_ns = state_timeout_ns
        self.max_entries = max_entries
        self._first_seen: Dict[_TsKey, int] = {}
        self.samples: List[RttSample] = []
        self.packets_seen = 0
        self.entries_expired = 0

    def on_packet(self, packet: ParsedPacket) -> Optional[RttSample]:
        """Feed one parsed packet; returns a sample when an echo matches."""
        self.packets_seen += 1
        if packet.tsval is None:
            return None
        key = canonical_flow_key(
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port,
            packet.is_ipv6,
        )
        # Direction flag: True when the packet travels key-forward
        # (its source is the key's first endpoint).
        forward = (packet.src_ip, packet.src_port) == (key[0], key[1])

        sample: Optional[RttSample] = None
        if packet.tsecr:
            # This packet echoes the *other* direction's TSval.
            match_key = (key, not forward, packet.tsecr)
            sent_ns = self._first_seen.pop(match_key, None)
            if sent_ns is not None:
                rtt_ns = packet.timestamp_ns - sent_ns
                if rtt_ns >= 0:
                    sample = RttSample(
                        flow_key=key,
                        timestamp_ns=packet.timestamp_ns,
                        rtt_ns=rtt_ns,
                        toward_src=True,
                    )
                    self.samples.append(sample)

        # Record this packet's TSval (first occurrence only; pure ACKs
        # excluded — their echo time includes receiver delay).
        carries_data = packet.payload_len > 0 or (packet.flags & 0x02)  # data or SYN
        if carries_data:
            ts_key = (key, forward, packet.tsval)
            if ts_key not in self._first_seen:
                if len(self._first_seen) >= self.max_entries:
                    self._expire(packet.timestamp_ns)
                self._first_seen[ts_key] = packet.timestamp_ns
        return sample

    def _expire(self, now_ns: int) -> None:
        cutoff = now_ns - self.state_timeout_ns
        stale = [key for key, seen in self._first_seen.items() if seen < cutoff]
        for key in stale:
            del self._first_seen[key]
        self.entries_expired += len(stale)
        if not stale and self._first_seen:
            # Nothing stale but table full: drop the oldest entry.
            oldest = min(self._first_seen.items(), key=lambda item: item[1])[0]
            del self._first_seen[oldest]
            self.entries_expired += 1

    def run(self, packets: Iterable[ParsedPacket]) -> List[RttSample]:
        """Convenience: feed a whole stream, return all samples."""
        for packet in packets:
            self.on_packet(packet)
        return self.samples

    def samples_per_flow(self) -> Dict[tuple, int]:
        """Sample counts keyed by flow (E9's density comparison)."""
        counts: Dict[tuple, int] = {}
        for sample in self.samples:
            counts[sample.flow_key] = counts.get(sample.flow_key, 0) + 1
        return counts
