"""Active probing (PerfSONAR-style) — the other "conventional tool".

PerfSONAR and ping-mesh monitoring measure latency by *sending
probes on a schedule* — typically one measurement a minute per path.
A latency event is only seen if a probe happens to fall inside it.
The firewall glitch lasted ~60 s once a night; this module makes the
paper's "had not been noticed by conventional measurement tools"
claim quantitative: the probability a periodic prober catches an
event window, and what a simulated probe timeline actually records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

NS_PER_S = 1_000_000_000

# A latency function: virtual time -> the RTT a probe sent then would see.
LatencyModel = Callable[[int], float]


@dataclass(frozen=True)
class ProbeSample:
    """One active measurement."""

    sent_ns: int
    rtt_ms: float


@dataclass
class ActiveProber:
    """A periodic one-probe-at-a-time monitor.

    Attributes:
        period_ns: probe interval (PerfSONAR OWAMP/ping defaults are
            O(one per minute) per path).
        jitter_ns: uniform scheduling jitter around each slot.
        seed: drives jitter and probe phase.
    """

    period_ns: int = 60 * NS_PER_S
    jitter_ns: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.period_ns <= 0:
            raise ValueError("period must be positive")
        if self.jitter_ns < 0 or self.jitter_ns * 2 > self.period_ns:
            raise ValueError("jitter must be within [0, period/2]")

    def probe_times(self, start_ns: int, end_ns: int) -> List[int]:
        """The probe schedule over [start, end)."""
        rng = random.Random(self.seed)
        phase = rng.randint(0, self.period_ns - 1)
        times = []
        t = start_ns + phase
        while t < end_ns:
            jitter = rng.randint(-self.jitter_ns, self.jitter_ns) if self.jitter_ns else 0
            sample_at = min(max(start_ns, t + jitter), end_ns - 1)
            times.append(sample_at)
            t += self.period_ns
        return times

    def run(
        self, model: LatencyModel, start_ns: int, end_ns: int
    ) -> List[ProbeSample]:
        """Sample *model* at the probe schedule."""
        return [
            ProbeSample(sent_ns=t, rtt_ms=model(t))
            for t in self.probe_times(start_ns, end_ns)
        ]

    def detects(
        self,
        samples: List[ProbeSample],
        baseline_ms: float,
        threshold_ratio: float = 3.0,
    ) -> bool:
        """Would a simple threshold alert fire on these samples?"""
        return any(s.rtt_ms > baseline_ms * threshold_ratio for s in samples)


def glitch_model(
    baseline_ms: float,
    glitch_start_ns: int,
    glitch_ns: int,
    glitch_extra_ms: float,
) -> LatencyModel:
    """A latency timeline with one elevated window."""

    def model(t_ns: int) -> float:
        if glitch_start_ns <= t_ns < glitch_start_ns + glitch_ns:
            return baseline_ms + glitch_extra_ms
        return baseline_ms

    return model


def detection_probability(
    period_ns: int,
    window_ns: int,
    trials: int = 1000,
    seed: int = 0,
) -> float:
    """Monte-Carlo probability a period-*period_ns* prober lands at
    least one probe in a *window_ns* event (uniform random phase).

    Analytically this is ``min(1, window/period)``; the simulation
    exists so benches report the measured value alongside the formula.
    """
    rng = random.Random(seed)
    day = 24 * 3600 * NS_PER_S
    hits = 0
    for trial in range(trials):
        prober = ActiveProber(period_ns=period_ns, seed=rng.getrandbits(32))
        start = rng.randint(0, day - window_ns)
        times = prober.probe_times(0, day)
        if any(start <= t < start + window_ns for t in times):
            hits += 1
    return hits / trials
