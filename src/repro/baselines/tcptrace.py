"""tcptrace-style offline per-flow analysis.

Where Ruru streams one measurement per handshake, tcptrace reads a
whole capture and reconstructs every connection: packet and byte
counts per direction, handshake RTTs, retransmissions, and how the
connection ended. The E9 bench uses it as the "full offline truth"
both Ruru and pping are compared against — and as the cost yardstick
(it must hold per-flow state for the entire trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.flow_table import canonical_flow_key
from repro.net.parser import ParsedPacket


@dataclass
class _DirectionState:
    packets: int = 0
    bytes: int = 0
    seqs_seen: Set[int] = field(default_factory=set)
    retransmissions: int = 0


@dataclass
class FlowReport:
    """Everything tcptrace reconstructs about one connection."""

    flow_key: tuple
    first_ns: int = 0
    last_ns: int = 0
    syn_ns: Optional[int] = None
    synack_ns: Optional[int] = None
    ack_ns: Optional[int] = None
    fwd: _DirectionState = field(default_factory=_DirectionState)
    rev: _DirectionState = field(default_factory=_DirectionState)
    saw_fin: bool = False
    saw_rst: bool = False

    @property
    def duration_ns(self) -> int:
        return self.last_ns - self.first_ns

    @property
    def handshake_complete(self) -> bool:
        return (
            self.syn_ns is not None
            and self.synack_ns is not None
            and self.ack_ns is not None
        )

    @property
    def external_rtt_ns(self) -> Optional[int]:
        """Tap↔server RTT from the handshake (Ruru's 'external')."""
        if self.syn_ns is None or self.synack_ns is None:
            return None
        return self.synack_ns - self.syn_ns

    @property
    def internal_rtt_ns(self) -> Optional[int]:
        """Tap↔client RTT from the handshake (Ruru's 'internal')."""
        if self.synack_ns is None or self.ack_ns is None:
            return None
        return self.ack_ns - self.synack_ns

    @property
    def total_rtt_ns(self) -> Optional[int]:
        if self.syn_ns is None or self.ack_ns is None:
            return None
        return self.ack_ns - self.syn_ns

    @property
    def total_packets(self) -> int:
        return self.fwd.packets + self.rev.packets

    @property
    def total_bytes(self) -> int:
        return self.fwd.bytes + self.rev.bytes

    @property
    def termination(self) -> str:
        """``"fin"``, ``"rst"``, or ``"open"``."""
        if self.saw_rst:
            return "rst"
        if self.saw_fin:
            return "fin"
        return "open"


class TcptraceAnalyzer:
    """Whole-capture connection reconstruction."""

    def __init__(self):
        self.flows: Dict[tuple, FlowReport] = {}
        self.packets_seen = 0

    def on_packet(self, packet: ParsedPacket) -> None:
        """Account one parsed packet."""
        self.packets_seen += 1
        key = canonical_flow_key(
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port,
            packet.is_ipv6,
        )
        report = self.flows.get(key)
        if report is None:
            report = FlowReport(
                flow_key=key, first_ns=packet.timestamp_ns, last_ns=packet.timestamp_ns
            )
            self.flows[key] = report
        report.last_ns = max(report.last_ns, packet.timestamp_ns)

        forward = (packet.src_ip, packet.src_port) == (key[0], key[1])
        direction = report.fwd if forward else report.rev
        direction.packets += 1
        direction.bytes += packet.payload_len
        if packet.payload_len:
            if packet.seq in direction.seqs_seen:
                direction.retransmissions += 1
            else:
                direction.seqs_seen.add(packet.seq)

        if packet.is_syn and report.syn_ns is None:
            report.syn_ns = packet.timestamp_ns
        elif packet.is_synack and report.synack_ns is None:
            report.synack_ns = packet.timestamp_ns
        elif (
            packet.is_ack
            and report.synack_ns is not None
            and report.ack_ns is None
        ):
            report.ack_ns = packet.timestamp_ns
        if packet.is_fin:
            report.saw_fin = True
        if packet.is_rst:
            report.saw_rst = True

    def run(self, packets: Iterable[ParsedPacket]) -> List[FlowReport]:
        """Analyze a whole stream; returns reports ordered by first packet."""
        for packet in packets:
            self.on_packet(packet)
        return self.reports()

    def reports(self) -> List[FlowReport]:
        return sorted(self.flows.values(), key=lambda r: r.first_ns)

    def summary(self) -> Dict[str, float]:
        """Capture-level statistics (E9 reporting)."""
        reports = list(self.flows.values())
        complete = [r for r in reports if r.handshake_complete]
        return {
            "flows": len(reports),
            "complete_handshakes": len(complete),
            "packets": self.packets_seen,
            "bytes": sum(r.total_bytes for r in reports),
            "retransmissions": sum(
                r.fwd.retransmissions + r.rev.retransmissions for r in reports
            ),
            "rst_flows": sum(1 for r in reports if r.saw_rst),
        }
