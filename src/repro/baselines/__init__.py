"""Comparison baselines: the passive-RTT tools that predate Ruru.

The reproduction bands note Ruru's novelty sits against existing
passive RTT tooling — pping (TCP-timestamp matching) and tcptrace
(offline per-flow analysis). Both are implemented here over the same
parsed-packet stream Ruru consumes, so experiment E9 can compare, on
identical traces: samples per flow, agreement with ground-truth RTT,
and per-packet processing cost.
"""

from repro.baselines.pping import PpingEstimator, RttSample
from repro.baselines.tcptrace import FlowReport, TcptraceAnalyzer
from repro.baselines.netflow import NetflowExporter, NetflowRecord
from repro.baselines.active_probe import (
    ActiveProber,
    ProbeSample,
    detection_probability,
    glitch_model,
)

__all__ = [
    "PpingEstimator",
    "RttSample",
    "FlowReport",
    "TcptraceAnalyzer",
    "NetflowExporter",
    "NetflowRecord",
    "ActiveProber",
    "ProbeSample",
    "detection_probability",
    "glitch_model",
]
