"""Synthetic traffic generation — the live-link substitute.

The paper's evaluation substrate is a tapped 10 Gbit/s production link
between Auckland and Los Angeles. We cannot replay REANNZ's traffic,
so this package synthesizes the closest deterministic equivalent at
the packet level:

* :mod:`repro.traffic.distributions` — per-path RTT drawn from a
  lognormal mixture (after Fontugne et al., the paper's reference [2]
  for RTT modelling), anchored on great-circle propagation floors.
* :mod:`repro.traffic.diurnal` — time-of-day load profiles so a
  synthetic "day" has a night trough and evening peak.
* :mod:`repro.traffic.endpoints` — weighted city populations on each
  side of the tap, drawing hosts from the shared
  :class:`~repro.geo.builder.SyntheticGeoPlan` address plan.
* :mod:`repro.traffic.flows` — flow specs and the packet-level
  synthesizer: real wire-format SYN / SYN-ACK / ACK (plus data and
  FIN segments with TCP timestamp options), with the tap's vantage
  point and per-hop delays modelled explicitly.
* :mod:`repro.traffic.generator` — merges thousands of flows into one
  timestamp-ordered packet stream.
* :mod:`repro.traffic.scenarios` — the paper's episodes: the
  Auckland–LA background load, the nightly firewall glitch that adds
  ~4000 ms to connections opened in a short window, SYN floods, and
  connection-count surges.
"""

from repro.traffic.distributions import LognormalMixture, rtt_model_for_path
from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.endpoints import EndpointPopulation, TapSide
from repro.traffic.flows import FlowSpec, FlowSynthesizer
from repro.traffic.generator import GeneratorConfig, TrafficGenerator
from repro.traffic.scenarios import (
    AucklandLaScenario,
    ConnectionSurgeInjector,
    FirewallGlitchInjector,
    SynFloodInjector,
)
from repro.traffic.tap import TapImpairments

__all__ = [
    "LognormalMixture",
    "rtt_model_for_path",
    "DiurnalProfile",
    "EndpointPopulation",
    "TapSide",
    "FlowSpec",
    "FlowSynthesizer",
    "GeneratorConfig",
    "TrafficGenerator",
    "AucklandLaScenario",
    "ConnectionSurgeInjector",
    "FirewallGlitchInjector",
    "SynFloodInjector",
    "TapImpairments",
]
