"""Flow specs and the packet-level synthesizer.

A :class:`FlowSpec` describes one TCP connection as the *tap* will see
it: where the endpoints are, the RTT between the client and the tap
(the flow's eventual "internal" latency) and between the tap and the
server ("external"), plus behavioural knobs — handshake-only flows
(scans/floods), RST aborts, SYN loss beyond the tap, data exchanges,
FIN close.

:class:`FlowSynthesizer` turns a spec into genuine wire-format frames
with tap-relative capture timestamps. The timestamp arithmetic is the
ground truth the measurement pipeline is validated against::

    t(SYN@tap)     = start + internal/2
    t(SYN-ACK@tap) = t(SYN@tap) + external + server_delay
    t(ACK@tap)     = t(SYN-ACK@tap) + internal + client_delay

so Ruru should measure ``external_rtt + server_delay`` as external
latency and ``internal_rtt + client_delay`` as internal latency —
exposed as :meth:`FlowSpec.expected_external_ns` and
:meth:`FlowSpec.expected_internal_ns`.

Data segments carry RFC 7323 timestamp options with per-host 1 kHz
TSval clocks, which is what the pping baseline consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.packet import Packet, build_tcp_packet
from repro.net.tcp import (
    TCP_FLAG_ACK,
    TCP_FLAG_FIN,
    TCP_FLAG_PSH,
    TCP_FLAG_RST,
    TCP_FLAG_SYN,
    TcpOption,
)

NS_PER_MS = 1_000_000
DEFAULT_RTO_MS = 1000.0


@dataclass
class FlowSpec:
    """One connection, described from the tap's vantage point."""

    start_ns: int
    client_ip: int
    server_ip: int
    client_port: int
    server_port: int
    internal_rtt_ms: float
    external_rtt_ms: float
    server_delay_ms: float = 0.5
    client_delay_ms: float = 0.2
    data_exchanges: int = 2
    request_bytes: int = 220
    response_bytes: int = 1200
    completes: bool = True
    rst_after_synack: bool = False
    syn_lost_beyond_tap: bool = False
    rto_ms: float = DEFAULT_RTO_MS
    fin_close: bool = True
    client_isn: int = 0
    server_isn: int = 0
    is_ipv6: bool = False

    def __post_init__(self):
        if self.internal_rtt_ms < 0 or self.external_rtt_ms < 0:
            raise ValueError("RTTs cannot be negative")
        if self.data_exchanges < 0:
            raise ValueError("data_exchanges cannot be negative")

    # -- ground truth the pipeline should recover -----------------------

    def expected_external_ns(self) -> int:
        """External latency Ruru should measure for this flow."""
        extra = self.rto_ms if self.syn_lost_beyond_tap else 0.0
        return int((self.external_rtt_ms + self.server_delay_ms + extra) * NS_PER_MS)

    def expected_internal_ns(self) -> int:
        """Internal latency Ruru should measure for this flow."""
        return int((self.internal_rtt_ms + self.client_delay_ms) * NS_PER_MS)

    def expected_total_ns(self) -> int:
        return self.expected_external_ns() + self.expected_internal_ns()


class FlowSynthesizer:
    """Expands flow specs into tap-timestamped wire frames."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)

    def synthesize(self, spec: FlowSpec) -> List[Packet]:
        """All frames of one flow, in tap-timestamp order."""
        rng = self.rng
        client_isn = spec.client_isn or rng.getrandbits(32)
        server_isn = spec.server_isn or rng.getrandbits(32)
        # Per-host TSval clocks: 1 kHz with random epoch offsets.
        client_ts_offset = rng.getrandbits(30)
        server_ts_offset = rng.getrandbits(30)

        def client_tsval(at_ns: int) -> int:
            return (client_ts_offset + at_ns // NS_PER_MS) & 0xFFFFFFFF

        def server_tsval(at_ns: int) -> int:
            return (server_ts_offset + at_ns // NS_PER_MS) & 0xFFFFFFFF

        internal_ns = int(spec.internal_rtt_ms * NS_PER_MS)
        external_ns = int(spec.external_rtt_ms * NS_PER_MS)
        one_way_internal = internal_ns // 2

        packets: List[Packet] = []
        last_client_tsval = 0
        last_server_tsval = 0

        def emit(
            at_ns: int,
            from_client: bool,
            flags: int,
            seq: int,
            ack: int,
            payload: bytes = b"",
        ) -> None:
            nonlocal last_client_tsval, last_server_tsval
            if from_client:
                tsval = client_tsval(at_ns)
                tsecr = last_server_tsval
                last_client_tsval = tsval
                src_ip, dst_ip = spec.client_ip, spec.server_ip
                src_port, dst_port = spec.client_port, spec.server_port
            else:
                tsval = server_tsval(at_ns)
                tsecr = last_client_tsval
                last_server_tsval = tsval
                src_ip, dst_ip = spec.server_ip, spec.client_ip
                src_port, dst_port = spec.server_port, spec.client_port
            options = [
                TcpOption.timestamp(tsval, tsecr),
                TcpOption(1),  # NOP padding, as real stacks emit
                TcpOption(1),
            ]
            packets.append(
                build_tcp_packet(
                    src_ip,
                    dst_ip,
                    src_port,
                    dst_port,
                    flags,
                    seq=seq,
                    ack=ack,
                    payload=payload,
                    options=options,
                    timestamp_ns=at_ns,
                    ipv6=spec.is_ipv6,
                    compute_checksum=False,
                )
            )

        # --- SYN -----------------------------------------------------------
        t_syn = spec.start_ns + one_way_internal
        emit(t_syn, True, TCP_FLAG_SYN, client_isn, 0)

        if spec.syn_lost_beyond_tap:
            # The tap saw the SYN, the server did not; the retransmit
            # after one RTO carries the same ISN and actually connects.
            t_syn_retx = t_syn + int(spec.rto_ms * NS_PER_MS)
            emit(t_syn_retx, True, TCP_FLAG_SYN, client_isn, 0)
            synack_base = t_syn_retx
        else:
            synack_base = t_syn

        if not spec.completes:
            return packets

        # --- SYN-ACK ---------------------------------------------------------
        t_synack = synack_base + external_ns + int(spec.server_delay_ms * NS_PER_MS)
        emit(
            t_synack,
            False,
            TCP_FLAG_SYN | TCP_FLAG_ACK,
            server_isn,
            (client_isn + 1) & 0xFFFFFFFF,
        )

        # --- final handshake packet: ACK or RST ------------------------------
        t_third = t_synack + internal_ns + int(spec.client_delay_ms * NS_PER_MS)
        if spec.rst_after_synack:
            emit(
                t_third,
                True,
                TCP_FLAG_RST | TCP_FLAG_ACK,
                (client_isn + 1) & 0xFFFFFFFF,
                (server_isn + 1) & 0xFFFFFFFF,
            )
            return packets
        emit(
            t_third,
            True,
            TCP_FLAG_ACK,
            (client_isn + 1) & 0xFFFFFFFF,
            (server_isn + 1) & 0xFFFFFFFF,
        )

        # --- data exchanges ---------------------------------------------------
        client_sent = 0
        server_sent = 0
        t_cursor = t_third
        for _round in range(spec.data_exchanges):
            think_ns = int(rng.uniform(0.1, 2.0) * NS_PER_MS)
            t_request = t_cursor + think_ns
            emit(
                t_request,
                True,
                TCP_FLAG_PSH | TCP_FLAG_ACK,
                (client_isn + 1 + client_sent) & 0xFFFFFFFF,
                (server_isn + 1 + server_sent) & 0xFFFFFFFF,
                payload=b"Q" * spec.request_bytes,
            )
            client_sent += spec.request_bytes
            t_response = t_request + external_ns + int(spec.server_delay_ms * NS_PER_MS)
            emit(
                t_response,
                False,
                TCP_FLAG_PSH | TCP_FLAG_ACK,
                (server_isn + 1 + server_sent) & 0xFFFFFFFF,
                (client_isn + 1 + client_sent) & 0xFFFFFFFF,
                payload=b"R" * spec.response_bytes,
            )
            server_sent += spec.response_bytes
            t_data_ack = t_response + internal_ns
            emit(
                t_data_ack,
                True,
                TCP_FLAG_ACK,
                (client_isn + 1 + client_sent) & 0xFFFFFFFF,
                (server_isn + 1 + server_sent) & 0xFFFFFFFF,
            )
            t_cursor = t_data_ack

        # --- close --------------------------------------------------------------
        if spec.fin_close:
            t_fin = t_cursor + int(rng.uniform(0.5, 5.0) * NS_PER_MS)
            emit(
                t_fin,
                True,
                TCP_FLAG_FIN | TCP_FLAG_ACK,
                (client_isn + 1 + client_sent) & 0xFFFFFFFF,
                (server_isn + 1 + server_sent) & 0xFFFFFFFF,
            )
            t_fin_ack = t_fin + external_ns + int(spec.server_delay_ms * NS_PER_MS)
            emit(
                t_fin_ack,
                False,
                TCP_FLAG_FIN | TCP_FLAG_ACK,
                (server_isn + 1 + server_sent) & 0xFFFFFFFF,
                (client_isn + 2 + client_sent) & 0xFFFFFFFF,
            )
            t_last = t_fin_ack + internal_ns
            emit(
                t_last,
                True,
                TCP_FLAG_ACK,
                (client_isn + 2 + client_sent) & 0xFFFFFFFF,
                (server_isn + 2 + server_sent) & 0xFFFFFFFF,
            )
        return packets
