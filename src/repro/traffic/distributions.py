"""RTT distributions: lognormal mixtures anchored on geography.

Fontugne, Mazel and Fukuda (the paper's reference [2]) model
large-scale RTT populations as mixtures of a few lognormal modes —
the dominant path plus alternates (detours, queueing states). Each
synthetic path here gets such a mixture: the main mode sits just
above the great-circle fibre floor, a secondary mode models the
occasional longer path, and everything is truncated below the floor
because nothing beats the speed of light.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geo.distance import rtt_floor_ms


@dataclass(frozen=True)
class LognormalMixture:
    """A mixture of lognormal components with a hard lower bound.

    Attributes:
        components: (weight, mu, sigma) per mode; ``exp(mu)`` is the
            mode's median in ms. Weights need not be normalized.
        floor_ms: samples never fall below this (propagation floor).
    """

    components: Tuple[Tuple[float, float, float], ...]
    floor_ms: float = 0.0

    def __post_init__(self):
        if not self.components:
            raise ValueError("mixture needs at least one component")
        for weight, _mu, sigma in self.components:
            if weight <= 0:
                raise ValueError("component weights must be positive")
            if sigma <= 0:
                raise ValueError("component sigmas must be positive")
        if self.floor_ms < 0:
            raise ValueError("floor cannot be negative")

    def sample(self, rng: random.Random) -> float:
        """Draw one RTT in ms."""
        total = sum(weight for weight, _mu, _sigma in self.components)
        pick = rng.random() * total
        for weight, mu, sigma in self.components:
            pick -= weight
            if pick <= 0:
                value = rng.lognormvariate(mu, sigma)
                return max(value, self.floor_ms)
        # Floating-point slack: fall back to the last component.
        _weight, mu, sigma = self.components[-1]
        return max(rng.lognormvariate(mu, sigma), self.floor_ms)

    def median_ms(self) -> float:
        """Median of the dominant (highest-weight) component."""
        weight_max = max(self.components, key=lambda c: c[0])
        return max(math.exp(weight_max[1]), self.floor_ms)

    @classmethod
    def single(cls, median_ms: float, sigma: float = 0.15, floor_ms: float = 0.0):
        """A one-mode mixture with the given median."""
        if median_ms <= 0:
            raise ValueError("median must be positive")
        return cls(components=((1.0, math.log(median_ms), sigma),), floor_ms=floor_ms)


def rtt_model_for_path(
    lat1: float,
    lon1: float,
    lat2: float,
    lon2: float,
    local_floor_ms: float = 0.35,
    detour_factor: float = 1.6,
    detour_weight: float = 0.08,
    sigma: float = 0.12,
) -> LognormalMixture:
    """Build the mixture for a path between two coordinates.

    The dominant mode's median sits ~15 % above the fibre floor
    (routing, serialization, queueing); a light secondary mode at
    ``detour_factor``× models alternate paths. *local_floor_ms* keeps
    same-city paths from collapsing to zero.
    """
    floor = max(rtt_floor_ms(lat1, lon1, lat2, lon2), local_floor_ms)
    main_median = floor * 1.15
    detour_median = floor * detour_factor
    return LognormalMixture(
        components=(
            (1.0 - detour_weight, math.log(main_median), sigma),
            (detour_weight, math.log(detour_median), sigma * 1.5),
        ),
        floor_ms=floor,
    )


def empirical_summary(samples: Sequence[float]) -> dict:
    """min/median/mean/p95/max of a sample list (bench reporting)."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    n = len(ordered)
    return {
        "min": ordered[0],
        "median": ordered[n // 2],
        "mean": sum(ordered) / n,
        "p95": ordered[min(n - 1, int(0.95 * n))],
        "max": ordered[-1],
        "count": n,
    }
