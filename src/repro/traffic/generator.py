"""The traffic generator: thousands of flows, one ordered packet stream.

Flow start times come from the diurnal Poisson process; each flow gets
endpoints from the population, RTTs from per-path lognormal mixtures
anchored at the tap city (Auckland), and behavioural variety (scans
that never complete, RST aborts, SYN loss beyond the tap). Scenario
injectors mutate flows in time windows (the firewall glitch) or add
their own (SYN floods).

Packets are yielded in global tap-timestamp order by merging per-flow
packet lists through a heap, which works because a flow never emits a
packet earlier than its own start time.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.geo.builder import SyntheticGeoPlan
from repro.geo.locations import City, city_by_name
from repro.net.packet import Packet
from repro.traffic.distributions import LognormalMixture, rtt_model_for_path
from repro.traffic.diurnal import DiurnalProfile, poisson_arrivals
from repro.traffic.endpoints import EndpointPopulation
from repro.traffic.flows import FlowSpec, FlowSynthesizer

NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

# Server ports weighted the way a research network's traffic skews.
_SERVER_PORTS = [443, 80, 22, 993, 8443, 3128]
_SERVER_PORT_WEIGHTS = [0.62, 0.18, 0.08, 0.04, 0.05, 0.03]


class FlowInjector:
    """Base scenario hook; subclasses override either method."""

    def adjust(self, spec: FlowSpec, rng: random.Random) -> Optional[FlowSpec]:
        """Mutate or replace a background flow; None drops it."""
        return spec

    def extra_flows(self, rng: random.Random) -> Iterable[FlowSpec]:
        """Additional flows this scenario contributes."""
        return ()


@dataclass
class GeneratorConfig:
    """Workload parameters.

    Attributes:
        duration_ns: length of the generated capture.
        start_ns: virtual time of the first possible flow (defaults to
            midnight so diurnal hours are meaningful).
        mean_flows_per_s: average connection rate before the diurnal
            multiplier.
        seed: master seed; everything derives from it.
        tap_city: where the measurement point sits.
        profile: diurnal load shape (flat for unit tests).
        handshake_only_fraction: flows that never complete (scans).
        rst_fraction: flows aborted by RST after the SYN-ACK.
        syn_loss_fraction: flows whose SYN is lost beyond the tap.
        ipv6_fraction: flows carried over IPv6 (addresses drawn from
            the plan's per-city /48s).
        max_data_exchanges: request/response rounds per flow (uniform
            between 0 and this).
    """

    duration_ns: int = 60 * NS_PER_S
    start_ns: int = 0
    mean_flows_per_s: float = 50.0
    seed: int = 7
    tap_city: str = "Auckland"
    profile: DiurnalProfile = field(default_factory=DiurnalProfile.flat)
    handshake_only_fraction: float = 0.02
    rst_fraction: float = 0.01
    syn_loss_fraction: float = 0.005
    ipv6_fraction: float = 0.0
    max_data_exchanges: int = 3

    def validate(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError("duration must be positive")
        if self.mean_flows_per_s <= 0:
            raise ValueError("flow rate must be positive")
        fractions = (
            self.handshake_only_fraction,
            self.rst_fraction,
            self.syn_loss_fraction,
            self.ipv6_fraction,
        )
        if any(not 0.0 <= fraction <= 1.0 for fraction in fractions):
            raise ValueError("behaviour fractions must be within [0, 1]")
        if city_by_name(self.tap_city) is None:
            raise ValueError(f"unknown tap city {self.tap_city!r}")


class TrafficGenerator:
    """Generates the tap's packet stream for one scenario run."""

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        population: Optional[EndpointPopulation] = None,
        injectors: Optional[List[FlowInjector]] = None,
        keep_specs: bool = False,
    ):
        self.config = config or GeneratorConfig()
        self.config.validate()
        self.population = population or EndpointPopulation()
        self.injectors = list(injectors or [])
        self.keep_specs = keep_specs
        self.specs: List[FlowSpec] = []
        self._tap = city_by_name(self.config.tap_city)
        assert self._tap is not None
        self._rtt_cache: Dict[Tuple[str, str], LognormalMixture] = {}
        self.flows_generated = 0

    @property
    def plan(self) -> SyntheticGeoPlan:
        """The shared address plan (build geo DBs from this)."""
        return self.population.plan

    # -- flow construction ---------------------------------------------------

    def _rtt_model(self, city: City) -> LognormalMixture:
        """RTT mixture between *city* and the tap (cached per city)."""
        model = self._rtt_cache.get(city.name)
        if model is None:
            model = rtt_model_for_path(
                city.lat, city.lon, self._tap.lat, self._tap.lon
            )
            self._rtt_cache[city.name] = model
        return model

    def _make_spec(self, start_ns: int, rng: random.Random) -> FlowSpec:
        client_city, server_city, _outbound = self.population.draw_pair(rng)
        internal_city, external_city = client_city, server_city
        is_ipv6 = rng.random() < self.config.ipv6_fraction
        if is_ipv6:
            client_ip = self.population.host6_in(client_city, rng)
            server_ip = self.population.host6_in(server_city, rng)
        else:
            client_ip = self.population.host_in(client_city, rng)
            server_ip = self.population.host_in(server_city, rng)
        spec = FlowSpec(
            start_ns=start_ns,
            client_ip=client_ip,
            server_ip=server_ip,
            is_ipv6=is_ipv6,
            client_port=rng.randint(1024, 65535),
            server_port=rng.choices(_SERVER_PORTS, weights=_SERVER_PORT_WEIGHTS, k=1)[0],
            internal_rtt_ms=self._rtt_model(internal_city).sample(rng),
            external_rtt_ms=self._rtt_model(external_city).sample(rng),
            server_delay_ms=rng.uniform(0.1, 1.5),
            client_delay_ms=rng.uniform(0.05, 0.5),
            data_exchanges=rng.randint(0, self.config.max_data_exchanges),
            completes=rng.random() >= self.config.handshake_only_fraction,
            rst_after_synack=rng.random() < self.config.rst_fraction,
            syn_lost_beyond_tap=rng.random() < self.config.syn_loss_fraction,
        )
        return spec

    def flow_specs(self) -> Iterator[FlowSpec]:
        """Background plus injected flows, ordered by start time."""
        rng = random.Random(self.config.seed)
        end_ns = self.config.start_ns + self.config.duration_ns
        background: List[FlowSpec] = []
        for start_ns in poisson_arrivals(
            rng,
            self.config.mean_flows_per_s,
            self.config.start_ns,
            end_ns,
            self.config.profile,
        ):
            spec = self._make_spec(start_ns, rng)
            for injector in self.injectors:
                adjusted = injector.adjust(spec, rng)
                if adjusted is None:
                    spec = None
                    break
                spec = adjusted
            if spec is not None:
                background.append(spec)

        injected: List[FlowSpec] = []
        injector_rng = random.Random(self.config.seed ^ 0x5EED)
        for injector in self.injectors:
            injected.extend(injector.extra_flows(injector_rng))

        for spec in sorted(background + injected, key=lambda s: s.start_ns):
            self.flows_generated += 1
            if self.keep_specs:
                self.specs.append(spec)
            yield spec

    # -- packet stream ----------------------------------------------------------

    def packets(self) -> Iterator[Packet]:
        """The merged, timestamp-ordered packet stream."""
        synth_rng = random.Random(self.config.seed ^ 0xFACADE)
        synthesizer = FlowSynthesizer(rng=synth_rng)
        heap: List[Tuple[int, int, Packet]] = []
        sequence = 0
        for spec in self.flow_specs():
            # Everything already in the heap with ts <= this flow's
            # start can never be preceded by a later flow's packet.
            while heap and heap[0][0] <= spec.start_ns:
                yield heapq.heappop(heap)[2]
            for packet in synthesizer.synthesize(spec):
                heapq.heappush(heap, (packet.timestamp_ns, sequence, packet))
                sequence += 1
        while heap:
            yield heapq.heappop(heap)[2]

    def packet_list(self) -> List[Packet]:
        """Materialized packet stream (benches reuse it)."""
        return list(self.packets())
