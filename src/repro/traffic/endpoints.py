"""Endpoint populations on the two sides of the tap.

The tap sits on REANNZ's Auckland–Los Angeles link: the *internal*
side is New Zealand, the *external* side is the rest of the world,
weighted toward the US west coast. Hosts are drawn from the shared
:class:`~repro.geo.builder.SyntheticGeoPlan`, so every generated
address later geo-resolves to exactly the city that produced it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.builder import SyntheticGeoPlan
from repro.geo.locations import City

# Default population weights. Internal: NZ cities by rough user count.
DEFAULT_INTERNAL_WEIGHTS = {
    "Auckland": 0.45,
    "Wellington": 0.22,
    "Christchurch": 0.15,
    "Hamilton": 0.08,
    "Dunedin": 0.06,
    "Palmerston North": 0.04,
}

# External: US-heavy (the LA link), plus trans-Pacific and Europe.
DEFAULT_EXTERNAL_WEIGHTS = {
    "Los Angeles": 0.18,
    "San Francisco": 0.12,
    "Seattle": 0.09,
    "Ashburn": 0.08,
    "Chicago": 0.05,
    "New York": 0.06,
    "Dallas": 0.04,
    "Sydney": 0.07,
    "Tokyo": 0.06,
    "Singapore": 0.05,
    "London": 0.06,
    "Amsterdam": 0.04,
    "Frankfurt": 0.04,
    "Hong Kong": 0.03,
    "Toronto": 0.02,
    "Sao Paulo": 0.01,
}


@dataclass(frozen=True)
class TapSide:
    """A weighted set of cities on one side of the tap."""

    cities: Tuple[City, ...]
    weights: Tuple[float, ...]

    def __post_init__(self):
        if len(self.cities) != len(self.weights) or not self.cities:
            raise ValueError("cities and weights must be equal-length and non-empty")
        if any(weight <= 0 for weight in self.weights):
            raise ValueError("weights must be positive")

    def draw_city(self, rng: random.Random) -> City:
        """Pick a city proportionally to its weight."""
        return rng.choices(self.cities, weights=self.weights, k=1)[0]


class EndpointPopulation:
    """Draws (client, server) endpoint pairs across the tap.

    Args:
        plan: the shared address plan.
        internal_weights / external_weights: ``{city name: weight}``;
            cities must exist in the plan.
        outbound_fraction: probability a connection is initiated from
            the internal side (NZ users reaching out — the dominant
            direction on a research network).
    """

    def __init__(
        self,
        plan: Optional[SyntheticGeoPlan] = None,
        internal_weights: Optional[Dict[str, float]] = None,
        external_weights: Optional[Dict[str, float]] = None,
        outbound_fraction: float = 0.8,
    ):
        if not 0.0 <= outbound_fraction <= 1.0:
            raise ValueError("outbound_fraction must be within [0, 1]")
        self.plan = plan or SyntheticGeoPlan()
        self.outbound_fraction = outbound_fraction
        self.internal = self._build_side(internal_weights or DEFAULT_INTERNAL_WEIGHTS)
        self.external = self._build_side(external_weights or DEFAULT_EXTERNAL_WEIGHTS)
        self._city_index: Dict[str, int] = {
            city.name: index for index, city in enumerate(self.plan.cities)
        }

    def _build_side(self, weights: Dict[str, float]) -> TapSide:
        cities: List[City] = []
        weight_list: List[float] = []
        plan_cities = {city.name: city for city in self.plan.cities}
        for name, weight in weights.items():
            city = plan_cities.get(name)
            if city is None:
                raise ValueError(f"city {name!r} is not in the address plan")
            cities.append(city)
            weight_list.append(weight)
        return TapSide(cities=tuple(cities), weights=tuple(weight_list))

    def draw_pair(self, rng: random.Random) -> Tuple[City, City, bool]:
        """Draw (client_city, server_city, outbound).

        *outbound* True means the client is on the internal (NZ) side.
        """
        outbound = rng.random() < self.outbound_fraction
        if outbound:
            return self.internal.draw_city(rng), self.external.draw_city(rng), True
        return self.external.draw_city(rng), self.internal.draw_city(rng), False

    def host_in(self, city: City, rng: random.Random) -> int:
        """An IPv4 host address inside *city*'s block."""
        return self.plan.random_host(self._city_index[city.name], rng)

    def host6_in(self, city: City, rng: random.Random) -> int:
        """An IPv6 host address inside *city*'s /48."""
        return self.plan.random_host6(self._city_index[city.name], rng)
