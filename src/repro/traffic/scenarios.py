"""The paper's deployment episodes as reusable scenarios.

* :class:`AucklandLaScenario` — the background: REANNZ users behind an
  Auckland tap talking to the world, diurnal load, realistic RTTs.
* :class:`FirewallGlitchInjector` — §3's anomaly: "a periodic firewall
  update was causing a 4000 ms latency increase on all connections
  that were started within a specific, very short time period each
  night". Flows starting inside the nightly window get the extra
  delay on the handshake's server side.
* :class:`SynFloodInjector` — "SYN floods … identified in real-time":
  a burst of handshake-only flows from spoofed sources at one target.
* :class:`ConnectionSurgeInjector` — "unusual number of TCP
  connections between two locations": a surge of ordinary flows
  between one city pair.
* :class:`DdosRampInjector` — a volumetric application-layer DDoS:
  payload-heavy completed flows from a botnet-wide source space
  ramping linearly toward a peak rate at one target — the offered
  load the overload controller's shed ladder is proven against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.geo.locations import city_by_name
from repro.traffic.diurnal import NS_PER_DAY, DiurnalProfile
from repro.traffic.endpoints import EndpointPopulation
from repro.traffic.flows import FlowSpec
from repro.traffic.generator import FlowInjector, GeneratorConfig, TrafficGenerator

NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000
NS_PER_HOUR = 3600 * NS_PER_S


@dataclass
class AucklandLaScenario:
    """Factory for the deployment's background workload."""

    duration_ns: int = 3600 * NS_PER_S
    start_ns: int = 0
    mean_flows_per_s: float = 50.0
    seed: int = 7
    diurnal: bool = True

    def build(
        self,
        injectors: Optional[List[FlowInjector]] = None,
        keep_specs: bool = False,
    ) -> TrafficGenerator:
        """Construct the configured generator."""
        profile = DiurnalProfile() if self.diurnal else DiurnalProfile.flat()
        config = GeneratorConfig(
            duration_ns=self.duration_ns,
            start_ns=self.start_ns,
            mean_flows_per_s=self.mean_flows_per_s,
            seed=self.seed,
            tap_city="Auckland",
            profile=profile,
        )
        return TrafficGenerator(
            config=config,
            population=EndpointPopulation(),
            injectors=injectors,
            keep_specs=keep_specs,
        )


@dataclass
class FirewallGlitchInjector(FlowInjector):
    """Nightly firewall update holding new connections for ~4 s.

    Attributes:
        window_start_offset_ns: offset of the window from midnight
            (default 03:00 — deep in the diurnal trough, which is why
            5-minute SNMP averages missed it).
        window_ns: the "very short time period" (default 60 s).
        extra_delay_ms: added latency (paper: 4000 ms).
    """

    window_start_offset_ns: int = 3 * NS_PER_HOUR
    window_ns: int = 60 * NS_PER_S
    extra_delay_ms: float = 4000.0
    affected_flows: int = 0

    def in_window(self, start_ns: int) -> bool:
        """Whether a flow starting at *start_ns* hits the nightly window."""
        time_of_day = start_ns % NS_PER_DAY
        return (
            self.window_start_offset_ns
            <= time_of_day
            < self.window_start_offset_ns + self.window_ns
        )

    def adjust(self, spec: FlowSpec, rng: random.Random) -> FlowSpec:
        if self.in_window(spec.start_ns):
            spec.server_delay_ms += self.extra_delay_ms
            self.affected_flows += 1
        return spec


@dataclass
class SynFloodInjector(FlowInjector):
    """A SYN flood: handshake-only flows from spoofed sources.

    The spoofed addresses are drawn from the whole IPv4 space, so most
    fall outside the geo plan — floods also look distinctive in the
    enrichment-miss counters.
    """

    target_city: str = "Auckland"
    target_port: int = 443
    flood_start_ns: int = 0
    flood_duration_ns: int = 10 * NS_PER_S
    rate_per_s: float = 2000.0
    population: EndpointPopulation = field(default_factory=EndpointPopulation)
    flows_injected: int = 0

    def extra_flows(self, rng: random.Random) -> Iterable[FlowSpec]:
        city = city_by_name(self.target_city)
        if city is None:
            raise ValueError(f"unknown flood target {self.target_city!r}")
        target_ip = self.population.host_in(city, rng)
        count = int(self.rate_per_s * self.flood_duration_ns / NS_PER_S)
        flows: List[FlowSpec] = []
        for _ in range(count):
            start = self.flood_start_ns + rng.randint(0, self.flood_duration_ns - 1)
            flows.append(
                FlowSpec(
                    start_ns=start,
                    client_ip=rng.randint(1, (1 << 32) - 2),
                    server_ip=target_ip,
                    client_port=rng.randint(1024, 65535),
                    server_port=self.target_port,
                    internal_rtt_ms=rng.uniform(1.0, 30.0),
                    external_rtt_ms=rng.uniform(50.0, 250.0),
                    data_exchanges=0,
                    completes=False,
                    fin_close=False,
                )
            )
        self.flows_injected = len(flows)
        return flows


@dataclass
class DdosRampInjector(FlowInjector):
    """A volumetric DDoS ramp: payload-heavy flows climbing to a peak.

    Unlike the SYN flood, these connections *complete* and exchange
    data, so the attack competes with legitimate traffic for every
    stage of the pipeline — rings, workers, the MQ — rather than just
    the flow table. Flow-start density grows linearly from zero at
    ``ramp_start_ns`` to ``peak_rate_per_s`` at the end of the ramp
    (total flows = peak * duration / 2), which is what walks the
    overload controller up its ladder rung by rung instead of
    slamming it.

    Sources are spoofed across the whole IPv4 space (botnet-shaped, so
    they also show up in the enrichment-miss counters); the target is
    a real host in the catalog.
    """

    target_city: str = "Auckland"
    target_port: int = 443
    ramp_start_ns: int = 0
    ramp_duration_ns: int = 10 * NS_PER_S
    peak_rate_per_s: float = 400.0
    data_exchanges: int = 8
    response_bytes: int = 1400
    population: EndpointPopulation = field(default_factory=EndpointPopulation)
    flows_injected: int = 0

    def extra_flows(self, rng: random.Random) -> Iterable[FlowSpec]:
        city = city_by_name(self.target_city)
        if city is None:
            raise ValueError(f"unknown ddos target {self.target_city!r}")
        target_ip = self.population.host_in(city, rng)
        count = int(self.peak_rate_per_s * self.ramp_duration_ns / NS_PER_S / 2)
        flows: List[FlowSpec] = []
        for _ in range(count):
            # sqrt of a uniform draw gives start-time density ∝ elapsed
            # ramp time: the linear ramp.
            offset = int(self.ramp_duration_ns * rng.random() ** 0.5)
            flows.append(
                FlowSpec(
                    start_ns=self.ramp_start_ns + min(offset, self.ramp_duration_ns - 1),
                    client_ip=rng.randint(1, (1 << 32) - 2),
                    server_ip=target_ip,
                    client_port=rng.randint(1024, 65535),
                    server_port=self.target_port,
                    internal_rtt_ms=rng.uniform(1.0, 30.0),
                    external_rtt_ms=rng.uniform(40.0, 200.0),
                    data_exchanges=self.data_exchanges,
                    response_bytes=self.response_bytes,
                )
            )
        self.flows_injected = len(flows)
        return flows


@dataclass
class ConnectionSurgeInjector(FlowInjector):
    """A surge of *completed* connections between one city pair."""

    src_city: str = "Wellington"
    dst_city: str = "Los Angeles"
    surge_start_ns: int = 0
    surge_duration_ns: int = 30 * NS_PER_S
    rate_per_s: float = 300.0
    population: EndpointPopulation = field(default_factory=EndpointPopulation)
    flows_injected: int = 0

    def extra_flows(self, rng: random.Random) -> Iterable[FlowSpec]:
        src = city_by_name(self.src_city)
        dst = city_by_name(self.dst_city)
        if src is None or dst is None:
            raise ValueError("surge cities must exist in the catalog")
        count = int(self.rate_per_s * self.surge_duration_ns / NS_PER_S)
        flows: List[FlowSpec] = []
        for _ in range(count):
            start = self.surge_start_ns + rng.randint(0, self.surge_duration_ns - 1)
            flows.append(
                FlowSpec(
                    start_ns=start,
                    client_ip=self.population.host_in(src, rng),
                    server_ip=self.population.host_in(dst, rng),
                    client_port=rng.randint(1024, 65535),
                    server_port=443,
                    internal_rtt_ms=rng.uniform(1.0, 10.0),
                    external_rtt_ms=rng.uniform(120.0, 160.0),
                    data_exchanges=1,
                )
            )
        self.flows_injected = len(flows)
        return flows
