"""Tap imperfections: what a real optical tap + capture card do to a
perfect packet stream.

Production captures are not pristine: the capture path drops frames
under burst (distinct from in-network loss — the packet *did* cross
the wire), duplicates frames (span ports), and delivers slightly out
of order (multi-queue capture cards merging by batch). Ruru must
degrade gracefully under all three; :class:`TapImpairments` applies
them deterministically so tests and benches can quantify exactly how
measurement coverage and accuracy degrade.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.net.packet import Packet


@dataclass
class TapImpairments:
    """Deterministic stream impairments.

    Attributes:
        loss_rate: i.i.d. probability a frame is missing from the
            capture.
        duplicate_rate: probability a frame appears twice.
        reorder_rate: probability a frame's capture timestamp is
            jittered by up to *reorder_jitter_ns*, letting later
            frames overtake it (the stream is re-sorted afterwards,
            as capture files are time-ordered by the jittered stamps).
        reorder_jitter_ns: maximum timestamp perturbation.
        seed: drives all three processes.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_jitter_ns: int = 200_000  # 200 us: realistic NIC-merge jitter
    seed: int = 0

    def __post_init__(self):
        for name in ("loss_rate", "duplicate_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.reorder_jitter_ns < 0:
            raise ValueError("jitter cannot be negative")

    def apply(self, packets: Iterable[Packet]) -> Iterator[Packet]:
        """Yield the impaired stream, time-ordered by (jittered) stamps.

        Reordering is windowed: a bounded heap holds frames until no
        future frame can precede them, so the generator stays
        streaming.
        """
        rng = random.Random(self.seed)
        horizon = 4 * self.reorder_jitter_ns + 1
        heap: List[Tuple[int, int, Packet]] = []
        sequence = 0

        for packet in packets:
            if self.loss_rate and rng.random() < self.loss_rate:
                continue
            emit_at = packet.timestamp_ns
            if self.reorder_rate and rng.random() < self.reorder_rate:
                emit_at += rng.randint(-self.reorder_jitter_ns, self.reorder_jitter_ns)
                emit_at = max(0, emit_at)
            copies = 2 if (
                self.duplicate_rate and rng.random() < self.duplicate_rate
            ) else 1
            for _ in range(copies):
                heapq.heappush(
                    heap,
                    (emit_at, sequence, Packet(data=packet.data, timestamp_ns=emit_at)),
                )
                sequence += 1
            # Everything older than the jitter window is safe to emit.
            while heap and heap[0][0] + horizon < packet.timestamp_ns:
                yield heapq.heappop(heap)[2]

        while heap:
            yield heapq.heappop(heap)[2]
