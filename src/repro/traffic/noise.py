"""Non-TCP background noise: the rest of what a real tap sees.

"The Ruru pipeline analyzes all traffic going through the NIC" — and
a real 10G link is not all TCP. This injector adds the realistic
non-measurable mix so the pre-parse filter's drop path carries real
load in tests and benches:

* UDP — DNS-sized request/response pairs and larger QUIC-like flows,
* ICMP — echo request/reply pairs and the odd TTL-exceeded,
* ARP — link-local chatter (not even IP).

Noise packets carry correct wire formats; the pipeline must classify
and drop every one of them (counted per reason) without disturbing
TCP measurement.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Iterator, List

from repro.geo.builder import SyntheticGeoPlan
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.icmp import IcmpMessage
from repro.net.ipv4 import IPv4Header, PROTO_UDP
from repro.net.packet import Packet
from repro.net.udp import UdpHeader

NS_PER_S = 1_000_000_000

PROTO_ICMP = 1


def _udp_packet(src, dst, sport, dport, payload, t_ns):
    segment = UdpHeader(src_port=sport, dst_port=dport, payload=payload).pack()
    ip = IPv4Header(src=src, dst=dst, protocol=PROTO_UDP, payload=segment).pack()
    return Packet(data=EthernetFrame(payload=ip).pack(), timestamp_ns=t_ns)


def _icmp_packet(src, dst, message, t_ns):
    ip = IPv4Header(src=src, dst=dst, protocol=PROTO_ICMP, payload=message.pack()).pack()
    return Packet(data=EthernetFrame(payload=ip).pack(), timestamp_ns=t_ns)


def _arp_packet(t_ns, rng):
    # A who-has broadcast: htype/ptype/hlen/plen/oper + addresses.
    body = struct.pack("!HHBBH", 1, ETHERTYPE_IPV4, 6, 4, 1)
    body += rng.getrandbits(48).to_bytes(6, "big") + rng.getrandbits(32).to_bytes(4, "big")
    body += b"\x00" * 6 + rng.getrandbits(32).to_bytes(4, "big")
    frame = EthernetFrame(ethertype=0x0806, payload=body)
    return Packet(data=frame.pack(), timestamp_ns=t_ns)


@dataclass
class NoiseGenerator:
    """Generates a time-ordered non-TCP packet stream.

    Attributes:
        plan: address plan to draw realistic endpoints from.
        duration_ns / start_ns: time window.
        udp_rate_per_s: UDP datagrams per second (pairs count as 2).
        icmp_rate_per_s: ICMP messages per second.
        arp_rate_per_s: ARP broadcasts per second.
        seed: determinism.
    """

    plan: SyntheticGeoPlan = field(default_factory=SyntheticGeoPlan)
    duration_ns: int = 10 * NS_PER_S
    start_ns: int = 0
    udp_rate_per_s: float = 40.0
    icmp_rate_per_s: float = 4.0
    arp_rate_per_s: float = 2.0
    seed: int = 5

    def packets(self) -> Iterator[Packet]:
        """The merged noise stream, timestamp-ordered."""
        rng = random.Random(self.seed)
        events: List[Packet] = []
        end_ns = self.start_ns + self.duration_ns

        def rand_host():
            return self.plan.random_host(rng.randrange(len(self.plan.cities)), rng)

        # UDP request/response pairs (DNS-shaped) plus one-way bulk.
        count = int(self.udp_rate_per_s * self.duration_ns / NS_PER_S / 2)
        for _ in range(count):
            t = rng.randint(self.start_ns, end_ns - 1)
            client, server = rand_host(), rand_host()
            sport = rng.randint(1024, 65535)
            dport = rng.choice([53, 123, 443, 51820])
            req_len = rng.randint(32, 96)
            resp_len = rng.randint(64, 1200)
            events.append(_udp_packet(
                client, server, sport, dport, b"q" * req_len, t
            ))
            events.append(_udp_packet(
                server, client, dport, sport, b"r" * resp_len,
                t + rng.randint(1_000_000, 200_000_000),
            ))

        # ICMP echo pairs and occasional TTL-exceeded.
        count = int(self.icmp_rate_per_s * self.duration_ns / NS_PER_S / 2)
        for i in range(count):
            t = rng.randint(self.start_ns, end_ns - 1)
            a, b = rand_host(), rand_host()
            request = IcmpMessage.echo(identifier=i & 0xFFFF, sequence=1,
                                       payload=b"ping" * 8)
            reply = IcmpMessage.echo(identifier=i & 0xFFFF, sequence=1,
                                     payload=b"ping" * 8, reply=True)
            events.append(_icmp_packet(a, b, request, t))
            events.append(_icmp_packet(
                b, a, reply, t + rng.randint(1_000_000, 300_000_000)
            ))
            if rng.random() < 0.1:
                exceeded = IcmpMessage(icmp_type=11, code=0, payload=b"\x00" * 28)
                events.append(_icmp_packet(rand_host(), a, exceeded, t + 1))

        # ARP chatter.
        count = int(self.arp_rate_per_s * self.duration_ns / NS_PER_S)
        for _ in range(count):
            events.append(_arp_packet(rng.randint(self.start_ns, end_ns - 1), rng))

        events.sort(key=lambda p: p.timestamp_ns)
        return iter(events)


def merge_streams(*streams) -> Iterator[Packet]:
    """Merge timestamp-ordered packet streams into one ordered stream."""
    import heapq

    return (
        packet
        for packet in heapq.merge(*streams, key=lambda p: p.timestamp_ns)
    )
