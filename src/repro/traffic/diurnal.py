"""Diurnal load profiles and non-homogeneous Poisson arrivals.

A research network's flow rate is far from flat: a deep trough around
04:00, a daytime plateau, an evening peak. The generator samples flow
start times from a Poisson process whose rate follows such a profile,
via thinning — so the firewall-glitch experiment's "very short time
period each night" sits in realistically quiet hours.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

NS_PER_S = 1_000_000_000
NS_PER_HOUR = 3600 * NS_PER_S
NS_PER_DAY = 24 * NS_PER_HOUR


@dataclass(frozen=True)
class DiurnalProfile:
    """Relative load by hour of day.

    Attributes:
        hourly: 24 non-negative multipliers; 1.0 = the mean level.
            Linearly interpolated between hour marks.
    """

    hourly: Tuple[float, ...] = (
        0.35, 0.25, 0.20, 0.18, 0.18, 0.25,  # 00-05: night trough
        0.45, 0.70, 0.95, 1.10, 1.20, 1.25,  # 06-11: morning ramp
        1.25, 1.25, 1.20, 1.15, 1.20, 1.30,  # 12-17: daytime plateau
        1.45, 1.55, 1.50, 1.30, 0.90, 0.55,  # 18-23: evening peak
    )

    def __post_init__(self):
        if len(self.hourly) != 24:
            raise ValueError("profile needs exactly 24 hourly values")
        if any(value < 0 for value in self.hourly):
            raise ValueError("profile values cannot be negative")
        if max(self.hourly) == 0:
            raise ValueError("profile cannot be all-zero")

    @classmethod
    def flat(cls) -> "DiurnalProfile":
        """A constant-rate profile (useful in unit tests)."""
        return cls(hourly=(1.0,) * 24)

    def multiplier(self, time_ns: int) -> float:
        """Interpolated load multiplier at *time_ns* (wraps daily)."""
        time_of_day = time_ns % NS_PER_DAY
        hour_float = time_of_day / NS_PER_HOUR
        hour = int(hour_float)
        fraction = hour_float - hour
        current = self.hourly[hour % 24]
        following = self.hourly[(hour + 1) % 24]
        return current * (1 - fraction) + following * fraction

    @property
    def peak(self) -> float:
        return max(self.hourly)


def poisson_arrivals(
    rng: random.Random,
    mean_rate_per_s: float,
    start_ns: int,
    end_ns: int,
    profile: DiurnalProfile,
) -> Iterator[int]:
    """Flow start times from a thinned non-homogeneous Poisson process.

    The candidate process runs at ``mean_rate × profile.peak``;
    candidates are kept with probability ``multiplier(t) / peak``,
    yielding exactly the profile's shape.
    """
    if mean_rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if end_ns < start_ns:
        raise ValueError("window ends before it starts")
    peak_rate = mean_rate_per_s * profile.peak
    t = start_ns
    while True:
        # Exponential inter-arrival at the peak rate.
        gap_s = rng.expovariate(peak_rate)
        t += int(gap_s * NS_PER_S) + 1
        if t >= end_ns:
            return
        if rng.random() <= profile.multiplier(t) / profile.peak:
            yield t


def expected_count(
    mean_rate_per_s: float, start_ns: int, end_ns: int, profile: DiurnalProfile
) -> float:
    """Expected number of arrivals in the window (for test bounds)."""
    total = 0.0
    step = NS_PER_HOUR // 4
    t = start_ns
    while t < end_ns:
        width = min(step, end_ns - t)
        total += mean_rate_per_s * profile.multiplier(t) * (width / NS_PER_S)
        t += width
    return total
