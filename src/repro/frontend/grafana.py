"""Grafana dashboard-model export.

The paper's statistics UI *is* Grafana; a reproduction's dashboards
should therefore be loadable by one. This module renders a
:class:`~repro.frontend.dashboard.Dashboard` into the Grafana JSON
dashboard model (schema v16-ish, the stable core fields), with each
panel's query expressed in InfluxQL via
:func:`repro.tsdb.ql.format_query` — so the export is also an exact
textual record of what each panel computes.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.frontend.dashboard import Dashboard, Panel
from repro.tsdb.ql import format_query

_PANEL_WIDTH = 12
_PANEL_HEIGHT = 8


def panel_to_grafana(panel: Panel, panel_id: int, x: int, y: int) -> dict:
    """One Grafana graph panel with an InfluxQL target."""
    return {
        "id": panel_id,
        "title": panel.title,
        "type": "graph",
        "datasource": "ruru-influxdb",
        "gridPos": {"h": _PANEL_HEIGHT, "w": _PANEL_WIDTH, "x": x, "y": y},
        "targets": [
            {
                "refId": "A",
                "rawQuery": True,
                "query": format_query(panel.query),
            }
        ],
        "yaxes": [
            {"format": "ms" if panel.unit == "ms" else "short", "label": panel.unit},
            {"format": "short"},
        ],
        "lines": True,
        "fill": 1,
        "legend": {"show": True, "values": False},
    }


def export_grafana_json(
    dashboard: Dashboard,
    uid: str = "ruru-latency",
    refresh: str = "5s",
    indent: Optional[int] = None,
) -> str:
    """Serialize *dashboard* to a Grafana dashboard JSON document."""
    panels: List[dict] = []
    for index, panel in enumerate(dashboard.panels):
        x = (index % 2) * _PANEL_WIDTH
        y = (index // 2) * _PANEL_HEIGHT
        panels.append(panel_to_grafana(panel, panel_id=index + 1, x=x, y=y))
    model = {
        "uid": uid,
        "title": dashboard.title,
        "schemaVersion": 16,
        "version": 1,
        "refresh": refresh,
        "time": {"from": "now-15m", "to": "now"},
        "panels": panels,
        "templating": {"list": []},
        "annotations": {"list": []},
    }
    return json.dumps(model, indent=indent, sort_keys=True)
