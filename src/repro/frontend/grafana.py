"""Grafana dashboard-model export.

The paper's statistics UI *is* Grafana; a reproduction's dashboards
should therefore be loadable by one. This module renders a
:class:`~repro.frontend.dashboard.Dashboard` into the Grafana JSON
dashboard model (schema v16-ish, the stable core fields), with each
panel's query expressed in InfluxQL via
:func:`repro.tsdb.ql.format_query` — so the export is also an exact
textual record of what each panel computes.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.frontend.dashboard import Dashboard, Panel
from repro.tsdb.query import Query
from repro.tsdb.ql import format_query

_PANEL_WIDTH = 12
_PANEL_HEIGHT = 8


def panel_to_grafana(panel: Panel, panel_id: int, x: int, y: int) -> dict:
    """One Grafana graph panel with an InfluxQL target."""
    return {
        "id": panel_id,
        "title": panel.title,
        "type": "graph",
        "datasource": "ruru-influxdb",
        "gridPos": {"h": _PANEL_HEIGHT, "w": _PANEL_WIDTH, "x": x, "y": y},
        "targets": [
            {
                "refId": "A",
                "rawQuery": True,
                "query": format_query(panel.query),
            }
        ],
        "yaxes": [
            {"format": "ms" if panel.unit == "ms" else "short", "label": panel.unit},
            {"format": "short"},
        ],
        "lines": True,
        "fill": 1,
        "legend": {"show": True, "values": False},
    }


def build_selfmon_dashboard(interval_ns: int = 1_000_000_000) -> Dashboard:
    """The pipeline-watches-itself dashboard.

    Panels over the self-monitoring series the
    :class:`~repro.obs.exporter.TelemetryExporter` writes — the
    counters that made the paper's firewall anomaly credible: NIC drops
    (``imissed``), per-stage throughput, parse-drop reasons and queue
    balance. Export with :func:`export_grafana_json` like the latency
    dashboard; the measurements are cumulative counters, so ``last``
    per window shows totals and per-window deltas are one Grafana
    transform away.
    """

    def counter_panel(title: str, measurement: str, group_by=None, unit="ops"):
        return Panel(
            title=title,
            query=Query(
                measurement=measurement,
                field="value",
                aggregator="last",
                group_by_tags=list(group_by or []),
                group_by_time_ns=interval_ns,
            ),
            unit=unit,
        )

    dashboard = Dashboard(title="Ruru self-monitoring")
    dashboard.add_panel(
        counter_panel("packets offered", "ruru_packets_offered_total", unit="pkts")
    )
    dashboard.add_panel(
        counter_panel("NIC drops (imissed)", "ruru_nic_imissed_total", unit="pkts")
    )
    dashboard.add_panel(
        counter_panel("measurements emitted", "ruru_measurements_total")
    )
    dashboard.add_panel(
        counter_panel(
            "parse errors by reason",
            "ruru_parse_errors_by_reason_total",
            group_by=["reason"],
            unit="pkts",
        )
    )
    dashboard.add_panel(
        counter_panel(
            "per-queue packets processed",
            "ruru_worker_packets_processed_total",
            group_by=["queue"],
            unit="pkts",
        )
    )
    dashboard.add_panel(
        counter_panel(
            "tracker events",
            "ruru_tracker_events_total",
            group_by=["event"],
        )
    )
    dashboard.add_panel(
        counter_panel(
            "flow-table occupancy",
            "ruru_flow_table_entries",
            group_by=["queue"],
            unit="flows",
        )
    )
    dashboard.add_panel(
        counter_panel("mq publishes", "ruru_mq_push_sent_total", unit="msgs")
    )
    dashboard.add_panel(
        counter_panel(
            "analytics enriched", "ruru_analytics_enriched_total"
        )
    )
    dashboard.add_panel(
        counter_panel("tsdb points resident", "ruru_tsdb_points", unit="pts")
    )
    return dashboard


def export_grafana_json(
    dashboard: Dashboard,
    uid: str = "ruru-latency",
    refresh: str = "5s",
    indent: Optional[int] = None,
) -> str:
    """Serialize *dashboard* to a Grafana dashboard JSON document."""
    panels: List[dict] = []
    for index, panel in enumerate(dashboard.panels):
        x = (index % 2) * _PANEL_WIDTH
        y = (index // 2) * _PANEL_HEIGHT
        panels.append(panel_to_grafana(panel, panel_id=index + 1, x=x, y=y))
    model = {
        "uid": uid,
        "title": dashboard.title,
        "schemaVersion": 16,
        "version": 1,
        "refresh": refresh,
        "time": {"from": "now-15m", "to": "now"},
        "panels": panels,
        "templating": {"list": []},
        "annotations": {"list": []},
    }
    return json.dumps(model, indent=indent, sort_keys=True)
