"""Frontends: the WebSocket feed, the 3D arc map, and dashboards.

The paper's frontends are a browser: a WebGL/MapGL live map drawing
"multiple thousands of 3D arcs … with 30 fps", fed over WebSockets,
plus Grafana panels over InfluxDB. The *browser rendering* is out of
scope for a Python reproduction; everything measurable about the
frontends is in scope and implemented here:

* :mod:`repro.frontend.websocket` — RFC 6455 frame encoding and an
  in-memory server↔client channel, so "sent to the frontend" is real
  serialization, not hand-waving.
* :mod:`repro.frontend.arcs` — the arc data model: great-circle
  geometry between endpoints and the latency→colour mapping the demo
  describes ("red lines in areas where most lines are green show
  increased latency").
* :mod:`repro.frontend.map_view` — the live map state machine: arc
  lifetimes, 30 fps frame batching, per-frame arc budgets.
* :mod:`repro.frontend.dashboard` — Grafana-shaped panels compiled to
  TSDB queries (min/max/median/mean over a required interval).
"""

from repro.frontend.websocket import (
    CloseFrame,
    WebSocketChannel,
    WebSocketError,
    decode_frame,
    encode_frame,
)
from repro.frontend.arcs import Arc, LatencyColorScale, great_circle_points
from repro.frontend.map_view import LiveMapView, MapFrame
from repro.frontend.dashboard import Dashboard, Panel, PanelResult, build_ruru_dashboard
from repro.frontend.heatmap import Heatmap, LatencyBuckets, render_heatmap
from repro.frontend.alerts import AlertChannel
from repro.frontend.grafana import export_grafana_json

__all__ = [
    "CloseFrame",
    "WebSocketChannel",
    "WebSocketError",
    "decode_frame",
    "encode_frame",
    "Arc",
    "LatencyColorScale",
    "great_circle_points",
    "LiveMapView",
    "MapFrame",
    "Dashboard",
    "Panel",
    "PanelResult",
    "build_ruru_dashboard",
    "Heatmap",
    "LatencyBuckets",
    "render_heatmap",
    "AlertChannel",
    "export_grafana_json",
]
