"""3D arc model: geometry and the latency colour scale.

Each completed measurement becomes an arc from source to destination
coordinates. The demo's visual signal is the colour: "red lines in
areas where most lines are green show increased latency for some
connections" — so the colour scale is the load-bearing part, and it
is computed here, testably, rather than in a shader.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.analytics.enricher import EnrichedMeasurement
from repro.geo.distance import haversine_km


@dataclass(frozen=True)
class LatencyColorScale:
    """Maps total latency to the map's traffic-light colours.

    Thresholds default to values sensible for the Auckland–LA link
    (~130 ms baseline): green below *warn_ms*, yellow below
    *alarm_ms*, red above.
    """

    warn_ms: float = 200.0
    alarm_ms: float = 400.0

    def __post_init__(self):
        if self.warn_ms <= 0 or self.alarm_ms <= self.warn_ms:
            raise ValueError("thresholds must satisfy 0 < warn < alarm")

    def color_for(self, total_ms: float) -> str:
        """``"green"``, ``"yellow"`` or ``"red"`` for *total_ms*."""
        if total_ms < self.warn_ms:
            return "green"
        if total_ms < self.alarm_ms:
            return "yellow"
        return "red"

    def rgba_for(self, total_ms: float) -> Tuple[int, int, int, float]:
        """The render colour with a continuous red ramp inside bands."""
        name = self.color_for(total_ms)
        if name == "green":
            return (46, 204, 113, 0.8)
        if name == "yellow":
            return (241, 196, 15, 0.85)
        return (231, 76, 60, 0.9)


def great_circle_points(
    lat1: float, lon1: float, lat2: float, lon2: float, segments: int = 16
) -> List[Tuple[float, float]]:
    """Sample the great circle between two points (inclusive endpoints).

    This is the polyline a WebGL arc would be extruded from; the tests
    check it stays on the sphere and hits both endpoints.
    """
    if segments < 1:
        raise ValueError("need at least one segment")
    phi1, lam1 = math.radians(lat1), math.radians(lon1)
    phi2, lam2 = math.radians(lat2), math.radians(lon2)
    # Angular distance via the spherical law of cosines (stable enough
    # for rendering; haversine is used for distances).
    cos_delta = (
        math.sin(phi1) * math.sin(phi2)
        + math.cos(phi1) * math.cos(phi2) * math.cos(lam2 - lam1)
    )
    delta = math.acos(max(-1.0, min(1.0, cos_delta)))
    # acos noise near identical points can reach ~1e-8 rad; anything
    # below a metre of separation renders as a point anyway.
    if delta < 1e-7:
        return [(lat1, lon1)] * (segments + 1)
    points: List[Tuple[float, float]] = []
    sin_delta = math.sin(delta)
    for i in range(segments + 1):
        fraction = i / segments
        a = math.sin((1 - fraction) * delta) / sin_delta
        b = math.sin(fraction * delta) / sin_delta
        x = a * math.cos(phi1) * math.cos(lam1) + b * math.cos(phi2) * math.cos(lam2)
        y = a * math.cos(phi1) * math.sin(lam1) + b * math.cos(phi2) * math.sin(lam2)
        z = a * math.sin(phi1) + b * math.sin(phi2)
        points.append(
            (math.degrees(math.atan2(z, math.hypot(x, y))), math.degrees(math.atan2(y, x)))
        )
    return points


@dataclass(frozen=True)
class Arc:
    """One rendered connection.

    Attributes:
        src / dst: (lat, lon) endpoints.
        color: traffic-light colour from the scale.
        total_ms: the measurement behind the arc.
        height_km: apex height — proportional to span, as MapGL-style
            arcs are drawn.
        born_ns: when the arc appeared (drives expiry).
    """

    src: Tuple[float, float]
    dst: Tuple[float, float]
    color: str
    total_ms: float
    height_km: float
    born_ns: int
    src_label: str = ""
    dst_label: str = ""

    @classmethod
    def from_measurement(
        cls,
        measurement: EnrichedMeasurement,
        scale: LatencyColorScale,
        born_ns: int,
    ) -> "Arc":
        """Build the arc for one enriched measurement."""
        distance = haversine_km(
            measurement.src_lat,
            measurement.src_lon,
            measurement.dst_lat,
            measurement.dst_lon,
        )
        return cls(
            src=(measurement.src_lat, measurement.src_lon),
            dst=(measurement.dst_lat, measurement.dst_lon),
            color=scale.color_for(measurement.total_ms),
            total_ms=measurement.total_ms,
            height_km=distance * 0.15,
            born_ns=born_ns,
            src_label=measurement.src_city,
            dst_label=measurement.dst_city,
        )

    def to_json(self) -> dict:
        """The wire shape sent over the WebSocket feed."""
        return {
            "src": [round(self.src[0], 4), round(self.src[1], 4)],
            "dst": [round(self.dst[0], 4), round(self.dst[1], 4)],
            "color": self.color,
            "ms": round(self.total_ms, 2),
            "h": round(self.height_km, 1),
            "from": self.src_label,
            "to": self.dst_label,
        }
