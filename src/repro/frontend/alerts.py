"""Operator alerting: anomaly events pushed to the browser.

"Ruru can also be used to visually alert operators to latency
anomalies" — beyond arc colours, the deployment pushes detector
events to the UI the moment they fire. :class:`AlertChannel` is the
sink: plug :meth:`publish` into
:class:`~repro.anomaly.manager.AnomalyManager`'s ``alert_sink`` and
every confirmed event goes out as a JSON message over the WebSocket,
tagged with a severity the UI maps to toast colours.
"""

from __future__ import annotations

from typing import List, Optional

from repro.anomaly.events import AnomalyEvent, Severity
from repro.frontend.websocket import WebSocketChannel

_SEVERITY_COLORS = {
    Severity.INFO: "#3498db",
    Severity.WARNING: "#f1c40f",
    Severity.CRITICAL: "#e74c3c",
}


class AlertChannel:
    """Streams anomaly events to the frontend as JSON messages.

    Args:
        channel: the WebSocket to the browser.
        burst / refill_per_s: token-bucket rate limit on pushed alerts
            (an alert storm — a flood flagging dozens of /24s — must
            not itself melt the UI). Suppressed alerts stay in
            :attr:`history`; only the push is skipped.
    """

    def __init__(
        self,
        channel: Optional[WebSocketChannel] = None,
        burst: int = 20,
        refill_per_s: float = 1.0,
    ):
        if burst < 1 or refill_per_s <= 0:
            raise ValueError("burst must be >= 1 and refill positive")
        self.channel = channel or WebSocketChannel(name="alerts")
        self.published = 0
        self.suppressed = 0
        self.history: List[AnomalyEvent] = []
        self._burst = float(burst)
        self._refill_per_s = refill_per_s
        self._tokens = float(burst)
        self._last_refill_ns: Optional[int] = None

    def _take_token(self, now_ns: int) -> bool:
        if self._last_refill_ns is not None and now_ns > self._last_refill_ns:
            elapsed_s = (now_ns - self._last_refill_ns) / 1e9
            self._tokens = min(
                self._burst, self._tokens + elapsed_s * self._refill_per_s
            )
        self._last_refill_ns = now_ns
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def publish(self, event: AnomalyEvent) -> None:
        """Send one event (the AnomalyManager ``alert_sink`` shape)."""
        self.history.append(event)
        if not self._take_token(event.start_ns):
            self.suppressed += 1
            return
        self.published += 1
        self.channel.server_send_json(self._to_json(event))

    @staticmethod
    def _to_json(event: AnomalyEvent) -> dict:
        return {
            "type": "alert",
            "kind": event.kind,
            "severity": event.severity.name.lower(),
            "color": _SEVERITY_COLORS[event.severity],
            "subject": event.subject,
            "description": event.description,
            "start_ms": event.start_ns // 1_000_000,
            "ongoing": event.is_open,
            "evidence": {k: round(v, 3) for k, v in event.evidence.items()},
        }

    def unacknowledged(self) -> List[dict]:
        """Drain the client side (what the browser has not yet read)."""
        return self.channel.client_recv_all_json()

    def worst_active(self) -> Optional[AnomalyEvent]:
        """The most severe still-open event, for a status header."""
        open_events = [event for event in self.history if event.is_open]
        if not open_events:
            return None
        return max(open_events, key=lambda e: (int(e.severity), e.start_ns))
