"""Latency heatmaps: time × latency-bucket densities.

Grafana's heatmap panel is the natural way to look at a latency
*population* over time — the firewall glitch appears as a detached
band at 4000 ms while the mean barely moves. Buckets are log-spaced
(latency spans four orders of magnitude); rendering reads raw series
rows straight from storage, bypassing the scalar aggregators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.tsdb.database import TimeSeriesDatabase


@dataclass(frozen=True)
class LatencyBuckets:
    """Log-spaced bucket edges, in ms.

    Attributes:
        minimum_ms / maximum_ms: range covered; values outside clamp
            to the first/last bucket.
        count: number of buckets.
    """

    minimum_ms: float = 1.0
    maximum_ms: float = 10_000.0
    count: int = 20

    def __post_init__(self):
        if self.minimum_ms <= 0 or self.maximum_ms <= self.minimum_ms:
            raise ValueError("need 0 < minimum < maximum")
        if self.count < 2:
            raise ValueError("need at least two buckets")

    def index_of(self, value_ms: float) -> int:
        """Bucket index for *value_ms*, clamped to the range."""
        if value_ms <= self.minimum_ms:
            return 0
        if value_ms >= self.maximum_ms:
            return self.count - 1
        span = math.log(self.maximum_ms / self.minimum_ms)
        position = math.log(value_ms / self.minimum_ms) / span
        return min(self.count - 1, int(position * self.count))

    def edges(self) -> List[float]:
        """The count+1 bucket edges in ms."""
        ratio = (self.maximum_ms / self.minimum_ms) ** (1.0 / self.count)
        return [self.minimum_ms * ratio**i for i in range(self.count + 1)]

    def label(self, index: int) -> str:
        edges = self.edges()
        return f"{edges[index]:.0f}-{edges[index + 1]:.0f}ms"


@dataclass
class Heatmap:
    """The rendered grid: ``cells[window_start_ns][bucket] = count``."""

    buckets: LatencyBuckets
    window_ns: int
    cells: Dict[int, List[int]] = field(default_factory=dict)
    total: int = 0

    def add(self, timestamp_ns: int, value_ms: float) -> None:
        window = (timestamp_ns // self.window_ns) * self.window_ns
        row = self.cells.get(window)
        if row is None:
            row = [0] * self.buckets.count
            self.cells[window] = row
        row[self.buckets.index_of(value_ms)] += 1
        self.total += 1

    def windows(self) -> List[int]:
        return sorted(self.cells)

    def column(self, bucket_index: int) -> List[int]:
        """Counts of one latency band across time (band-tracking)."""
        return [self.cells[w][bucket_index] for w in self.windows()]

    def hottest_bucket(self, window_start_ns: int) -> Optional[int]:
        row = self.cells.get(window_start_ns)
        if not row or not any(row):
            return None
        return max(range(len(row)), key=lambda i: row[i])

    def ascii(self, shades: str = " .:-=+*#%@") -> str:
        """Terminal rendering: time left→right, latency bottom→top."""
        windows = self.windows()
        if not windows:
            return "(empty heatmap)"
        peak = max(max(row) for row in self.cells.values()) or 1
        lines = []
        for bucket in range(self.buckets.count - 1, -1, -1):
            cells = []
            for window in windows:
                count = self.cells[window][bucket]
                shade = shades[min(len(shades) - 1,
                                   int(count / peak * (len(shades) - 1) + 0.5))]
                cells.append(shade)
            lines.append(f"{self.buckets.label(bucket):>14} |{''.join(cells)}|")
        return "\n".join(lines)


def render_heatmap(
    tsdb: TimeSeriesDatabase,
    measurement: str = "latency",
    field_name: str = "total_ms",
    window_ns: int = 10 * 1_000_000_000,
    buckets: Optional[LatencyBuckets] = None,
    tag_filters: Optional[Dict[str, Sequence[str]]] = None,
    start_ns: Optional[int] = None,
    end_ns: Optional[int] = None,
) -> Heatmap:
    """Build a heatmap from raw series rows in *tsdb*."""
    heatmap = Heatmap(buckets=buckets or LatencyBuckets(), window_ns=window_ns)
    filters = {k: list(v) for k, v in (tag_filters or {}).items()}
    for series in tsdb.storage.select_series(measurement, filters or None):
        for timestamp, value in series.values(field_name, start_ns, end_ns):
            heatmap.add(timestamp, value)
    return heatmap
