"""The live map's server-side state machine.

The browser draws whatever frames it is sent; everything measurable
about "multiple thousands of connections per second on a live 3D map
… with 30 fps" happens here: measurements become arcs, arcs live for
a few seconds then expire, and the feed is batched into frames no
faster than the configured fps, each frame bounded to an arc budget
so a burst cannot melt the client.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.analytics.enricher import EnrichedMeasurement
from repro.analytics.topk import SpaceSaving
from repro.frontend.arcs import Arc, LatencyColorScale
from repro.frontend.websocket import WebSocketChannel

NS_PER_S = 1_000_000_000


@dataclass
class MapFrame:
    """One frame of the feed: arcs added since the previous frame."""

    frame_index: int
    timestamp_ns: int
    arcs: List[Arc] = field(default_factory=list)
    active_arcs: int = 0
    dropped_arcs: int = 0

    def to_json(self) -> dict:
        return {
            "frame": self.frame_index,
            "t_ms": self.timestamp_ns // 1_000_000,
            "active": self.active_arcs,
            "dropped": self.dropped_arcs,
            "arcs": [arc.to_json() for arc in self.arcs],
        }


class LiveMapView:
    """Batches measurements into ≤fps frames with bounded arc counts.

    Args:
        channel: WebSocket channel to the browser (frames are also
            kept in :attr:`frames` for inspection when None).
        fps: maximum frame rate (paper: 30).
        arc_ttl_s: how long an arc stays on the map.
        max_arcs_per_frame: new-arc budget per frame; overflow within
            a frame interval is dropped and counted, which is how a
            real feed protects the renderer.
        scale: latency colour scale.
    """

    def __init__(
        self,
        channel: Optional[WebSocketChannel] = None,
        fps: int = 30,
        arc_ttl_s: float = 3.0,
        max_arcs_per_frame: int = 500,
        scale: Optional[LatencyColorScale] = None,
    ):
        if fps <= 0:
            raise ValueError("fps must be positive")
        if arc_ttl_s <= 0:
            raise ValueError("arc_ttl_s must be positive")
        if max_arcs_per_frame <= 0:
            raise ValueError("max_arcs_per_frame must be positive")
        self.channel = channel
        self.fps = fps
        self.frame_interval_ns = NS_PER_S // fps
        self.arc_ttl_ns = int(arc_ttl_s * NS_PER_S)
        self.max_arcs_per_frame = max_arcs_per_frame
        self.scale = scale or LatencyColorScale()

        self._pending: List[Arc] = []
        self._active: Deque[Arc] = deque()
        # Bounded heavy-hitter tracking for the "busiest pairs" widget.
        self._pair_tracker: SpaceSaving = SpaceSaving(capacity=256)
        self._last_frame_ns: Optional[int] = None
        self._frame_index = 0
        self.frames: List[MapFrame] = []
        self.arcs_in = 0
        self.arcs_dropped = 0
        self.frames_sent = 0

    # -- input ---------------------------------------------------------------

    def add_measurement(self, measurement: EnrichedMeasurement, now_ns: int) -> None:
        """Queue a measurement's arc for the next frame."""
        self.arcs_in += 1
        self._pair_tracker.add(measurement.location_pair)
        if len(self._pending) >= self.max_arcs_per_frame:
            self.arcs_dropped += 1
            return
        self._pending.append(Arc.from_measurement(measurement, self.scale, now_ns))

    # -- ticking ---------------------------------------------------------------

    def tick(self, now_ns: int) -> Optional[MapFrame]:
        """Emit a frame if the frame interval elapsed; else None.

        Call as often as convenient — at most ``fps`` frames per
        virtual second come out.
        """
        if (
            self._last_frame_ns is not None
            and now_ns - self._last_frame_ns < self.frame_interval_ns
        ):
            return None
        return self.flush_frame(now_ns)

    def flush_frame(self, now_ns: int) -> MapFrame:
        """Unconditionally emit a frame with everything pending."""
        self._expire(now_ns)
        arcs, self._pending = self._pending, []
        self._active.extend(arcs)
        dropped_now = self.arcs_dropped
        frame = MapFrame(
            frame_index=self._frame_index,
            timestamp_ns=now_ns,
            arcs=arcs,
            active_arcs=len(self._active),
            dropped_arcs=dropped_now,
        )
        self._frame_index += 1
        self._last_frame_ns = now_ns
        self.frames_sent += 1
        if self.channel is not None:
            self.channel.server_send_json(frame.to_json())
        else:
            self.frames.append(frame)
        return frame

    def _expire(self, now_ns: int) -> None:
        cutoff = now_ns - self.arc_ttl_ns
        while self._active and self._active[0].born_ns < cutoff:
            self._active.popleft()

    # -- reporting --------------------------------------------------------------

    @property
    def active_arc_count(self) -> int:
        return len(self._active)

    def busiest_pairs(self, k: int = 5) -> List[tuple]:
        """Top city pairs by connection count (Space-Saving estimate):
        ``[((src, dst), count), ...]``, largest first."""
        return [
            (entry.key, entry.count) for entry in self._pair_tracker.top(k)
        ]

    def color_histogram(self) -> dict:
        """Counts of active arcs by colour — the operator's glance:
        'red lines in areas where most lines are green'.
        """
        histogram = {"green": 0, "yellow": 0, "red": 0}
        for arc in self._active:
            histogram[arc.color] = histogram.get(arc.color, 0) + 1
        return histogram
