"""Grafana-shaped dashboards compiled to TSDB queries.

"The Grafana UI also shows statistics and graphs of the measured
end-to-end latency (e.g., min, max, median, mean) for a required time
interval." A :class:`Panel` is one such graph: a query template plus
presentation hints; a :class:`Dashboard` renders all panels against a
:class:`~repro.tsdb.database.TimeSeriesDatabase` for a time range.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.query import GroupKey, Query


@dataclass
class Panel:
    """One dashboard panel: a titled query."""

    title: str
    query: Query
    unit: str = "ms"

    def render(
        self,
        tsdb: TimeSeriesDatabase,
        start_ns: Optional[int] = None,
        end_ns: Optional[int] = None,
    ) -> "PanelResult":
        """Execute this panel's query over [start, end)."""
        query = replace(self.query)
        if start_ns is not None:
            query.start_ns = start_ns
        if end_ns is not None:
            query.end_ns = end_ns
        result = tsdb.query(query)
        return PanelResult(title=self.title, unit=self.unit, groups=dict(result.groups))


@dataclass
class PanelResult:
    """Rendered panel data: rows per group."""

    title: str
    unit: str
    groups: Dict[GroupKey, List[Tuple[int, float]]] = field(default_factory=dict)

    def series_labels(self) -> List[str]:
        """Human labels for the groups, e.g. ``"src_country=NZ"``."""
        labels = []
        for key in sorted(self.groups):
            labels.append(
                ", ".join(f"{tag}={value}" for tag, value in key) or "all"
            )
        return labels

    def latest(self) -> Dict[str, float]:
        """The newest value per group (singlestat-style)."""
        out = {}
        for key, rows in self.groups.items():
            if rows:
                label = ", ".join(f"{t}={v}" for t, v in key) or "all"
                out[label] = rows[-1][1]
        return out


@dataclass
class Dashboard:
    """A set of panels rendered together."""

    title: str
    panels: List[Panel] = field(default_factory=list)

    def add_panel(self, panel: Panel) -> None:
        self.panels.append(panel)

    def render(
        self,
        tsdb: TimeSeriesDatabase,
        start_ns: Optional[int] = None,
        end_ns: Optional[int] = None,
    ) -> List[PanelResult]:
        """Render every panel over the same interval."""
        return [panel.render(tsdb, start_ns, end_ns) for panel in self.panels]


def build_ruru_dashboard(
    interval_ns: int = 60 * 1_000_000_000,
    src_country: Optional[str] = None,
    dst_country: Optional[str] = None,
) -> Dashboard:
    """The default Ruru dashboard: the four statistics the paper lists
    (min, max, median, mean of end-to-end latency) as time-series
    panels grouped by country pair, plus a connections-per-window
    panel from the pair rollups.
    """
    tag_filters: Dict[str, List[str]] = {}
    if src_country:
        tag_filters["src_country"] = [src_country]
    if dst_country:
        tag_filters["dst_country"] = [dst_country]

    dashboard = Dashboard(title="Ruru end-to-end latency")
    for aggregator in ("min", "max", "median", "mean"):
        dashboard.add_panel(
            Panel(
                title=f"{aggregator} end-to-end latency",
                query=Query(
                    measurement="latency",
                    field="total_ms",
                    aggregator=aggregator,
                    tag_filters=dict(tag_filters),
                    group_by_tags=["src_country", "dst_country"],
                    group_by_time_ns=interval_ns,
                ),
            )
        )
    dashboard.add_panel(
        Panel(
            title="connections per window",
            query=Query(
                measurement="latency_by_location",
                field="connections",
                aggregator="sum",
                group_by_tags=["src_city", "dst_city"],
                group_by_time_ns=interval_ns,
            ),
            unit="conn",
        )
    )
    dashboard.add_panel(
        Panel(
            title="mean latency by direction",
            query=Query(
                measurement="latency",
                field="total_ms",
                aggregator="mean",
                tag_filters=dict(tag_filters),
                group_by_tags=["direction"],
                group_by_time_ns=interval_ns,
            ),
        )
    )
    return dashboard
