"""RFC 6455 WebSocket framing and an in-memory channel.

Implements the data-plane parts of the protocol that carry Ruru's
frontend feed: frame encode/decode (FIN bit, opcodes, 7/16/64-bit
payload lengths, client-side masking) and a server↔client channel
whose bytes genuinely round-trip through the framing layer — so the
frontend benches measure real serialization work.

The HTTP upgrade handshake is out of scope (it happens once per
browser session and carries no measurement traffic).
"""

from __future__ import annotations

import json
import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

OP_CONTINUATION = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})
_ALL_OPCODES = frozenset({OP_CONTINUATION, OP_TEXT, OP_BINARY}) | _CONTROL_OPCODES


class WebSocketError(ValueError):
    """Raised for malformed frames or protocol violations."""


@dataclass(frozen=True)
class CloseFrame:
    """A decoded close frame: status code plus optional reason."""

    code: int = 1000
    reason: str = ""


def _mask_payload(payload: bytes, mask: bytes) -> bytes:
    return bytes(b ^ mask[i % 4] for i, b in enumerate(payload))


def encode_frame(
    opcode: int,
    payload: bytes,
    fin: bool = True,
    mask: Optional[bytes] = None,
) -> bytes:
    """Serialize one frame.

    Client→server frames must carry a 4-byte *mask* (RFC 6455 §5.3);
    server→client frames must not.
    """
    if opcode not in _ALL_OPCODES:
        raise WebSocketError(f"unknown opcode 0x{opcode:x}")
    if opcode in _CONTROL_OPCODES:
        if not fin:
            raise WebSocketError("control frames cannot be fragmented")
        if len(payload) > 125:
            raise WebSocketError("control frame payload exceeds 125 bytes")
    header = bytearray()
    header.append((0x80 if fin else 0) | opcode)
    mask_bit = 0x80 if mask is not None else 0
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask is not None:
        if len(mask) != 4:
            raise WebSocketError("mask must be 4 bytes")
        header += mask
        payload = _mask_payload(payload, mask)
    return bytes(header) + payload


def decode_frame(data: bytes) -> Tuple[int, bytes, bool, int]:
    """Parse one frame from *data*.

    Returns (opcode, payload, fin, bytes_consumed); raises
    :class:`WebSocketError` if the buffer holds no complete frame.
    """
    if len(data) < 2:
        raise WebSocketError("incomplete frame header")
    fin = bool(data[0] & 0x80)
    if data[0] & 0x70:
        raise WebSocketError("reserved bits set without extension")
    opcode = data[0] & 0x0F
    if opcode not in _ALL_OPCODES:
        raise WebSocketError(f"unknown opcode 0x{opcode:x}")
    masked = bool(data[1] & 0x80)
    length = data[1] & 0x7F
    offset = 2
    if length == 126:
        if len(data) < offset + 2:
            raise WebSocketError("incomplete 16-bit length")
        length = struct.unpack_from("!H", data, offset)[0]
        offset += 2
    elif length == 127:
        if len(data) < offset + 8:
            raise WebSocketError("incomplete 64-bit length")
        length = struct.unpack_from("!Q", data, offset)[0]
        offset += 8
    mask = None
    if masked:
        if len(data) < offset + 4:
            raise WebSocketError("incomplete mask")
        mask = data[offset:offset + 4]
        offset += 4
    if len(data) < offset + length:
        raise WebSocketError("incomplete payload")
    payload = data[offset:offset + length]
    if mask is not None:
        payload = _mask_payload(payload, mask)
    return opcode, bytes(payload), fin, offset + length


class WebSocketChannel:
    """An in-memory server↔client WebSocket connection.

    Every message is encoded to wire bytes on send and decoded on
    receive; the channel also tracks byte counters so benches can
    report feed bandwidth.
    """

    def __init__(self, name: str = "ws"):
        self.name = name
        self._to_client: Deque[bytes] = deque()
        self._to_server: Deque[bytes] = deque()
        self.open = True
        self.close_frame: Optional[CloseFrame] = None
        self.bytes_to_client = 0
        self.bytes_to_server = 0
        self.messages_to_client = 0

    def _require_open(self) -> None:
        if not self.open:
            raise WebSocketError(f"{self.name}: channel is closed")

    # -- server side ------------------------------------------------------

    def server_send_text(self, text: str) -> int:
        """Send a text message to the client; returns wire bytes."""
        self._require_open()
        frame = encode_frame(OP_TEXT, text.encode("utf-8"))
        self._to_client.append(frame)
        self.bytes_to_client += len(frame)
        self.messages_to_client += 1
        return len(frame)

    def server_send_json(self, obj) -> int:
        """JSON-serialize and send (the map feed's message shape)."""
        return self.server_send_text(json.dumps(obj, separators=(",", ":")))

    def server_close(self, code: int = 1000, reason: str = "") -> None:
        """Initiate a close from the server side."""
        self._require_open()
        payload = struct.pack("!H", code) + reason.encode("utf-8")
        self._to_client.append(encode_frame(OP_CLOSE, payload))
        self.open = False
        self.close_frame = CloseFrame(code, reason)

    # -- client side --------------------------------------------------------

    def client_recv_text(self) -> Optional[str]:
        """Receive one text message; None when nothing is queued."""
        while self._to_client:
            frame = self._to_client.popleft()
            opcode, payload, _fin, _consumed = decode_frame(frame)
            if opcode == OP_TEXT:
                return payload.decode("utf-8")
            if opcode == OP_CLOSE:
                code = struct.unpack("!H", payload[:2])[0] if len(payload) >= 2 else 1000
                self.close_frame = CloseFrame(code, payload[2:].decode("utf-8"))
                return None
        return None

    def client_recv_json(self):
        """Receive and JSON-decode one message; None when queue is empty."""
        text = self.client_recv_text()
        return None if text is None else json.loads(text)

    def client_recv_all_json(self) -> List[dict]:
        """Drain all queued JSON messages."""
        out = []
        while True:
            obj = self.client_recv_json()
            if obj is None:
                return out
            out.append(obj)

    def pending_frames(self) -> int:
        """Frames queued toward the client."""
        return len(self._to_client)
