"""Count-conservation: every record is accounted for, exactly once.

The resilience layer's contract is not "nothing is ever lost" — faults
guarantee losses — but "every loss is counted somewhere". The ledger
states it as an equation over the analytics tier::

    ingested == processed + dropped + deadlettered

where *ingested* is records received off the message bus, *processed*
is measurements published downstream (enriched or degraded),
*dropped* covers filtered / unresolvable / decode-failures-without-a-DLQ,
and *deadlettered* is payloads parked in the dead-letter queue. The
chaos harness asserts this after every run; a violation means a code
path ate a record without counting it — a bug, never a fault.
"""

from __future__ import annotations

from dataclasses import dataclass


class InvariantViolation(AssertionError):
    """A conservation equation failed to balance."""


@dataclass(frozen=True)
class ConservationLedger:
    """One snapshot of the analytics tier's record accounting."""

    ingested: int
    processed: int
    dropped: int
    deadlettered: int

    @property
    def balance(self) -> int:
        """``ingested - (processed + dropped + deadlettered)``; 0 = conserved."""
        return self.ingested - (self.processed + self.dropped + self.deadlettered)

    @property
    def ok(self) -> bool:
        return self.balance == 0

    def check(self) -> None:
        """Raise :class:`InvariantViolation` unless the ledger balances."""
        if not self.ok:
            raise InvariantViolation(
                f"count conservation violated: ingested={self.ingested} != "
                f"processed={self.processed} + dropped={self.dropped} + "
                f"deadlettered={self.deadlettered} (balance={self.balance})"
            )

    def as_dict(self) -> dict:
        return {
            "ingested": self.ingested,
            "processed": self.processed,
            "dropped": self.dropped,
            "deadlettered": self.deadlettered,
            "balance": self.balance,
        }

    def __str__(self) -> str:
        status = "OK" if self.ok else f"VIOLATED (balance={self.balance})"
        return (
            f"ingested={self.ingested} = processed={self.processed} "
            f"+ dropped={self.dropped} + deadlettered={self.deadlettered} "
            f"[{status}]"
        )
