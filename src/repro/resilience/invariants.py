"""Count-conservation: every record is accounted for, exactly once.

The resilience layer's contract is not "nothing is ever lost" — faults
guarantee losses — but "every loss is counted somewhere". The ledger
states it as an equation over the analytics tier::

    ingested == processed + dropped + deadlettered

where *ingested* is records received off the message bus, *processed*
is measurements published downstream (enriched or degraded),
*dropped* covers filtered / unresolvable / decode-failures-without-a-DLQ,
and *deadlettered* is payloads parked in the dead-letter queue. The
chaos harness asserts this after every run; a violation means a code
path ate a record without counting it — a bug, never a fault.
"""

from __future__ import annotations

from dataclasses import dataclass


class InvariantViolation(AssertionError):
    """A conservation equation failed to balance."""


@dataclass(frozen=True)
class ConservationLedger:
    """One snapshot of the analytics tier's record accounting."""

    ingested: int
    processed: int
    dropped: int
    deadlettered: int

    @property
    def balance(self) -> int:
        """``ingested - (processed + dropped + deadlettered)``; 0 = conserved."""
        return self.ingested - (self.processed + self.dropped + self.deadlettered)

    @property
    def ok(self) -> bool:
        return self.balance == 0

    def check(self) -> None:
        """Raise :class:`InvariantViolation` unless the ledger balances."""
        if not self.ok:
            raise InvariantViolation(
                f"count conservation violated: ingested={self.ingested} != "
                f"processed={self.processed} + dropped={self.dropped} + "
                f"deadlettered={self.deadlettered} (balance={self.balance})"
            )

    def as_dict(self) -> dict:
        return {
            "ingested": self.ingested,
            "processed": self.processed,
            "dropped": self.dropped,
            "deadlettered": self.deadlettered,
            "balance": self.balance,
        }

    def __str__(self) -> str:
        status = "OK" if self.ok else f"VIOLATED (balance={self.balance})"
        return (
            f"ingested={self.ingested} = processed={self.processed} "
            f"+ dropped={self.dropped} + deadlettered={self.deadlettered} "
            f"[{status}]"
        )


@dataclass(frozen=True)
class DurabilityLedger:
    """Conservation across a crash: the recovery-time extension.

    After a kill, the crashed process's in-flight records are gone —
    but an *outside observer* (the recovery harness, standing in for
    the tap's hardware counters) still knows how many records entered
    the analytics tier. The extended equation::

        observed_ingested == processed + dropped + deadlettered + lost_at_crash

    where the right-hand counters come from the recovered checkpoint
    and ``lost_at_crash = observed_ingested - checkpoint.ingested`` is
    the explicit, bounded loss between the last checkpoint and the
    kill. The crash-recovery acceptance criterion is that this ledger
    balances for every crash point — loss is allowed, unaccounted loss
    is not.
    """

    observed_ingested: int
    processed: int
    dropped: int
    deadlettered: int
    lost_at_crash: int

    @classmethod
    def from_checkpoint(
        cls, observed_ingested: int, ledger: ConservationLedger
    ) -> "DurabilityLedger":
        """Extend a recovered checkpoint's ledger with the observer's
        external ingest count."""
        return cls(
            observed_ingested=observed_ingested,
            processed=ledger.processed,
            dropped=ledger.dropped,
            deadlettered=ledger.deadlettered,
            lost_at_crash=observed_ingested - ledger.ingested,
        )

    @property
    def balance(self) -> int:
        """0 when every observed record is accounted for."""
        return self.observed_ingested - (
            self.processed + self.dropped + self.deadlettered + self.lost_at_crash
        )

    @property
    def ok(self) -> bool:
        return self.balance == 0 and self.lost_at_crash >= 0

    def check(self) -> None:
        """Raise :class:`InvariantViolation` unless balanced with a
        non-negative crash loss (a negative one means the checkpoint
        claims records the observer never saw)."""
        if not self.ok:
            raise InvariantViolation(
                f"durability conservation violated: "
                f"observed_ingested={self.observed_ingested} != "
                f"processed={self.processed} + dropped={self.dropped} + "
                f"deadlettered={self.deadlettered} + "
                f"lost_at_crash={self.lost_at_crash} "
                f"(balance={self.balance})"
            )

    def as_dict(self) -> dict:
        return {
            "observed_ingested": self.observed_ingested,
            "processed": self.processed,
            "dropped": self.dropped,
            "deadlettered": self.deadlettered,
            "lost_at_crash": self.lost_at_crash,
            "balance": self.balance,
        }

    def __str__(self) -> str:
        status = "OK" if self.ok else f"VIOLATED (balance={self.balance})"
        return (
            f"observed_ingested={self.observed_ingested} = "
            f"processed={self.processed} + dropped={self.dropped} "
            f"+ deadlettered={self.deadlettered} "
            f"+ lost_at_crash={self.lost_at_crash} [{status}]"
        )
