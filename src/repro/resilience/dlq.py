"""Bounded dead-letter queue for undecodable payloads.

A malformed frame on the message bus is evidence, not garbage: it may
be the first symptom of a codec version skew, a corrupting switch, or
a bug in the publisher. Instead of silently dropping it, the analytics
service parks the raw bytes here with full provenance — which stage
rejected it, why, and when — and ``ruru dlq`` renders the queue for a
human. The queue is bounded (drop-oldest) so a sustained corruption
storm costs memory proportional to the cap, never the outage length.
"""

from __future__ import annotations

import base64
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class DeadLetter:
    """One parked payload and its provenance."""

    seq: int
    stage: str
    reason: str
    payload: bytes
    timestamp_ns: int

    def preview(self, width: int = 24) -> str:
        """Hex preview of the payload head, for tables."""
        head = self.payload[:width]
        suffix = ".." if len(self.payload) > width else ""
        return head.hex() + suffix


class DeadLetterQueue:
    """Drop-oldest bounded queue of :class:`DeadLetter` entries.

    ``total`` counts every letter ever parked (the monotonic series
    behind ``ruru_dlq_total``); ``len()`` is the current depth
    (``ruru_dlq_depth``); ``overflowed`` counts letters that pushed an
    older one out.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[DeadLetter] = deque()
        self._counts: Dict[Tuple[str, str], int] = {}
        self.total = 0
        self.overflowed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(
        self, stage: str, reason: str, payload: bytes, timestamp_ns: int
    ) -> DeadLetter:
        """Park one payload; evicts the oldest entry when full."""
        if len(self._entries) >= self.capacity:
            self._entries.popleft()
            self.overflowed += 1
        letter = DeadLetter(
            seq=self.total,
            stage=stage,
            reason=reason,
            payload=bytes(payload),
            timestamp_ns=timestamp_ns,
        )
        self._entries.append(letter)
        self.total += 1
        key = (stage, reason)
        self._counts[key] = self._counts.get(key, 0) + 1
        return letter

    def entries(self, limit: Optional[int] = None) -> List[DeadLetter]:
        """The newest *limit* entries (all when None), oldest first."""
        if limit is None or limit >= len(self._entries):
            return list(self._entries)
        return list(self._entries)[-limit:]

    def summary(self) -> Dict[Tuple[str, str], int]:
        """Lifetime letter counts keyed by (stage, reason)."""
        return dict(self._counts)

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot every parked letter (payload bytes as base64) so the
        evidence survives a crash along with the counters."""
        return {
            "capacity": self.capacity,
            "total": self.total,
            "overflowed": self.overflowed,
            "counts": [
                [stage, reason, count]
                for (stage, reason), count in self._counts.items()
            ],
            "entries": [
                {
                    "seq": letter.seq,
                    "stage": letter.stage,
                    "reason": letter.reason,
                    "payload": base64.b64encode(letter.payload).decode("ascii"),
                    "timestamp_ns": letter.timestamp_ns,
                }
                for letter in self._entries
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.capacity = int(state["capacity"])
        self.total = int(state["total"])
        self.overflowed = int(state["overflowed"])
        self._counts = {
            (str(stage), str(reason)): int(count)
            for stage, reason, count in state["counts"]
        }
        self._entries = deque(
            DeadLetter(
                seq=int(row["seq"]),
                stage=str(row["stage"]),
                reason=str(row["reason"]),
                payload=base64.b64decode(row["payload"]),
                timestamp_ns=int(row["timestamp_ns"]),
            )
            for row in state["entries"]
        )

    def format_table(self, limit: int = 20) -> str:
        """Render the queue for ``ruru dlq``."""
        lines = [
            f"dead-letter queue: depth={len(self)} total={self.total} "
            f"overflowed={self.overflowed} capacity={self.capacity}",
        ]
        if self._counts:
            lines.append("by (stage, reason):")
            for (stage, reason), count in sorted(self._counts.items()):
                lines.append(f"  {stage:>12} | {reason:<32} {count:>8}")
        shown = self.entries(limit)
        if shown:
            lines.append(f"newest {len(shown)} entries:")
            lines.append(f"  {'seq':>6} {'t(ms)':>10} {'stage':>12} "
                         f"{'reason':<28} payload")
            for letter in shown:
                lines.append(
                    f"  {letter.seq:>6} {letter.timestamp_ns / 1e6:>10.3f} "
                    f"{letter.stage:>12} {letter.reason[:28]:<28} "
                    f"{len(letter.payload)}B:{letter.preview()}"
                )
        return "\n".join(lines)
