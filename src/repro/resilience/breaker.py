"""Circuit breaker over the virtual clock.

The classic three-state machine (closed → open → half-open), sized for
the two places Ruru needs it: the geo/ASN enricher and the TSDB write
path. When either dependency starts failing, the breaker opens and the
service *degrades* — records flow on un-enriched, points defer to the
retry queue — instead of burning every record against a dead backend.

All transitions are timestamped with the caller's virtual ``now_ns``
and kept in a log, which is how the chaos harness measures recovery
time (open → closed) after a brown-out clears.
"""

from __future__ import annotations

from typing import List, Tuple

BREAKER_CLOSED = 0
BREAKER_OPEN = 1
BREAKER_HALF_OPEN = 2

_STATE_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_OPEN: "open",
    BREAKER_HALF_OPEN: "half-open",
}


class CircuitBreaker:
    """Failure-counting breaker guarding one downstream dependency.

    Args:
        name: label for metrics and transition logs.
        failure_threshold: consecutive failures that trip the breaker.
        recovery_timeout_ns: how long an open breaker blocks before
            letting probe calls through (half-open).
        half_open_successes: consecutive probe successes required to
            close again; one probe failure re-opens immediately.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_timeout_ns: int = 1_000_000_000,
        half_open_successes: int = 2,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_timeout_ns <= 0:
            raise ValueError("recovery_timeout_ns must be positive")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be at least 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout_ns = recovery_timeout_ns
        self.half_open_successes = half_open_successes
        self.state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at_ns = 0
        self.opened_count = 0
        # (now_ns, from_state, to_state), oldest first.
        self.transitions: List[Tuple[int, int, int]] = []

    # -- state machine ------------------------------------------------------

    def allow(self, now_ns: int) -> bool:
        """May a call proceed at *now_ns*?

        An open breaker flips to half-open once the recovery timeout
        has elapsed, letting the next call through as a probe.
        """
        if self.state == BREAKER_OPEN:
            if now_ns - self._opened_at_ns >= self.recovery_timeout_ns:
                self._transition(now_ns, BREAKER_HALF_OPEN)
                self._probe_successes = 0
                return True
            return False
        return True

    def record_success(self, now_ns: int) -> None:
        """A guarded call succeeded."""
        if self.state == BREAKER_HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._transition(now_ns, BREAKER_CLOSED)
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self, now_ns: int) -> None:
        """A guarded call failed; may trip the breaker."""
        if self.state == BREAKER_HALF_OPEN:
            self._open(now_ns)
            return
        self._consecutive_failures += 1
        if (
            self.state == BREAKER_CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open(now_ns)

    def _open(self, now_ns: int) -> None:
        self._transition(now_ns, BREAKER_OPEN)
        self._opened_at_ns = now_ns
        self._consecutive_failures = 0
        self.opened_count += 1

    def _transition(self, now_ns: int, to_state: int) -> None:
        self.transitions.append((now_ns, self.state, to_state))
        self.state = to_state

    # -- durability ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the state machine and its transition log.

        The transition log rides along so post-restart chaos reports
        still see pre-crash open/close episodes.
        """
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "probe_successes": self._probe_successes,
            "opened_at_ns": self._opened_at_ns,
            "opened_count": self.opened_count,
            "transitions": [list(t) for t in self.transitions],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.state = int(state["state"])
        self._consecutive_failures = int(state["consecutive_failures"])
        self._probe_successes = int(state["probe_successes"])
        self._opened_at_ns = int(state["opened_at_ns"])
        self.opened_count = int(state["opened_count"])
        self.transitions = [
            (int(t[0]), int(t[1]), int(t[2])) for t in state["transitions"]
        ]

    # -- reporting ----------------------------------------------------------

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def recovery_times_ns(self) -> List[int]:
        """Durations of every completed open → closed episode.

        Measured from the moment the breaker opened to the moment it
        closed again (through half-open probing) — the chaos report's
        "recovery time".
        """
        times: List[int] = []
        opened_at = None
        for now_ns, _, to_state in self.transitions:
            if to_state == BREAKER_OPEN and opened_at is None:
                opened_at = now_ns
            elif to_state == BREAKER_CLOSED and opened_at is not None:
                times.append(now_ns - opened_at)
                opened_at = None
        return times

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state_name}, "
            f"opened={self.opened_count})"
        )
