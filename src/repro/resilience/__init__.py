"""``repro.resilience`` — the machinery that keeps Ruru measuring.

The paper's headline anecdote is Ruru catching *someone else's*
failure (the nightly firewall update adding 4000 ms to every new
connection). A passive monitor only earns that role if it survives
adverse conditions itself: malformed frames, peerless sockets, flaky
enrichment databases, browned-out storage, crashed workers. This
package provides the survival kit, all deterministic on the virtual
clock so chaos runs replay bit-identically:

* :class:`~repro.resilience.retry.RetryPolicy` /
  :class:`~repro.resilience.retry.RetryQueue` — exponential backoff
  with seeded jitter, scheduled against virtual time.
* :class:`~repro.resilience.breaker.CircuitBreaker` — closed /
  open / half-open, guarding the enricher and the TSDB write path.
* :class:`~repro.resilience.dlq.DeadLetterQueue` — a bounded queue of
  undecodable payloads with full provenance (stage, reason, bytes).
* :class:`~repro.resilience.supervisor.Supervisor` — catches crashes
  in lcore poll bodies and restarts them, counting every restart.
* :class:`~repro.resilience.invariants.ConservationLedger` — the
  count-conservation invariant ``ingested == processed + dropped +
  deadlettered`` asserted after every chaos run.
* :class:`~repro.resilience.layer.ResilienceLayer` — the bundle the
  analytics service takes; binds every knob into the PR 1 telemetry
  registry (``ruru_retry_total``, ``ruru_breaker_state``,
  ``ruru_dlq_depth``, …) so degradation is observable, never silent.
"""

from __future__ import annotations

from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.resilience.dlq import DeadLetter, DeadLetterQueue
from repro.resilience.invariants import (
    ConservationLedger,
    DurabilityLedger,
    InvariantViolation,
)
from repro.resilience.layer import ResilienceLayer
from repro.resilience.retry import RetryPolicy, RetryQueue
from repro.resilience.supervisor import RestartBudget, Supervisor

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ConservationLedger",
    "DeadLetter",
    "DurabilityLedger",
    "DeadLetterQueue",
    "InvariantViolation",
    "ResilienceLayer",
    "RestartBudget",
    "RetryPolicy",
    "RetryQueue",
    "Supervisor",
]
