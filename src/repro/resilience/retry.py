"""Exponential backoff with deterministic jitter, on virtual time.

Nothing here sleeps. The pipeline is single-threaded and cooperative,
so "retry later" means *schedule against the virtual clock and flush
when the caller next polls with time advanced past the deadline*.
Jitter comes from a seeded :class:`random.Random`, so two runs with
the same seed back off identically — the property the chaos harness's
determinism check rests on.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

NS_PER_MS = 1_000_000


class RetryPolicy:
    """Backoff schedule: ``base * multiplier**(attempt-1)``, jittered.

    Args:
        max_attempts: attempts before the caller should give up (the
            first try counts as attempt 1).
        base_delay_ns: delay after the first failure.
        multiplier: exponential growth factor per attempt.
        max_delay_ns: backoff ceiling.
        jitter: fraction of the computed delay randomized away (0.1 =
            the delay lands uniformly in [0.9d, 1.1d]).
        seed: jitter RNG seed; same seed, same schedule.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_ns: int = 10 * NS_PER_MS,
        multiplier: float = 2.0,
        max_delay_ns: int = 1_000_000_000,
        jitter: float = 0.1,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_delay_ns <= 0:
            raise ValueError("base_delay_ns must be positive")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.base_delay_ns = base_delay_ns
        self.multiplier = multiplier
        self.max_delay_ns = max_delay_ns
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay_ns(self, attempt: int) -> int:
        """Backoff before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        delay = self.base_delay_ns * (self.multiplier ** (attempt - 1))
        delay = min(delay, self.max_delay_ns)
        if self.jitter:
            spread = delay * self.jitter
            delay += self._rng.uniform(-spread, spread)
        return max(1, int(delay))

    def exhausted(self, attempt: int) -> bool:
        """True once *attempt* exceeds the retry budget."""
        return attempt >= self.max_attempts

    # -- durability --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the jitter RNG so a restored run continues the
        exact backoff schedule the seed promised."""
        rng_state = self._rng.getstate()
        return {"rng": [rng_state[0], list(rng_state[1]), rng_state[2]]}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        rng = state["rng"]
        self._rng.setstate((rng[0], tuple(rng[1]), rng[2]))


class RetryQueue:
    """Bounded queue of work waiting out its backoff.

    Items are opaque to the queue; callers push ``(item, attempt)``
    pairs and pull back the ones whose deadline has passed. The bound
    matters: an outage longer than the buffer must shed load visibly
    (the evicted items are returned so the caller can count them)
    rather than grow without limit.
    """

    def __init__(self, policy: RetryPolicy, max_pending: int = 1024):
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.policy = policy
        self.max_pending = max_pending
        self._pending: Deque[Tuple[int, int, Any]] = deque()  # (due_ns, attempt, item)
        self.scheduled = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._pending)

    def schedule(self, item: Any, now_ns: int, attempt: int) -> Optional[Any]:
        """Queue *item* for retry; returns an evicted item when full."""
        evicted = None
        if len(self._pending) >= self.max_pending:
            _, _, evicted = self._pending.popleft()
            self.evicted += 1
        due_ns = now_ns + self.policy.delay_ns(attempt)
        self._pending.append((due_ns, attempt, item))
        self.scheduled += 1
        return evicted

    def due(self, now_ns: int) -> List[Tuple[Any, int]]:
        """Pop every item whose backoff deadline has passed.

        Returns ``(item, attempt)`` pairs; *attempt* is the count of
        tries already made, so the next try is ``attempt + 1``.
        """
        ready: List[Tuple[Any, int]] = []
        remaining: Deque[Tuple[int, int, Any]] = deque()
        for due_ns, attempt, item in self._pending:
            if due_ns <= now_ns:
                ready.append((item, attempt))
            else:
                remaining.append((due_ns, attempt, item))
        self._pending = remaining
        return ready

    def drain(self) -> List[Tuple[Any, int]]:
        """Pop everything regardless of deadline (end of a run)."""
        ready = [(item, attempt) for _, attempt, item in self._pending]
        self._pending.clear()
        return ready

    # -- durability --------------------------------------------------------

    def state_dict(self, encode_item=None) -> dict:
        """Snapshot the pending entries and counters.

        Args:
            encode_item: maps each opaque item to a JSON-safe value
                (identity when None — items must already be JSON-safe).
        """
        encode = encode_item or (lambda item: item)
        return {
            "max_pending": self.max_pending,
            "scheduled": self.scheduled,
            "evicted": self.evicted,
            "pending": [
                [due_ns, attempt, encode(item)]
                for due_ns, attempt, item in self._pending
            ],
        }

    def load_state(self, state: dict, decode_item=None) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse encoder)."""
        decode = decode_item or (lambda item: item)
        self.max_pending = int(state["max_pending"])
        self.scheduled = int(state["scheduled"])
        self.evicted = int(state["evicted"])
        self._pending = deque(
            (int(due_ns), int(attempt), decode(item))
            for due_ns, attempt, item in state["pending"]
        )
