"""The bundle of resilience machinery the analytics service carries.

One object, constructed by the caller (the chaos harness, the CLI, or
a test) and handed to :class:`~repro.analytics.service.AnalyticsService`.
It owns:

* the dead-letter queue for undecodable bus payloads;
* the breaker guarding geo/ASN enrichment (open → records publish
  un-enriched with the ``degraded`` flag);
* the breaker guarding TSDB writes (open → point batches defer to the
  retry queue instead of hammering a dead store);
* the retry policy/queue for deferred TSDB writes;
* the running counters that make all of it observable.

``bind_registry`` wires everything into the PR 1 telemetry registry:
``ruru_retry_total``, ``ruru_breaker_state``, ``ruru_dlq_depth``,
``ruru_dlq_total``, ``ruru_degraded_published_total``, and friends.
"""

from __future__ import annotations

from typing import Optional

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.dlq import DeadLetterQueue
from repro.resilience.retry import RetryPolicy, RetryQueue


class ResilienceLayer:
    """Breakers + DLQ + retry queue + counters, ready to wire in.

    Args:
        seed: drives retry jitter; chaos runs pass their run seed so
            backoff schedules replay exactly.
        dlq_capacity: dead-letter queue bound.
        max_pending_writes: deferred TSDB batches held while the store
            is down; older batches are shed (and counted) beyond this.
        enrich_breaker / tsdb_breaker: override the default breakers.
        retry_policy: override the default write-retry schedule.
    """

    def __init__(
        self,
        seed: int = 0,
        dlq_capacity: int = 1024,
        max_pending_writes: int = 256,
        enrich_breaker: Optional[CircuitBreaker] = None,
        tsdb_breaker: Optional[CircuitBreaker] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.dlq = DeadLetterQueue(capacity=dlq_capacity)
        self.enrich_breaker = enrich_breaker or CircuitBreaker(
            "enrich", failure_threshold=5, recovery_timeout_ns=500_000_000
        )
        self.tsdb_breaker = tsdb_breaker or CircuitBreaker(
            "tsdb", failure_threshold=3, recovery_timeout_ns=500_000_000
        )
        self.retry_policy = retry_policy or RetryPolicy(seed=seed)
        self.retry_queue = RetryQueue(
            self.retry_policy, max_pending=max_pending_writes
        )
        # -- counters (plain ints on the hot path, bridged at scrape) --
        self.retries = 0                 # TSDB write re-attempts
        self.enrich_failures = 0         # enricher raised
        self.degraded_published = 0      # measurements published un-enriched
        self.tsdb_write_failures = 0     # write attempts that raised
        self.points_written = 0          # points that reached the store
        self.points_lost = 0             # points shed after budget/overflow

    @property
    def breakers(self):
        return (self.enrich_breaker, self.tsdb_breaker)

    # -- durability --------------------------------------------------------

    def state_dict(self, encode_retry_item=None) -> dict:
        """Snapshot the whole bundle: DLQ contents, breaker machines,
        retry queue (pending write batches included), and counters.

        Args:
            encode_retry_item: JSON-safe encoder for retry-queue items
                (the analytics service passes a line-protocol encoder
                for its point batches).
        """
        return {
            "dlq": self.dlq.state_dict(),
            "enrich_breaker": self.enrich_breaker.state_dict(),
            "tsdb_breaker": self.tsdb_breaker.state_dict(),
            "retry_policy": self.retry_policy.state_dict(),
            "retry_queue": self.retry_queue.state_dict(encode_retry_item),
            "counters": {
                "retries": self.retries,
                "enrich_failures": self.enrich_failures,
                "degraded_published": self.degraded_published,
                "tsdb_write_failures": self.tsdb_write_failures,
                "points_written": self.points_written,
                "points_lost": self.points_lost,
            },
        }

    def load_state(self, state: dict, decode_retry_item=None) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.dlq.load_state(state["dlq"])
        self.enrich_breaker.load_state(state["enrich_breaker"])
        self.tsdb_breaker.load_state(state["tsdb_breaker"])
        self.retry_policy.load_state(state["retry_policy"])
        self.retry_queue.load_state(state["retry_queue"], decode_retry_item)
        counters = state["counters"]
        self.retries = int(counters["retries"])
        self.enrich_failures = int(counters["enrich_failures"])
        self.degraded_published = int(counters["degraded_published"])
        self.tsdb_write_failures = int(counters["tsdb_write_failures"])
        self.points_written = int(counters["points_written"])
        self.points_lost = int(counters["points_lost"])

    def bind_registry(self, registry) -> None:
        """Bridge every resilience counter/state into *registry*."""
        retry_total = registry.counter(
            "ruru_retry_total",
            help="Retry attempts made against a failed dependency.",
            labels=("stage",),
        )
        breaker_state = registry.gauge(
            "ruru_breaker_state",
            help="Circuit breaker state (0=closed, 1=open, 2=half-open).",
            labels=("breaker",),
        )
        breaker_opened = registry.counter(
            "ruru_breaker_opened_total",
            help="Times each circuit breaker tripped open.",
            labels=("breaker",),
        )
        dlq_depth = registry.gauge(
            "ruru_dlq_depth",
            help="Payloads currently parked in the dead-letter queue.",
        )
        dlq_total = registry.counter(
            "ruru_dlq_total",
            help="Payloads ever dead-lettered, by stage and reason.",
            labels=("stage", "reason"),
        )
        degraded = registry.counter(
            "ruru_degraded_published_total",
            help="Measurements published un-enriched with the degraded flag.",
        )
        enrich_failures = registry.counter(
            "ruru_enrich_failures_total",
            help="Enrichment attempts that raised (geo/ASN lookup faults).",
        )
        write_failures = registry.counter(
            "ruru_tsdb_write_failures_total",
            help="TSDB write attempts that raised.",
        )
        points_lost = registry.counter(
            "ruru_tsdb_points_lost_total",
            help="Points shed after the retry budget or pending bound.",
        )
        retry_pending = registry.gauge(
            "ruru_retry_pending",
            help="Write batches waiting out their backoff.",
        )
        retry_children = [
            (stage, retry_total.labels(stage)) for stage in ("tsdb",)
        ]

        def collect() -> None:
            for stage, child in retry_children:
                child.value = self.retries
            for breaker in self.breakers:
                breaker_state.labels(breaker.name).set(breaker.state)
                breaker_opened.labels(breaker.name).value = breaker.opened_count
            dlq_depth.set(len(self.dlq))
            for (stage, reason), count in self.dlq.summary().items():
                dlq_total.labels(stage, reason).value = count
            degraded.value = self.degraded_published
            enrich_failures.value = self.enrich_failures
            write_failures.value = self.tsdb_write_failures
            points_lost.value = self.points_lost
            retry_pending.set(len(self.retry_queue))

        registry.register_collector(collect)
