"""Crash supervision for lcore poll bodies.

The EAL scheduler assumes a poll callable never raises; one uncaught
exception in one queue worker would otherwise take the whole pipeline
down mid-trace. The supervisor wraps each poll body: a crash is
caught, logged with its role, counted as a restart, and the lcore
polls again next round with its worker state (flow table, parser)
intact — so no packet already accepted into a ring is ever lost to a
crash, which is what keeps the count-conservation invariant true under
the chaos harness's ``worker_crash_rate``.

A per-role restart budget guards against a *deterministically* crashing
worker (a real bug, not injected chaos): exhausting it re-raises so
tests fail loudly instead of spinning.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

PollFn = Callable[[], int]


class RestartBudget:
    """A bounded number of restarts per key, shared policy object.

    Both the in-process :class:`Supervisor` (lcore poll bodies) and the
    process-level shard supervisor need the same guard: injected chaos
    gets restarted, a deterministically-crashing unit must eventually
    be declared failed instead of flapping forever. ``consume`` spends
    one restart and reports whether it was granted; once a key is
    exhausted every further consume is refused.
    """

    def __init__(self, max_restarts: int = 3):
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self.max_restarts = max_restarts
        self.spent_by_key: Dict[str, int] = {}

    def consume(self, key: str) -> bool:
        """Spend one restart for *key*; False when the budget is gone."""
        spent = self.spent_by_key.get(key, 0)
        if spent >= self.max_restarts:
            return False
        self.spent_by_key[key] = spent + 1
        return True

    def exhausted(self, key: str) -> bool:
        return self.spent_by_key.get(key, 0) >= self.max_restarts

    def remaining(self, key: str) -> int:
        return max(0, self.max_restarts - self.spent_by_key.get(key, 0))

    @property
    def total_spent(self) -> int:
        return sum(self.spent_by_key.values())


class Supervisor:
    """Wraps poll callables; catches, counts and reports crashes."""

    def __init__(self, max_restarts_per_role: int = 10_000):
        if max_restarts_per_role < 1:
            raise ValueError("max_restarts_per_role must be positive")
        self.max_restarts_per_role = max_restarts_per_role
        self.restarts_by_role: Dict[str, int] = {}
        # (role, exception repr), oldest first, bounded.
        self.crash_log: List[Tuple[str, str]] = []
        self._crash_log_cap = 256

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts_by_role.values())

    def supervise(self, poll: PollFn, role: str) -> PollFn:
        """A drop-in replacement for *poll* that survives crashes."""
        self.restarts_by_role.setdefault(role, 0)

        def supervised_poll() -> int:
            try:
                return poll()
            except Exception as exc:  # noqa: BLE001 — the whole point
                self.restarts_by_role[role] += 1
                if len(self.crash_log) < self._crash_log_cap:
                    self.crash_log.append((role, repr(exc)))
                if self.restarts_by_role[role] > self.max_restarts_per_role:
                    raise RuntimeError(
                        f"lcore {role!r} exceeded {self.max_restarts_per_role} "
                        f"restarts; last error: {exc!r}"
                    ) from exc
                return 0

        return supervised_poll

    def bind_registry(self, registry) -> None:
        """Expose restart counts as ``ruru_supervisor_restarts_total``."""
        restarts = registry.counter(
            "ruru_supervisor_restarts_total",
            help="Crashed lcore poll bodies restarted by the supervisor.",
            labels=("role",),
        )

        def collect() -> None:
            for role, count in self.restarts_by_role.items():
                restarts.labels(role).value = count

        registry.register_collector(collect)
